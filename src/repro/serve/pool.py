"""The warm worker pool: long-lived processes executing queued jobs.

This is the nengo_mpi shape (persistent master waking workers per model
instead of re-spawning): fork once at daemon start, keep the workers
warm — imports done, numpy loaded, case builders hot — and pay only the
job's own execution cost per request.  Each worker is one non-daemonic
forked process (non-daemonic because ``mp``-backend jobs fork their own
rank processes, which Python forbids from daemonic parents) looping on
a duplex pipe: ``("job", wire_spec, attempt)`` in, ``("done", payload)``
or ``("error", kind, message, detail)`` out.

Failure semantics, all typed:

* a worker that exits mid-job (crash) is discarded, a fresh worker is
  forked in its place, and the job is **retried** with bounded
  exponential backoff up to ``max_retries`` times — safe because jobs
  are pure functions of their spec.  Exhausting retries raises
  :class:`WorkerCrash`.
* a job exceeding ``job_timeout`` kills its worker (the only way to
  interrupt it), forks a replacement, and raises :class:`JobTimeout` —
  never retried, since a retry would just burn another timeout.
* a job whose *program* raised is not a pool failure at all: the
  exception travels back as data and surfaces as
  :class:`JobExecutionError` carrying the original kind/message/detail
  (including the structured fields of a
  :class:`repro.machine.faults.RankFailure`) — deterministic failures
  are not retried.

``execute`` is thread-safe: workers live in an idle queue, concurrent
callers check one out, and the pool multiplexes as many in-flight jobs
as it has workers.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from typing import Any

from repro.serve.jobs import JobSpec, close_warm_backends, run_job_bytes

__all__ = [
    "WorkerPool",
    "PoolError",
    "WorkerCrash",
    "JobTimeout",
    "JobExecutionError",
    "pool_available",
    "throughput_microbench",
]

_worker_counter = itertools.count()


def pool_available() -> str | None:
    """``None`` when the pool can run here, else the reason it cannot."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return "requires the 'fork' start method"
    return None


class PoolError(RuntimeError):
    """Base class for pool-level job failures."""


class WorkerCrash(PoolError):
    """The worker process died mid-job on every allowed attempt."""

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


class JobTimeout(PoolError):
    """The job exceeded the pool's per-job wall-clock budget."""


class JobExecutionError(PoolError):
    """The job's own code raised; carries the original typed error."""

    def __init__(self, kind: str, message: str, detail: dict | None = None):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.detail = detail or {}


def _worker_main(conn: Any) -> None:
    """Entry point of one warm worker process."""
    import signal

    from repro.machine.faults import RankFailure

    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; the daemon coordinates shutdown over the pipe, so workers
    # must sit it out and finish their in-flight job during the drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone
        if frame[0] == "exit":
            break
        if frame[0] == "ping":
            conn.send(("pong", os.getpid()))
            continue
        _, wire, attempt = frame
        try:
            spec = JobSpec.from_dict(wire)
            inject = spec.inject or ""
            if inject == "crash" or (inject == "crash:once" and attempt == 0):
                os._exit(13)  # simulated hard crash, no exception frame
            payload = run_job_bytes(spec)
            conn.send(("done", payload))
        except BaseException as exc:  # noqa: BLE001 - shipped as data
            detail: dict[str, Any] = {}
            if isinstance(exc, RankFailure):
                detail = {
                    "failed": {str(r): t for r, t in exc.failed.items()},
                    "time": exc.time,
                    "blocked": [list(b) for b in exc.blocked],
                    "completed": list(exc.completed),
                    "nranks": exc.nranks,
                }
            try:
                conn.send(("error", type(exc).__name__, str(exc), detail))
            except (BrokenPipeError, OSError):
                break
    close_warm_backends()
    # Plain return: multiprocessing finalizes the child itself (and
    # coverage's multiprocessing hook flushes data on the way out).


class _Worker:
    """One warm process plus its duplex pipe."""

    def __init__(self, ctx: Any) -> None:
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child,),
            name=f"repro-serve-worker-{next(_worker_counter)}",
            daemon=False,  # mp-backend jobs fork their own rank processes
        )
        self.proc.start()
        child.close()

    def alive(self) -> bool:
        return self.proc.is_alive()

    def stop(self, timeout: float = 2.0) -> None:
        """Polite shutdown; escalates to terminate."""
        try:
            self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=timeout)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        self._close()

    def kill(self) -> None:
        """Immediate teardown (timeout enforcement)."""
        self.proc.terminate()
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():  # pragma: no cover - terminate is enough
            self.proc.kill()
            self.proc.join(timeout=1.0)
        self._close()

    def _close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        try:
            self.proc.close()
        except ValueError:  # pragma: no cover - still running
            pass


class WorkerPool:
    """A fixed-size pool of warm job-executing processes."""

    def __init__(
        self,
        workers: int = 2,
        job_timeout: float | None = 300.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        reason = pool_available()
        if reason is not None:
            raise PoolError(f"worker pool unavailable: {reason}")
        self.workers = int(workers)
        self.job_timeout = job_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self._idle: queue.Queue[_Worker] = queue.Queue()
        self._all: list[_Worker] = []
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        #: Total worker crashes observed (respawns performed).
        self.crashes = 0

    # ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Fork the warm workers (idempotent)."""
        with self._lock:
            if self._closed:
                raise PoolError("pool is closed")
            if self._started:
                return self
            from multiprocessing import get_context

            self._ctx = get_context("fork")
            for _ in range(self.workers):
                w = _Worker(self._ctx)
                self._all.append(w)
                self._idle.put(w)
            self._started = True
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _respawn(self, dead: _Worker) -> _Worker:
        """Replace a dead/killed worker with a fresh fork."""
        with self._lock:
            if dead in self._all:
                self._all.remove(dead)
            self.crashes += 1
            if self._closed:
                raise PoolError("pool is closed")
            fresh = _Worker(self._ctx)
            self._all.append(fresh)
            return fresh

    # ------------------------------------------------------------------

    def execute(
        self, spec: JobSpec, timeout: float | None | object = ...
    ) -> tuple[bytes, int]:
        """Run one job on a warm worker; returns ``(payload, attempts)``.

        Blocks until a worker is free.  ``timeout`` overrides the
        pool's ``job_timeout`` (``None`` disables the limit).
        """
        if not self._started or self._closed:
            raise PoolError("pool is not running (call start())")
        limit = self.job_timeout if timeout is ... else timeout
        for attempt in range(self.max_retries + 1):
            try:
                return self._execute_once(spec, attempt, limit), attempt + 1
            except WorkerCrash:
                if attempt >= self.max_retries:
                    raise WorkerCrash(
                        f"job {spec.sha()[:12]} crashed its worker on all "
                        f"{self.max_retries + 1} attempt(s)",
                        attempts=attempt + 1,
                    )
                time.sleep(min(self.retry_backoff * (2 ** attempt), 1.0))
        raise AssertionError("unreachable")  # pragma: no cover

    def _execute_once(
        self, spec: JobSpec, attempt: int, limit: float | None
    ) -> bytes:
        worker = self._idle.get()
        give_back: _Worker | None = worker
        try:
            try:
                worker.conn.send(("job", spec.to_wire(), attempt))
            except (BrokenPipeError, OSError):
                give_back = self._respawn(worker)
                raise WorkerCrash("worker pipe closed before dispatch")
            deadline = None if limit is None else time.monotonic() + limit
            while True:
                slice_ = 0.1
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        worker.kill()
                        give_back = self._respawn(worker)
                        raise JobTimeout(
                            f"job {spec.sha()[:12]} exceeded the "
                            f"{limit:.6g}s per-job timeout"
                        )
                    slice_ = min(slice_, remaining)
                try:
                    has_frame = worker.conn.poll(slice_)
                except (EOFError, OSError):
                    has_frame = False
                if has_frame:
                    try:
                        frame = worker.conn.recv()
                    except (EOFError, OSError):
                        give_back = self._respawn(worker)
                        raise WorkerCrash("worker died mid-result")
                    if frame[0] == "done":
                        return frame[1]
                    if frame[0] == "error":
                        _, kind, message, detail = frame
                        raise JobExecutionError(kind, message, detail)
                    continue  # stray pong etc.
                if not worker.alive():
                    # Drain any result that raced the exit.
                    try:
                        if worker.conn.poll(0):
                            continue
                    except (EOFError, OSError):
                        pass
                    give_back = self._respawn(worker)
                    raise WorkerCrash(
                        f"worker exited with code "
                        f"{worker.proc.exitcode} mid-job"
                    )
        finally:
            if give_back is not None:
                self._idle.put(give_back)

    # ------------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker.  Call only once in-flight jobs finished
        (the server drains first); busy workers are terminated."""
        with self._lock:
            if self._closed or not self._started:
                self._closed = True
                return
            self._closed = True
            all_workers = list(self._all)
            self._all.clear()
        deadline = time.monotonic() + timeout
        idle: list[_Worker] = []
        while True:
            try:
                idle.append(self._idle.get_nowait())
            except queue.Empty:
                break
        for w in idle:
            w.stop(timeout=max(0.1, deadline - time.monotonic()))
        for w in all_workers:
            if w not in idle:
                w.kill()


# ----------------------------------------------------------------------
# throughput micro-benchmark (feeds ``repro bench`` host.jobs_per_sec)


def throughput_microbench(
    jobs: int = 6,
    workers: int = 2,
    spec: JobSpec | None = None,
    job_timeout: float = 120.0,
) -> dict:
    """Measure end-to-end job throughput against a warm pool.

    Runs ``jobs`` copies of a tiny deterministic case through a
    ``workers``-wide pool (one untimed warm-up first), with caller
    threads saturating the pool the way concurrent clients would.
    Returns host-section numbers: ``jobs_per_sec`` is wall-clock
    throughput including dispatch, pipe transport and payload
    canonicalisation — the serving overhead, not just the solve.
    """
    reason = pool_available()
    if reason is not None:
        return {"skipped": reason}
    if spec is None:
        spec = JobSpec("airfoil", nodes=3, scale=0.05, nsteps=1)
    errors: list[str] = []
    with WorkerPool(workers=workers, job_timeout=job_timeout) as pool:
        pool.execute(spec)  # warm-up: touches every lazy import once
        todo: queue.Queue[int] = queue.Queue()
        for i in range(jobs):
            todo.put(i)

        def drain() -> None:
            while True:
                try:
                    todo.get_nowait()
                except queue.Empty:
                    return
                try:
                    pool.execute(spec)
                except PoolError as exc:  # pragma: no cover - host trouble
                    errors.append(str(exc))

        threads = [
            threading.Thread(target=drain, daemon=True)
            for _ in range(workers)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
    return {
        "jobs": jobs,
        "workers": workers,
        "case": spec.case,
        "wall_s": wall,
        "jobs_per_sec": jobs / wall if wall > 0 else 0.0,
        "errors": errors,
    }
