"""Content-addressed result cache keyed by ``config_sha``.

Stores the *literal canonical payload bytes* a job produced, keyed by
the job's sha — so a cache hit is byte-identical to the run that filled
the entry, by construction.  Only deterministic payloads belong here
(the server refuses to cache measured ``mp`` results); the cache itself
is policy-free and stores whatever it is given.

Two tiers:

* an in-memory LRU (``max_entries``; eviction is strict
  least-recently-used, where both ``get`` hits and ``put`` refresh
  recency), and
* an optional spill directory (``<sha>.json``, atomic rename writes) so
  a restarted daemon answers yesterday's jobs for free.  Directory
  entries evict together with their memory entry, keeping the two tiers
  consistent; pre-existing files are adopted lazily on first ``get``.

All operations are thread-safe (one lock; every operation is O(1) plus
I/O) — the server's dispatcher threads and connection handlers share
one instance.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path

__all__ = ["ResultCache"]


class ResultCache:
    """LRU byte store: ``sha -> canonical payload bytes``."""

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int = 256,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._mem: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def _path_for(self, sha: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{sha}.json"

    def get(self, sha: str) -> bytes | None:
        """The cached payload for ``sha``, or ``None`` (counted).

        The spill-directory read happens *outside* the lock (it is
        blocking disk I/O; holding the lock across it would stall every
        dispatcher thread behind one slow disk).  Exactly one of
        ``hits``/``misses`` is incremented per call regardless.
        """
        with self._lock:
            payload = self._mem.get(sha)
            if payload is not None:
                self._mem.move_to_end(sha)
                self.hits += 1
                return payload
            if self.directory is None:
                self.misses += 1
                return None
            path = self._path_for(sha)
        try:
            payload = path.read_bytes()
        except OSError:
            payload = None
        with self._lock:
            raced = self._mem.get(sha)
            if raced is not None:
                # another thread inserted while we were reading; its
                # copy is authoritative (byte-identical by construction)
                self._mem.move_to_end(sha)
                self.hits += 1
                return raced
            if payload:
                self._insert(sha, payload)
                self.hits += 1
                return payload
            self.misses += 1
            return None

    def put(self, sha: str, payload: bytes) -> None:
        """Store ``payload`` under ``sha`` (refreshes recency).

        The spill write is staged to a uniquely-named temp file outside
        the lock; only the atomic rename and the LRU insert run under
        it, so ``put`` never holds the lock across disk I/O.
        """
        if not isinstance(payload, bytes):
            raise TypeError(
                f"cache stores bytes, got {type(payload).__name__}"
            )
        staged: tuple[Path, Path] | None = None
        if self.directory is not None:
            with self._lock:
                need_disk = sha not in self._mem
            if need_disk:
                path = self._path_for(sha)
                tmp = path.with_name(
                    f"{path.name}.{os.getpid()}."
                    f"{threading.get_ident()}.tmp"
                )
                tmp.write_bytes(payload)
                staged = (tmp, path)
        with self._lock:
            if staged is not None:
                os.replace(staged[0], staged[1])
            self._insert(sha, payload)

    def _insert(self, sha: str, payload: bytes) -> None:
        """Lock held: insert/refresh and evict beyond capacity."""
        self._mem[sha] = payload
        self._mem.move_to_end(sha)
        while len(self._mem) > self.max_entries:
            victim, _ = self._mem.popitem(last=False)
            self.evictions += 1
            if self.directory is not None:
                try:
                    self._path_for(victim).unlink()
                except OSError:
                    pass

    def __contains__(self, sha: str) -> bool:
        with self._lock:
            if sha in self._mem:
                return True
        if self.directory is not None:
            return self._path_for(sha).is_file()
        return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._mem),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "persistent": self.directory is not None,
            }
