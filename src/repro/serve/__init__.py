"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

The package splits along the wire:

* :mod:`repro.serve.jobs` — job identity (``JobSpec`` → ``config_sha``)
  and the single execution path that guarantees byte-identical
  deterministic payloads;
* :mod:`repro.serve.protocol` — line-delimited JSON framing;
* :mod:`repro.serve.cache` — content-addressed LRU result store;
* :mod:`repro.serve.pool` — warm worker processes with crash-retry;
* :mod:`repro.serve.server` — the daemon (accept/dispatch/drain);
* :mod:`repro.serve.client` — the synchronous ``ServeClient``.

See ``docs/serving.md`` for the protocol catalogue and semantics.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import (
    JobFailedError,
    ServeClient,
    ServeConnectError,
    ServeError,
    ServeProtocolError,
)
from repro.serve.jobs import (
    SERVE_RESULT_SCHEMA,
    JobSpec,
    JobSpecError,
    run_job,
    run_job_bytes,
)
from repro.serve.pool import (
    JobExecutionError,
    JobTimeout,
    PoolError,
    WorkerCrash,
    WorkerPool,
    pool_available,
    throughput_microbench,
)
from repro.serve.protocol import (
    MAX_FRAME,
    MAX_SOCKET_PATH,
    PROTOCOL_VERSION,
    SocketPathTooLong,
    check_socket_path,
)
from repro.serve.server import ReproServer

__all__ = [
    "SERVE_RESULT_SCHEMA",
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "MAX_SOCKET_PATH",
    "SocketPathTooLong",
    "check_socket_path",
    "JobSpec",
    "JobSpecError",
    "run_job",
    "run_job_bytes",
    "ResultCache",
    "WorkerPool",
    "PoolError",
    "WorkerCrash",
    "JobTimeout",
    "JobExecutionError",
    "pool_available",
    "throughput_microbench",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServeConnectError",
    "ServeProtocolError",
    "JobFailedError",
]
