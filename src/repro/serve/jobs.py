"""Job specifications and deterministic result payloads.

A *job* is one complete OVERFLOW-D1 case execution described entirely
by data: case name, machine preset, node count, scale, step count, f0
and execution backend.  The description is canonical — its
:func:`repro.obs.perf.bench.config_sha` is the job's identity, the key
the result cache and the request-coalescing map use.  Two submissions
with the same knobs are *the same job* no matter how their dicts were
ordered or which client sent them.

:func:`run_job` is the one execution path: the daemon's pool workers,
the ``jobs/sec`` micro-benchmark and direct in-process callers all go
through it, so a deterministic (``sim``-backend) job produces
byte-identical canonical payloads whether it ran direct, through a cold
server, or was answered from the cache (the cache stores the literal
bytes).  Payloads carry only modeled quantities for ``sim`` jobs —
no wall clocks, no timestamps — which is what makes the bytes stable.

``inject`` is a transport-layer test knob (crash / sleep / synthetic
failures) used by the resilience test battery; it participates in the
sha like any other knob, so injected jobs can never alias clean ones.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any

from repro.obs.perf.bench import canonical_json, config_sha

__all__ = [
    "SERVE_RESULT_SCHEMA",
    "JobSpec",
    "JobSpecError",
    "run_job",
    "run_job_bytes",
]

#: Version tag of the result-payload layout.
SERVE_RESULT_SCHEMA = "repro-serve-result/1"

#: The knobs a job dict may carry (``inject`` only when set).
_FIELDS = ("case", "machine", "nodes", "scale", "nsteps", "f0", "backend")

#: Recognized ``inject`` values (prefix match for the parametric ones).
_INJECT_PREFIXES = ("crash", "sleep:", "error:", "rankfail")


class JobSpecError(ValueError):
    """A job description is malformed (bad field, unknown case, ...)."""


def _known_cases() -> dict:
    """Runnable case builders, straight from the shared registry.

    Only ``"overflow"``-kind entries are serveable: a job spec carries
    scalar knobs (scale/nsteps/f0), not a scenario file.
    """
    from repro.cases import case_entry, case_names

    return {
        name: case_entry(name).builder for name in case_names(kind="overflow")
    }


def _parse_float(value: Any, name: str) -> float:
    """Accept numbers plus the canonical-JSON spellings of non-finite
    floats (``"inf"`` / ``"-inf"`` / ``"nan"``) so a spec survives the
    wire round trip sha-intact."""
    if isinstance(value, bool):
        raise JobSpecError(f"{name} must be a number, got {value!r}")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str) and value in ("inf", "-inf", "nan"):
        return float(value)
    raise JobSpecError(f"{name} must be a number, got {value!r}")


@dataclass(frozen=True)
class JobSpec:
    """One simulation job, fully described by data.

    ``inject`` (optional, test-only) perturbs *execution*, never the
    payload: ``"crash"`` / ``"crash:once"`` hard-kill the pool worker
    (always / on the first attempt only), ``"sleep:S"`` delays the run
    by S host seconds, ``"error:MSG"`` raises ``RuntimeError(MSG)``
    and ``"rankfail"`` raises a synthetic
    :class:`repro.machine.faults.RankFailure` — exercising the typed
    failure-propagation path end to end.
    """

    case: str
    machine: str = "sp2"
    nodes: int = 4
    scale: float = 0.1
    nsteps: int = 2
    f0: float = math.inf
    backend: str = "sim"
    inject: str | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise JobSpecError(f"nodes must be >= 1, got {self.nodes}")
        if self.nsteps < 1:
            raise JobSpecError(f"nsteps must be >= 1, got {self.nsteps}")
        if not (self.scale > 0):
            raise JobSpecError(f"scale must be > 0, got {self.scale}")
        if self.inject is not None and not str(self.inject).startswith(
            _INJECT_PREFIXES
        ):
            raise JobSpecError(f"unknown inject spec {self.inject!r}")

    @property
    def deterministic(self) -> bool:
        """Whether this job's payload bytes are reproducible (and hence
        cacheable): true for the ``sim`` backend, false for measured
        engines like ``mp``."""
        return self.backend == "sim"

    def config(self) -> dict[str, Any]:
        """The canonical knob dict — what :meth:`sha` hashes."""
        out: dict[str, Any] = {
            "case": self.case,
            "machine": self.machine,
            "nodes": int(self.nodes),
            "scale": float(self.scale),
            "nsteps": int(self.nsteps),
            "f0": float(self.f0),
            "backend": self.backend,
        }
        if self.inject is not None:
            out["inject"] = self.inject
        return out

    def sha(self) -> str:
        """Content identity: sha256 of the canonical config dict."""
        return config_sha(self.config())

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form (non-finite floats as canonical strings)."""
        out = self.config()
        if not math.isfinite(out["f0"]):
            out["f0"] = repr(out["f0"])
        return out

    @classmethod
    def from_dict(cls, data: Any, *, check_runnable: bool = True) -> "JobSpec":
        """Build a validated spec from an untrusted wire dict.

        Unknown keys are rejected (a typo must not silently mint a new
        job identity); with ``check_runnable`` the case and machine
        names are checked against the registries so a bad submission
        fails at the protocol boundary, not inside a pool worker.
        """
        if not isinstance(data, dict):
            raise JobSpecError(f"job must be an object, got {type(data).__name__}")
        unknown = set(data) - set(_FIELDS) - {"inject"}
        if unknown:
            raise JobSpecError(f"unknown job field(s): {sorted(unknown)}")
        if "case" not in data or not isinstance(data["case"], str):
            raise JobSpecError("job needs a string 'case' field")
        machine = data.get("machine", "sp2")
        backend = data.get("backend", "sim")
        inject = data.get("inject")
        if not isinstance(machine, str) or not isinstance(backend, str):
            raise JobSpecError("'machine' and 'backend' must be strings")
        if inject is not None and not isinstance(inject, str):
            raise JobSpecError(f"'inject' must be a string, got {inject!r}")
        nodes = data.get("nodes", 4)
        nsteps = data.get("nsteps", 2)
        if isinstance(nodes, bool) or not isinstance(nodes, int):
            raise JobSpecError(f"nodes must be an integer, got {nodes!r}")
        if isinstance(nsteps, bool) or not isinstance(nsteps, int):
            raise JobSpecError(f"nsteps must be an integer, got {nsteps!r}")
        spec = cls(
            case=data["case"],
            machine=machine,
            nodes=nodes,
            scale=_parse_float(data.get("scale", 0.1), "scale"),
            nsteps=nsteps,
            f0=_parse_float(data.get("f0", math.inf), "f0"),
            backend=backend,
            inject=inject,
        )
        if check_runnable:
            spec.check_runnable()
        return spec

    def check_runnable(self) -> None:
        """Raise :class:`JobSpecError` for names no worker could run."""
        from repro.backend import backend_help
        from repro.machine import MACHINE_PRESETS

        if self.case not in _known_cases():
            raise JobSpecError(
                f"unknown case {self.case!r}; choose from "
                f"{sorted(_known_cases())}"
            )
        if self.machine not in MACHINE_PRESETS:
            raise JobSpecError(
                f"unknown machine {self.machine!r}; choose from "
                f"{sorted(MACHINE_PRESETS)}"
            )
        if self.backend not in backend_help():
            raise JobSpecError(
                f"unknown backend {self.backend!r}; choose from "
                f"{sorted(backend_help())}"
            )


def _apply_inject(spec: JobSpec) -> None:
    """Interpret the run-side ``inject`` knobs (crash is worker-side)."""
    inject = spec.inject
    if not inject:
        return
    if inject.startswith("sleep:"):
        time.sleep(float(inject.split(":", 1)[1]))
    elif inject.startswith("error:"):
        raise RuntimeError(inject.split(":", 1)[1])
    elif inject == "rankfail":
        from repro.machine.faults import RankFailure

        raise RankFailure(
            failed={1: 0.0}, time=0.0, blocked=[], completed=[],
            nranks=spec.nodes,
        )
    # "crash"/"crash:once" are handled by the pool worker before the
    # run starts; a direct run_job treats them as a no-op so the direct
    # payload stays comparable to the served one.


#: Backends whose start-up cost is worth amortising across jobs.  A
#: cluster engine owns a pool of node daemons (TCP handshakes, forked
#: workers); tearing that down after every served job would turn the
#: warm-pool daemon into a cold-start machine.  Keyed by backend name —
#: each pool worker process keeps its own warm engine.
_WARM_BACKENDS: dict[str, Any] = {}


def _job_backend(name: str) -> Any:
    """Build (or reuse) the execution engine for one served job.

    ``sim``/``mp`` engines are cheap throwaways; ``cluster`` engines are
    cached per worker process so the node pool survives between jobs —
    ``repro serve`` then dispatches onto a running cluster instead of
    spawning one per submission.
    """
    from repro.backend import get_backend

    if name != "cluster":
        return get_backend(name)
    engine = _WARM_BACKENDS.get(name)
    if engine is None:
        engine = _WARM_BACKENDS[name] = get_backend(name)
    return engine


def close_warm_backends() -> None:
    """Release any warm engines this process holds (node daemons exit
    on the shutdown frame instead of seeing a connection reset)."""
    while _WARM_BACKENDS:
        _, engine = _WARM_BACKENDS.popitem()
        try:
            engine.close()
        except Exception:  # noqa: BLE001 - teardown is best-effort
            pass


def run_job(spec: JobSpec) -> dict:
    """Execute one job; returns the full result payload dict.

    The payload's ``result`` section contains only modeled quantities
    for ``sim`` jobs, so it is deterministic; ``deterministic: false``
    marks measured (``mp``) payloads as host data.
    """
    from repro.core import OverflowD1
    from repro.machine import MACHINE_PRESETS

    spec.check_runnable()
    _apply_inject(spec)
    preset = MACHINE_PRESETS[spec.machine]
    machine = preset() if spec.machine == "ymp" else preset(nodes=spec.nodes)
    cfg = _known_cases()[spec.case](
        machine=machine, scale=spec.scale, nsteps=spec.nsteps, f0=spec.f0
    )
    run = OverflowD1(cfg, backend=_job_backend(spec.backend)).run()
    rollup = run.rollup()
    igbp = run.igbp_rollup()
    result = {
        "elapsed_s": run.elapsed,
        "time_per_step_s": run.time_per_step,
        "mflops_per_node": run.mflops_per_node,
        "pct_dcf3d": run.pct_dcf3d,
        "nsteps": run.nsteps,
        "nranks": run.nprocs,
        "total_gridpoints": cfg.total_gridpoints,
        "ngrids": len(cfg.grids),
        "phases": rollup.breakdown(),
        "imbalance": {
            "I": [int(v) for v in igbp.accumulated()],
            "ibar": igbp.ibar(),
            "f_max": float(igbp.f().max()) if igbp.nranks else 0.0,
        },
        "partition_history": [
            [step, list(procs)] for step, procs in run.partition_history
        ],
    }
    return {
        "schema": SERVE_RESULT_SCHEMA,
        "job": spec.config(),
        "job_sha": spec.sha(),
        "deterministic": spec.deterministic,
        "result": result,
    }


def run_job_bytes(spec: JobSpec) -> bytes:
    """Canonical payload bytes — the unit of caching and byte identity."""
    return canonical_json(run_job(spec)).encode()
