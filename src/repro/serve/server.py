"""The ``repro serve`` daemon: unix-socket front end over the pool.

Architecture (all inside one process):

* an **accept loop** (caller's thread via :meth:`serve_forever`, or a
  background thread via :meth:`start`) takes unix-socket connections
  and hands each to a connection-handler thread speaking the
  line-delimited JSON protocol;
* a bounded FIFO **job queue** feeds one **dispatcher thread per pool
  worker**; dispatchers pull job records, call
  :meth:`WorkerPool.execute` and publish the outcome on the record;
* a :class:`~repro.serve.cache.ResultCache` answers repeat submissions
  of deterministic jobs with the literal bytes of the first run, and an
  **active-job map** coalesces concurrent submissions of the same sha
  onto one record, so a thundering herd of identical requests costs one
  execution.

Failure propagation is typed end to end: a job whose program raised
surfaces as a ``failed`` record carrying ``{kind, message, detail}``
(with :class:`~repro.machine.faults.RankFailure` fields preserved in
``detail``); worker crashes are retried by the pool and only surface
after retries exhaust; timeouts surface as ``JobTimeout``.

Shutdown is a graceful drain: on ``shutdown`` (or SIGTERM via the CLI)
the server stops accepting submissions (new ones get a ``Draining``
error), lets queued and running jobs finish, then closes the pool and
removes the socket.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import socket
import threading
import time
from typing import Any

from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec, JobSpecError
from repro.serve.pool import (
    JobExecutionError,
    JobTimeout,
    PoolError,
    WorkerCrash,
    WorkerPool,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    FrameTooLarge,
    ProtocolError,
    check_socket_path,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)

__all__ = ["ReproServer", "JobRecord"]

_job_ids = itertools.count(1)


class JobRecord:
    """One submission's lifecycle, shared between handler and dispatcher."""

    __slots__ = (
        "id", "spec", "sha", "use_cache", "state", "cached", "attempts",
        "error", "payload", "submitted_at", "finished_at", "done",
    )

    def __init__(self, spec: JobSpec, use_cache: bool) -> None:
        self.id = next(_job_ids)
        self.spec = spec
        self.sha = spec.sha()
        self.use_cache = use_cache
        self.state = "queued"  # queued | running | done | failed
        self.cached = False
        self.attempts = 0
        self.error: dict[str, Any] | None = None
        self.payload: bytes | None = None
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        self.done = threading.Event()

    def finish_ok(self, payload: bytes, attempts: int, cached: bool) -> None:
        self.payload = payload
        self.attempts = attempts
        self.cached = cached
        self.state = "done"
        self.finished_at = time.time()
        self.done.set()

    def finish_err(self, kind: str, message: str, detail: dict) -> None:
        self.error = {"kind": kind, "message": message, "detail": detail}
        self.state = "failed"
        self.finished_at = time.time()
        self.done.set()

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "sha": self.sha,
            "case": self.spec.case,
            "backend": self.spec.backend,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
        }
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.error is not None:
            out["error"] = self.error
        return out


class ReproServer:
    """Long-lived job server over a unix socket."""

    def __init__(
        self,
        socket_path: str,
        workers: int = 2,
        cache: ResultCache | None = None,
        cache_dir: str | None = None,
        job_timeout: float | None = 300.0,
        max_retries: int = 2,
        tracer: Any = None,
        max_queue: int = 1024,
    ) -> None:
        self.socket_path = str(socket_path)
        if cache is None:
            cache = ResultCache(directory=cache_dir)
        self.cache = cache
        self.tracer = tracer
        self.pool = WorkerPool(
            workers=workers, job_timeout=job_timeout, max_retries=max_retries
        )
        self._queue: queue.Queue[JobRecord] = queue.Queue(maxsize=max_queue)
        self._jobs: dict[int, JobRecord] = {}
        self._active: dict[str, JobRecord] = {}  # sha -> in-flight record
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._running = 0  # dispatcher-held jobs
        self._idle_cv = threading.Condition(self._lock)
        self._sock: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None
        self.started_at = time.time()

    # ------------------------------------------------------------- setup

    def _bind(self) -> None:
        # Over-long paths get the typed SocketPathTooLong (an OSError
        # naming the path) instead of the kernel's bare bind failure.
        path = check_socket_path(self.socket_path)
        if os.path.exists(path):
            # A stale socket from a crashed daemon is fine to replace; a
            # *live* one is not.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(path)
            except OSError:
                os.unlink(path)
            else:
                probe.close()
                raise OSError(
                    f"socket {path} is already served by a live daemon"
                )
            finally:
                probe.close()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(64)
        self._sock.settimeout(0.2)  # so the accept loop sees _stop

    def start(self) -> "ReproServer":
        """Bind, warm the pool, and serve from background threads."""
        self._bind()
        self.pool.start()
        for i in range(self.pool.workers):
            t = threading.Thread(
                target=self._dispatch_loop, args=(i,),
                name=f"serve-dispatch-{i}", daemon=True,
            )
            t.start()
            self._threads.append(t)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------ accept loop

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            t = threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="serve-conn", daemon=True,
            )
            t.start()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    # -------------------------------------------------------- dispatch

    def _dispatch_loop(self, index: int) -> None:
        """One dispatcher per pool worker: pull, execute, publish."""
        while True:
            try:
                rec = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            with self._lock:
                self._running += 1
            rec.state = "running"
            t0 = time.perf_counter()
            try:
                payload, attempts = self.pool.execute(rec.spec)
            except JobExecutionError as exc:
                rec.finish_err(exc.kind, exc.message, exc.detail)
            except (WorkerCrash, JobTimeout, PoolError) as exc:
                rec.finish_err(type(exc).__name__, str(exc), {})
            except BaseException as exc:  # pragma: no cover - last resort
                rec.finish_err(type(exc).__name__, str(exc), {})
            else:
                if rec.use_cache and rec.spec.deterministic:
                    self.cache.put(rec.sha, payload)
                rec.finish_ok(payload, attempts, cached=False)
                if self.tracer is not None:
                    t1 = time.perf_counter()
                    self.tracer.op(
                        index, f"job:{rec.spec.case}", "compute",
                        t0, t1, 0.0, len(payload),
                    )
            with self._lock:
                self._active.pop(rec.sha, None)
                self._running -= 1
                self._idle_cv.notify_all()

    # ------------------------------------------------------- operations

    def _op_ping(self, req: dict) -> dict:
        return ok_response(
            protocol=PROTOCOL_VERSION,
            pid=os.getpid(),
            workers=self.pool.workers,
            uptime_s=time.time() - self.started_at,
            draining=self._draining.is_set(),
        )

    def _op_submit(self, req: dict) -> dict:
        use_cache = bool(req.get("cache", True))
        try:
            spec = JobSpec.from_dict(req.get("job"))
        except JobSpecError as exc:
            return error_response("JobSpecError", str(exc))
        sha = spec.sha()
        if use_cache and spec.deterministic:
            hit = self.cache.get(sha)
            if hit is not None:
                rec = JobRecord(spec, use_cache)
                rec.finish_ok(hit, attempts=0, cached=True)
                with self._lock:
                    self._jobs[rec.id] = rec
                return self._job_response(rec, req)
        with self._lock:
            if self._draining.is_set():
                return error_response(
                    "Draining", "server is draining; not accepting jobs"
                )
            live = self._active.get(sha)
            if live is not None and req.get("coalesce", True):
                rec = live  # piggyback on the identical in-flight job
            else:
                rec = JobRecord(spec, use_cache)
                self._jobs[rec.id] = rec
                self._active[sha] = rec
                try:
                    self._queue.put_nowait(rec)
                except queue.Full:
                    self._jobs.pop(rec.id, None)
                    self._active.pop(sha, None)
                    return error_response(
                        "QueueFull", "job queue is at capacity; retry later"
                    )
        return self._job_response(rec, req)

    def _op_wait(self, req: dict) -> dict:
        rec = self._find(req)
        if rec is None:
            return error_response(
                "UnknownJob", f"no job {req.get('id', req.get('sha'))!r}"
            )
        timeout = req.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            return error_response("ProtocolError", "timeout must be a number")
        if not rec.done.wait(timeout):
            return ok_response(**rec.summary(), timed_out=True)
        return self._job_response(rec, req)

    def _op_result(self, req: dict) -> dict:
        rec = self._find(req)
        if rec is None:
            return error_response(
                "UnknownJob", f"no job {req.get('id', req.get('sha'))!r}"
            )
        return self._job_response(rec, req)

    def _op_jobs(self, req: dict) -> dict:
        with self._lock:
            records = sorted(self._jobs.values(), key=lambda r: r.id)
        return ok_response(jobs=[r.summary() for r in records])

    def _op_stats(self, req: dict) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for rec in self._jobs.values():
                states[rec.state] = states.get(rec.state, 0) + 1
        return ok_response(
            cache=self.cache.stats(),
            jobs=states,
            workers=self.pool.workers,
            worker_crashes=self.pool.crashes,
            queue_depth=self._queue.qsize(),
            draining=self._draining.is_set(),
        )

    def _op_shutdown(self, req: dict) -> dict:
        # Non-daemon: interpreter exit waits for the drain to finish
        # (pool closed, socket unlinked) instead of killing it mid-way.
        threading.Thread(
            target=self.shutdown, name="serve-shutdown", daemon=False
        ).start()
        return ok_response(draining=True)

    _OPS = {
        "ping": _op_ping,
        "submit": _op_submit,
        "wait": _op_wait,
        "result": _op_result,
        "jobs": _op_jobs,
        "stats": _op_stats,
        "shutdown": _op_shutdown,
    }

    def _find(self, req: dict) -> JobRecord | None:
        job_id = req.get("id")
        sha = req.get("sha")
        with self._lock:
            if job_id is not None:
                return self._jobs.get(job_id)
            if isinstance(sha, str):
                best = None
                for rec in self._jobs.values():
                    if rec.sha == sha and (best is None or rec.id > best.id):
                        best = rec
                return best
        return None

    def _job_response(self, rec: JobRecord, req: dict) -> dict:
        fields = rec.summary()
        if rec.state == "done" and rec.payload is not None:
            if req.get("payload", True):
                fields["payload"] = rec.payload.decode()
            return ok_response(**fields)
        if rec.state == "failed":
            err = fields.pop("error")
            return error_response(
                err["kind"], err["message"], err["detail"], **fields
            )
        return ok_response(**fields)

    # ------------------------------------------------------ connections

    def _handle_connection(self, conn: socket.socket) -> None:
        rfile = conn.makefile("rb")
        try:
            while True:
                try:
                    req = read_frame(rfile)
                except FrameTooLarge as exc:
                    self._send(conn, error_response("FrameTooLarge", str(exc)))
                    return
                except ProtocolError as exc:
                    # Recoverable garbage: answer and keep reading.
                    self._send(conn, error_response("ProtocolError", str(exc)))
                    continue
                if req is None:
                    return  # clean EOF
                op = req.get("op")
                handler = self._OPS.get(op) if isinstance(op, str) else None
                if handler is None:
                    resp = error_response(
                        "ProtocolError",
                        f"unknown op {op!r}; expected one of "
                        f"{sorted(self._OPS)}",
                    )
                else:
                    try:
                        resp = handler(self, req)
                    except Exception as exc:  # pragma: no cover - safety net
                        resp = error_response(type(exc).__name__, str(exc))
                if "seq" in req:
                    resp["seq"] = req["seq"]
                if not self._send(conn, resp):
                    return
        finally:
            try:
                rfile.close()
            except OSError:  # pragma: no cover
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    @staticmethod
    def _send(conn: socket.socket, resp: dict) -> bool:
        try:
            conn.sendall(encode_frame(resp))
            return True
        except ProtocolError:
            # Response itself unencodable — degrade, never crash handler.
            fallback = error_response(
                "ProtocolError", "response was not encodable"
            )
            try:
                conn.sendall(
                    json.dumps(fallback, separators=(",", ":")).encode()
                    + b"\n"
                )
                return True
            except OSError:
                return False
        except OSError:
            return False

    # --------------------------------------------------------- shutdown

    def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting submissions and wait for in-flight work."""
        self._draining.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle_cv:
            while self._queue.qsize() > 0 or self._running > 0:
                remaining = 0.2
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    remaining = min(remaining, 0.2)
                self._idle_cv.wait(timeout=remaining)
        return True

    def shutdown(self, drain_timeout: float | None = 30.0) -> None:
        """Graceful stop: drain, halt threads, close pool, remove socket."""
        if self._stop.is_set():
            return
        self.drain(timeout=drain_timeout)
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for t in self._threads:
            t.join(timeout=2.0)
        self.pool.close()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
