"""Line-delimited JSON protocol spoken over the daemon's unix socket.

One frame = one JSON object on one ``\\n``-terminated UTF-8 line, at
most :data:`MAX_FRAME` bytes including the terminator.  Requests carry
an ``op`` field; responses carry ``ok`` (and, on failure, an ``error``
object ``{"kind", "message", "detail"}``).  The framing is deliberately
dumb: any malformed line — broken UTF-8, invalid JSON, a non-object, a
missing ``op`` — is answered with a ``ProtocolError`` response and the
connection stays open, so a confused (or fuzzing) client can never
wedge the daemon.  Only two events close a connection from the server
side: EOF from the peer and an oversized frame (the one case where
resynchronising on line boundaries is impossible).

Result payloads ride *inside* a response frame as a JSON string field
(``payload``) holding the canonical payload text verbatim — JSON string
escaping is transparent, so the client recovers the exact cached bytes
and byte identity survives the wire.

See ``docs/serving.md`` for the full request/response catalogue.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "ProtocolError",
    "FrameTooLarge",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "ok_response",
    "error_response",
]

#: Protocol version; servers reply with it to ``ping`` and refuse
#: nothing by version today (there is only one).
PROTOCOL_VERSION = "repro-serve/1"

#: Hard cap on one frame, terminator included.  Result payloads are a
#: few KiB; a megabyte of headroom means the cap only ever trips on
#: garbage or abuse.
MAX_FRAME = 1 << 20


class ProtocolError(ValueError):
    """A frame violated the wire contract (recoverable per-frame)."""


class FrameTooLarge(ProtocolError):
    """A frame exceeded :data:`MAX_FRAME` (connection must close)."""


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Serialise one frame; raises :class:`ProtocolError` when ``obj``
    cannot be represented (non-finite floats, exotic types) or exceeds
    the frame cap."""
    try:
        text = json.dumps(obj, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable frame: {exc}") from exc
    data = text.encode() + b"\n"
    if len(data) > MAX_FRAME:
        raise FrameTooLarge(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME}-byte cap"
        )
    return data


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line into a frame dict."""
    try:
        obj = json.loads(line.decode())
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def read_frame(rfile: BinaryIO) -> dict[str, Any] | None:
    """Read one frame from a buffered binary stream.

    Returns ``None`` on clean EOF.  Raises :class:`FrameTooLarge` when
    the line blows the cap (the caller must close the connection — the
    stream can no longer be resynchronised) and :class:`ProtocolError`
    for per-line garbage (the caller may answer and keep reading).
    """
    line = rfile.readline(MAX_FRAME + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME:
        raise FrameTooLarge(
            f"incoming frame exceeds the {MAX_FRAME}-byte cap"
        )
    return decode_frame(line)


def ok_response(**fields: Any) -> dict[str, Any]:
    out: dict[str, Any] = {"ok": True}
    out.update(fields)
    return out


def error_response(
    kind: str, message: str, detail: dict | None = None, **fields: Any
) -> dict[str, Any]:
    out: dict[str, Any] = {
        "ok": False,
        "error": {"kind": kind, "message": message, "detail": detail or {}},
    }
    out.update(fields)
    return out
