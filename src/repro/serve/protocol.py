"""Line-delimited JSON protocol spoken over the daemon's unix socket.

One frame = one JSON object on one ``\\n``-terminated UTF-8 line, at
most :data:`MAX_FRAME` bytes including the terminator.  Requests carry
an ``op`` field; responses carry ``ok`` (and, on failure, an ``error``
object ``{"kind", "message", "detail"}``).  The framing is deliberately
dumb: any malformed line — broken UTF-8, invalid JSON, a non-object, a
missing ``op`` — is answered with a ``ProtocolError`` response and the
connection stays open, so a confused (or fuzzing) client can never
wedge the daemon.  Only two events close a connection from the server
side: EOF from the peer and an oversized frame (the one case where
resynchronising on line boundaries is impossible).

Result payloads ride *inside* a response frame as a JSON string field
(``payload``) holding the canonical payload text verbatim — JSON string
escaping is transparent, so the client recovers the exact cached bytes
and byte identity survives the wire.

See ``docs/serving.md`` for the full request/response catalogue.
"""

from __future__ import annotations

import errno
import json
import sys
from typing import Any, BinaryIO

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "MAX_SOCKET_PATH",
    "ProtocolError",
    "FrameTooLarge",
    "SocketPathTooLong",
    "check_socket_path",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "ok_response",
    "error_response",
]

#: Protocol version; servers reply with it to ``ping`` and refuse
#: nothing by version today (there is only one).
PROTOCOL_VERSION = "repro-serve/1"

#: Hard cap on one frame, terminator included.  Result payloads are a
#: few KiB; a megabyte of headroom means the cap only ever trips on
#: garbage or abuse.
MAX_FRAME = 1 << 20


class ProtocolError(ValueError):
    """A frame violated the wire contract (recoverable per-frame)."""


class FrameTooLarge(ProtocolError):
    """A frame exceeded :data:`MAX_FRAME` (connection must close)."""


#: Usable bytes in a ``sockaddr_un`` path.  The kernel's buffer is 108
#: bytes on Linux and 104 on the BSDs/macOS; one byte goes to the NUL
#: terminator.  Paths longer than this fail to bind/connect with a raw
#: ``OSError`` whose message never names the path — worth a typed error.
MAX_SOCKET_PATH = 103 if sys.platform == "darwin" else 107


class SocketPathTooLong(OSError):
    """A unix socket path exceeds the OS ``sockaddr_un`` limit.

    Subclasses :class:`OSError` (with ``ENAMETOOLONG``) so existing
    ``except OSError`` handlers keep working, but carries an actionable
    message naming the offending path and its byte length — instead of
    the kernel's bare ``AF_UNIX path too long``.
    """

    def __init__(self, path: str) -> None:
        encoded = len(str(path).encode())
        super().__init__(
            errno.ENAMETOOLONG,
            f"unix socket path is {encoded} bytes, over the OS limit of "
            f"{MAX_SOCKET_PATH}: {path!r} — choose a shorter --socket "
            f"path (e.g. under /tmp)",
        )
        self.path = str(path)


def check_socket_path(path: str) -> str:
    """Validate a unix socket path's length; returns it unchanged.

    Raises :class:`SocketPathTooLong` *before* any bind/connect so both
    the server and the client report the same typed, path-naming error.
    """
    if len(str(path).encode()) > MAX_SOCKET_PATH:
        raise SocketPathTooLong(path)
    return str(path)


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Serialise one frame; raises :class:`ProtocolError` when ``obj``
    cannot be represented (non-finite floats, exotic types) or exceeds
    the frame cap."""
    try:
        text = json.dumps(obj, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable frame: {exc}") from exc
    data = text.encode() + b"\n"
    if len(data) > MAX_FRAME:
        raise FrameTooLarge(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME}-byte cap"
        )
    return data


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line into a frame dict."""
    try:
        obj = json.loads(line.decode())
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def read_frame(rfile: BinaryIO) -> dict[str, Any] | None:
    """Read one frame from a buffered binary stream.

    Returns ``None`` on clean EOF.  Raises :class:`FrameTooLarge` when
    the line blows the cap (the caller must close the connection — the
    stream can no longer be resynchronised) and :class:`ProtocolError`
    for per-line garbage (the caller may answer and keep reading).
    """
    line = rfile.readline(MAX_FRAME + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME:
        raise FrameTooLarge(
            f"incoming frame exceeds the {MAX_FRAME}-byte cap"
        )
    return decode_frame(line)


def ok_response(**fields: Any) -> dict[str, Any]:
    out: dict[str, Any] = {"ok": True}
    out.update(fields)
    return out


def error_response(
    kind: str, message: str, detail: dict | None = None, **fields: Any
) -> dict[str, Any]:
    out: dict[str, Any] = {
        "ok": False,
        "error": {"kind": kind, "message": message, "detail": detail or {}},
    }
    out.update(fields)
    return out
