#!/usr/bin/env python
"""Real 3-D overset physics: a store body dropping through a background.

The 3-D counterpart of the quickstart: a body-of-revolution store grid
overset on a Cartesian background, genuine 3-D Euler on both grids with
GCL-exact metrics, hole cutting, donor search with nth-level restart,
and fringe interpolation — while the store descends through the
background (the motion pattern of the paper's separation case).

Run:  python examples/store_drop_3d.py
"""

import numpy as np

from repro.core import Overset3D
from repro.grids.generators import (
    body_of_revolution_grid,
    cartesian_background,
)
from repro.motion import SteadyDescent
from repro.solver import FlowConfig


def main() -> None:
    store = body_of_revolution_grid(
        "store", ni=31, nj=21, nk=11, viscous=False,
        length=1.0, body_radius=0.12, outer_radius=0.45,
        nose_bluntness=0.35,  # blunt nose: relaxes the CFL timestep
    )
    bg = cartesian_background(
        "bg", (-0.6, -1.4, -0.7), (1.6, 0.7, 0.7), (29, 25, 19)
    )
    print("Component grids:")
    for g in (store, bg):
        print(f"  {g!r}")

    driver = Overset3D(
        [store, bg],
        FlowConfig(mach=0.6, cfl=1.5),
        search_lists={0: [1], 1: [0]},
        motions={0: SteadyDescent(velocity=(0.0, -0.08, 0.0))},
        fringe_layers=1,
    )
    rep = driver.last_report
    print(
        f"\nInitial connectivity: {rep.igbps} IGBPs, "
        f"{rep.donors_found} found, {rep.orphans} orphans; "
        f"background hole points: {(driver.iblanks[1] == 0).sum()}"
    )

    print(f"\n{'step':>5} {'t':>9} {'store y':>9} {'max resid':>10} "
          f"{'walk steps':>11} {'axial force':>12}")
    for k in range(12):
        out = driver.step()
        y = driver.solvers[0].xyz[..., 1].mean()
        f = driver.surface_forces(0)
        print(
            f"{k:5d} {out['t']:9.5f} {y:9.4f} "
            f"{max(out['residuals']):10.3e} "
            f"{out['connectivity'].search_steps:11d} {f['fx']:+12.5f}"
        )
    if driver.restart is not None:
        print(f"\nnth-level-restart hit rate: {driver.restart.hit_rate:.1%}")


if __name__ == "__main__":
    main()
