#!/usr/bin/env python
"""Parallel performance study on the simulated IBM SP2 and IBM SP.

Reproduces the structure of the paper's Table 1 / Figure 5 at a chosen
scale: the oscillating-airfoil case is run on 6..24 simulated nodes of
both machines; for each partition the real distributed DCF3D protocol
executes and the table reports Mflops/node, parallel speedup (overall
and per module) and the percentage of time in the connectivity
solution.

Run:  python examples/parallel_speedup.py [scale]
      (scale defaults to 0.25; 1.0 = the paper's 64K-point system)
"""

import sys

from repro.cases import airfoil_case
from repro.core import OverflowD1, speedup_table
from repro.machine import sp, sp2


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    node_counts = [6, 9, 12, 18, 24]
    for machine_fn in (sp2, sp):
        runs = []
        cfg0 = None
        for nodes in node_counts:
            cfg = airfoil_case(
                machine=machine_fn(nodes=nodes), scale=scale, nsteps=5
            )
            cfg0 = cfg0 or cfg
            runs.append(OverflowD1(cfg).run())
        table = speedup_table(runs, cfg0.total_gridpoints)
        print(table.format())
        print()


if __name__ == "__main__":
    main()
