#!/usr/bin/env python
"""Quickstart: a real coupled overset flow solve in ~30 seconds.

Builds the paper's three-grid oscillating-airfoil system at a small
scale, runs genuine 2-D Navier-Stokes on every component grid with hole
cutting, donor search and fringe interpolation between them, pitches
the airfoil sinusoidally (alpha = 5 deg * sin(pi/2 t), the paper's
motion), and prints per-step diagnostics plus the integrated surface
forces.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cases.airfoil import AIRFOIL_SEARCH_LISTS, airfoil_grids
from repro.core import Overset2D
from repro.motion import PitchOscillation
from repro.solver import FlowConfig


def main() -> None:
    # The paper's case 4.1 at reduced resolution: near-field O-grid,
    # intermediate annulus, Cartesian background.
    grids = airfoil_grids(scale=0.05)
    print("Component grids:")
    for g in grids:
        print(f"  {g!r}")

    flow = FlowConfig(mach=0.5, alpha=0.0, reynolds=1e4, cfl=2.0)
    driver = Overset2D(
        grids,
        flow,
        AIRFOIL_SEARCH_LISTS,
        motions={0: PitchOscillation(center=(0.25, 0.0))},
        fringe_layers=2,
    )
    rep = driver.last_report
    print(
        f"\nInitial connectivity: {rep.igbps} IGBPs, "
        f"{rep.donors_found} donors found, {rep.orphans} orphans "
        f"(IGBP/gridpoint ratio {driver.igbp_ratio():.3f})"
    )

    nsteps = 30
    print(f"\nRunning {nsteps} coupled timesteps...")
    print(f"{'step':>5} {'t':>8} {'dt':>9} {'max resid':>10} "
          f"{'search steps':>13} {'alpha(deg)':>11}")
    for k in range(nsteps):
        out = driver.step()
        alpha = np.rad2deg(driver.motions[0].alpha(out["t"]))
        conn = out["connectivity"]
        print(
            f"{k:5d} {out['t']:8.4f} {out['dt']:9.2e} "
            f"{max(out['residuals']):10.3e} {conn.search_steps:13d} "
            f"{alpha:11.3f}"
        )

    f = driver.surface_forces(0)
    print(
        f"\nAirfoil surface forces: fx = {f['fx']:+.5f}, "
        f"fy = {f['fy']:+.5f}, pitching moment = {f['moment']:+.6f}"
    )
    if driver.restart is not None:
        print(f"nth-level-restart cache hit rate: "
              f"{driver.restart.hit_rate:.1%}")


if __name__ == "__main__":
    main()
