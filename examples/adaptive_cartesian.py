#!/usr/bin/env python
"""The section-5 adaptive overset Cartesian scheme on an X-38-like body.

Demonstrates the paper's forward-looking machinery, here fully built:

1. near-body curvilinear grids around a blunt re-entry vehicle;
2. the default off-body Cartesian brick system (Fig. 12a) refined by
   proximity to the body over several adapt cycles (Fig. 12b);
3. the body then *moves* and the off-body system follows it —
   refinement ahead, coarsening behind;
4. Algorithm-3 grouping packs the hundreds of bricks onto nodes with
   even work and high intra-group connectivity;
5. the seven-parameter storage argument and the search-free Cartesian
   connectivity are quantified.

Run:  python examples/adaptive_cartesian.py
"""

import numpy as np

from repro.adapt import cartesian_connectivity
from repro.cases import x38_adaptive_system, x38_near_body_grids
from repro.grids import AABB, RigidMotion


def describe(system) -> str:
    levels = {}
    for b in system.bricks:
        levels[b.level] = levels.get(b.level, 0) + 1
    lv = ", ".join(f"L{k}: {v}" for k, v in sorted(levels.items()))
    return (f"{len(system.bricks)} bricks ({lv}), "
            f"{system.total_points()} off-body points, "
            f"{system.parameters_stored()} stored parameters")


def main() -> None:
    near = x38_near_body_grids(scale=0.05)
    print("Near-body curvilinear grids:")
    for g in near:
        print(f"  {g!r}")
    body_boxes = [g.bounding_box() for g in near]

    system = x38_adaptive_system(max_level=3, points_per_brick=9)
    print(f"\nDefault off-body system: {describe(system)}")

    print("\nAdapting toward the vehicle (proximity criterion):")
    for cycle in range(3):
        stats = system.adapt(body_boxes, margin=0.1)
        print(f"  cycle {cycle}: {describe(system)}")

    # Body motion: translate the vehicle 1.5 units downstream and let
    # the off-body system follow.
    print("\nVehicle moves +1.5 in x; off-body system re-adapts:")
    shift = RigidMotion.translation_of([1.5, 0.0, 0.0])
    moved_boxes = [
        AABB(b.lo + [1.5, 0, 0], b.hi + [1.5, 0, 0]) for b in body_boxes
    ]
    for cycle in range(4):
        stats = system.adapt(moved_boxes, margin=0.1)
        print(f"  cycle {cycle}: {describe(system)} "
              f"(+{stats.refined} refined, -{stats.coarsened} merged)")

    # Algorithm-3 grouping onto 8 nodes.
    grouping = system.group(8)
    print("\nAlgorithm-3 grouping onto 8 nodes:")
    print(f"  gridpoints per group: {grouping.group_points}")
    print(f"  load imbalance (max/avg): {grouping.imbalance():.3f}")
    edges = system.connectivity_edges()
    kept = grouping.intra_group_edges(edges)
    print(f"  connectivity edges kept inside groups: {kept}/{len(edges)}")

    # The connectivity payoff: closed-form Cartesian donor lookup.
    conn = cartesian_connectivity(system.system, system.bricks)
    print("\nCartesian connectivity (no stencil-walk searches needed):")
    print(f"  brick fringe points:     {conn['fringe_points']}")
    print(f"  donors resolved in O(1): {conn['donors_resolved']}")
    print(f"  donor searches avoided:  {conn['searches_avoided']}")


if __name__ == "__main__":
    main()
