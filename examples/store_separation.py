#!/usr/bin/env python
"""Finned-store separation with static vs dynamic load balancing.

The paper's section 4.3 case: 16 grids (10 store + 3 wing/pylon + 3
Cartesian backgrounds) with the highest IGBP/gridpoint ratio of the
three problems, making it the test bed for the dynamic load balance
scheme (Algorithm 2).  This example:

1. prints the store's prescribed separation trajectory;
2. runs the case on a simulated SP2 with the static scheme (f0 = inf)
   and with the dynamic scheme (f0 = 5, the paper's value);
3. reports the paper's Table-5 comparison: %time in DCF3D and the
   processor counts Algorithm 2 reassigned.

Run:  python examples/store_separation.py [scale] [nodes]
      (defaults: scale 0.1, 28 nodes)
"""

import math
import sys

import numpy as np

from repro.cases import store_case
from repro.core import OverflowD1
from repro.core.overflow_d1 import PHASE_DCF, PHASE_FLOW
from repro.machine import sp2
from repro.motion import StoreSeparation


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 28

    motion = StoreSeparation(eject_velocity=0.08, gravity=0.04,
                             pitch_rate=0.015, center=(0.5, 0.0, 0.0))
    print("Store trajectory (reference point at the store nose):")
    nose = np.array([0.0, 0.0, 0.0])
    for t in (0.0, 0.5, 1.0, 2.0, 4.0):
        p = motion.at(t).apply(nose)
        print(f"  t={t:4.1f}: nose at ({p[0]:+.3f}, {p[1]:+.3f}, {p[2]:+.3f})")

    results = {}
    for label, f0 in (("static", math.inf), ("dynamic f0=5", 5.0)):
        cfg = store_case(machine=sp2(nodes=nodes), scale=scale,
                         nsteps=8, f0=f0)
        cfg.lb_check_interval = 2
        print(f"\nRunning {cfg.name!r}: {cfg.total_gridpoints} points, "
              f"{len(cfg.grids)} grids, {nodes} nodes, {label} ...")
        r = OverflowD1(cfg).run()
        results[label] = r
        print(f"  time/step          {r.time_per_step:.4f} simulated s")
        print(f"  %time in DCF3D     {r.pct_dcf3d:.1f}%")
        print(f"  Mflops/node        {r.mflops_per_node:.1f}")
        print(f"  DCF3D elapsed/step {r.phase_elapsed(PHASE_DCF)/r.nsteps:.4f} s")
        print(f"  flow  elapsed/step {r.phase_elapsed(PHASE_FLOW)/r.nsteps:.4f} s")
        for step, procs in r.partition_history:
            print(f"  partition from step {step}: {procs}")

    s = results["static"]
    d = results["dynamic f0=5"]
    print("\nPaper's Table-5 tradeoff at this configuration:")
    print(f"  DCF3D  : static {s.phase_elapsed(PHASE_DCF)/s.nsteps:.4f}"
          f" vs dynamic {d.phase_elapsed(PHASE_DCF)/d.nsteps:.4f} s/step")
    print(f"  combined: static {s.time_per_step:.4f}"
          f" vs dynamic {d.time_per_step:.4f} s/step")


if __name__ == "__main__":
    main()
