#!/usr/bin/env python
"""Render the reproduced speedup figures as ASCII charts.

Reads the CSV series the benchmarks write under ``benchmarks/results``
(run ``pytest benchmarks/ --benchmark-only`` first) and prints
Fig. 5/7/10-style charts: OVERFLOW vs DCF3D vs combined vs ideal.

Run:  python examples/plot_figures.py [results_dir]
"""

import csv
import sys
from pathlib import Path

from repro.core.ascii_plot import speedup_chart

FIGS = {
    "figure5_sp2.csv": "Fig. 5 (reproduced) - oscillating airfoil, IBM SP2",
    "figure5_sp.csv": "Fig. 5 (reproduced) - oscillating airfoil, IBM SP",
    "figure7_sp2.csv": "Fig. 7 (reproduced) - delta wing, IBM SP2",
    "figure10_sp2.csv": "Fig. 10 (reproduced) - store separation, IBM SP2",
}


def load_rows(path: Path) -> list[dict]:
    with path.open() as fh:
        rows = []
        for rec in csv.DictReader(fh):
            rows.append(
                {
                    "nodes": int(rec["nodes"]),
                    "speedup": float(rec["speedup"]),
                    "speedup_overflow": float(rec["speedup_overflow"]),
                    "speedup_dcf3d": float(rec["speedup_dcf3d"]),
                }
            )
    return rows


def main() -> None:
    results = Path(
        sys.argv[1] if len(sys.argv) > 1
        else Path(__file__).parent.parent / "benchmarks" / "results"
    )
    found = False
    for name, title in FIGS.items():
        path = results / name
        if not path.exists():
            continue
        found = True
        print(speedup_chart(load_rows(path), title=title))
        print()
    if not found:
        print(
            f"no figure CSVs under {results} - run "
            "`pytest benchmarks/ --benchmark-only` first"
        )


if __name__ == "__main__":
    main()
