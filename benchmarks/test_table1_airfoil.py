"""Table 1 / Figure 5: 2-D oscillating airfoil parallel performance.

Paper (SP2 / SP, 6-24 nodes, static LB, f0 = inf):

* Mflops/node ~ 23 -> 11 (SP2) and 31 -> 16 (SP) as nodes grow;
* parallel speedup 1 -> ~3.7 from 6 to 24 nodes (ideal 4);
* %time in DCF3D stays a modest slice (10-15%) and DCF3D's own
  speedup is visibly worse than OVERFLOW's (Fig. 5).

The benchmark runs the real distributed protocol at the paper's full
64K-point size and asserts those shapes.
"""

import pytest

from benchmarks._harness import bench_scale, emit, emit_csv, run_sweep, table_text
from repro.cases import airfoil_case
from repro.machine import sp, sp2

NODE_COUNTS = [6, 9, 12, 18, 24]
SCALE = bench_scale(1.0)  # the paper's actual problem size
NSTEPS = 5


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for name, machine_fn in (("SP2", sp2), ("SP", sp)):
        runs, total = run_sweep(
            airfoil_case, machine_fn, NODE_COUNTS, SCALE, NSTEPS
        )
        out[name] = table_text(runs, total)
    return out


@pytest.mark.benchmark(group="table1")
def test_table1_airfoil(benchmark, sweeps):
    def report():
        for name, (table, text) in sweeps.items():
            emit(f"table1_{name.lower()}", text)
            emit_csv(f"figure5_{name.lower()}", table)
        return sweeps

    result = benchmark.pedantic(report, rounds=1, iterations=1)

    for name, (table, _) in result.items():
        rows = table.rows
        # Overall speedup grows monotonically with node count.
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)
        # 6 -> 24 nodes: speedup in the ballpark of the paper's ~3.7
        # (ideal 4); accept a generous band.
        assert 2.0 < speedups[-1] <= 4.6
        # DCF3D remains a minority of the time on every partition.
        assert all(r["%dcf3d"] < 50.0 for r in rows)
        benchmark.extra_info[f"{name}_speedup_24n"] = speedups[-1]
        benchmark.extra_info[f"{name}_pct_dcf3d"] = [
            round(r["%dcf3d"], 1) for r in rows
        ]


@pytest.mark.benchmark(group="table1")
def test_figure5_module_speedups(benchmark, sweeps):
    """Fig. 5's key visual: DCF3D scales worse than OVERFLOW."""

    def series():
        return {
            name: [
                (r["nodes"], r["speedup_overflow"], r["speedup_dcf3d"])
                for r in table.rows
            ]
            for name, (table, _) in sweeps.items()
        }

    result = benchmark.pedantic(series, rounds=1, iterations=1)
    for name, rows in result.items():
        _, flow_top, dcf_top = rows[-1]
        assert flow_top > dcf_top, (
            f"{name}: OVERFLOW must out-scale DCF3D "
            f"(flow {flow_top:.2f} vs dcf {dcf_top:.2f})"
        )
        # OVERFLOW alone approaches the ideal slope.
        assert flow_top > 2.5


@pytest.mark.benchmark(group="table1")
def test_sp_outperforms_sp2(benchmark, sweeps):
    """The SP's faster nodes/network beat the SP2 at every count."""

    def compare():
        sp2_rows = sweeps["SP2"][0].rows
        sp_rows = sweeps["SP"][0].rows
        return [
            (a["nodes"], a["time/step(s)"], b["time/step(s)"])
            for a, b in zip(sp2_rows, sp_rows)
        ]

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    for nodes, t_sp2, t_sp in rows:
        assert t_sp < t_sp2
