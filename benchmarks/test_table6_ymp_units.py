"""Table 6: wall-clock speedup over a single-processor Cray YMP/864.

Paper: the store case's run time on n SP2/SP nodes versus one YMP
processor, in "YMP units".  Findings:

* one to two orders of magnitude overall speedup (9.4 -> 43 on the
  SP2, 18.5 -> 75 on the SP from 18 to 61 nodes);
* per-node performance is a significant fraction of the YMP: ~0.5-0.7
  YMP units per SP2 node, ~1.0-1.2 per SP node, roughly flat across
  partitions.
"""

import pytest

from benchmarks._harness import bench_scale, emit
from repro.cases import store_case
from repro.core import OverflowD1, serial_time_per_step
from repro.machine import cray_ymp, sp, sp2

NODE_COUNTS = [18, 28, 42, 61]
SCALE = bench_scale(0.15)
NSTEPS = 4


@pytest.fixture(scope="module")
def ymp_comparison():
    # The paper's YMP numbers come from the *serial* vectorised code:
    # one processor, no communication.
    ymp_cfg = store_case(machine=cray_ymp(), scale=SCALE, nsteps=NSTEPS)
    ymp_time = serial_time_per_step(ymp_cfg)
    rows = []
    for nodes in NODE_COUNTS:
        row = {"nodes": nodes}
        for name, machine_fn in (("SP2", sp2), ("SP", sp)):
            cfg = store_case(machine=machine_fn(nodes=nodes), scale=SCALE,
                             nsteps=NSTEPS)
            t = OverflowD1(cfg).run().time_per_step
            row[name] = ymp_time / t           # overall YMP units
            row[f"{name}/node"] = ymp_time / t / nodes
        rows.append(row)
    return ymp_time, rows


@pytest.mark.benchmark(group="table6")
def test_table6_ymp_units(benchmark, ymp_comparison):
    ymp_time, rows = ymp_comparison

    def report():
        lines = [
            f"1-cpu Cray YMP/864 time/step: {ymp_time:.4f} s",
            f"{'nodes':>6} {'SP2':>8} {'SP':>8} {'SP2/node':>9} {'SP/node':>8}",
        ]
        for r in rows:
            lines.append(
                f"{r['nodes']:>6d} {r['SP2']:>8.1f} {r['SP']:>8.1f} "
                f"{r['SP2/node']:>9.2f} {r['SP/node']:>8.2f}"
            )
        emit("table6_ymp_units", "\n".join(lines))
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)

    # One to two orders of magnitude overall (paper: 9.4 -> 75).
    assert rows[0]["SP2"] > 3.0
    assert rows[-1]["SP"] > rows[-1]["SP2"] > rows[0]["SP2"]
    assert rows[-1]["SP"] < 200.0
    # Per-node: SP node ~ a YMP processor, SP2 node ~ half of one
    # (paper: 0.52-0.71 and 1.03-1.23).
    for r in rows:
        assert 0.2 < r["SP2/node"] < 1.2
        assert 0.4 < r["SP/node"] < 2.2
        assert r["SP/node"] > r["SP2/node"]
    benchmark.extra_info["overall_sp2"] = [round(r["SP2"], 1) for r in rows]
    benchmark.extra_info["overall_sp"] = [round(r["SP"], 1) for r in rows]
