"""Table 3 / Figure 7: descending delta wing parallel performance.

Paper (SP2 / SP, 7-55 nodes, ~1M points, IGBP ratio 33e-3, static LB):

* the method scales well: speedup 1 -> 6.3 (SP2) / 7.1 (SP) over
  7 -> 55 nodes with only a small Mflops/node dropoff;
* %time in DCF3D grows with node count (9% -> 15% SP2) but stays a
  relatively low share;
* DCF3D's own speedup is again worse than OVERFLOW's (Fig. 7).

Benchmark default scale 0.15 (~150K points) keeps the suite fast; the
IGBP machinery, routing and imbalance all run for real.
"""

import pytest

from benchmarks._harness import bench_scale, emit, emit_csv, run_sweep, table_text
from repro.cases import deltawing_case
from repro.machine import sp, sp2

NODE_COUNTS = [7, 12, 26, 55]
SCALE = bench_scale(0.15)
NSTEPS = 4


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for name, machine_fn in (("SP2", sp2), ("SP", sp)):
        runs, total = run_sweep(
            deltawing_case, machine_fn, NODE_COUNTS, SCALE, NSTEPS
        )
        out[name] = table_text(runs, total)
    return out


@pytest.mark.benchmark(group="table3")
def test_table3_deltawing(benchmark, sweeps):
    def report():
        for name, (table, text) in sweeps.items():
            emit(f"table3_{name.lower()}", text)
            emit_csv(f"figure7_{name.lower()}", table)
        return sweeps

    result = benchmark.pedantic(report, rounds=1, iterations=1)
    for name, (table, _) in result.items():
        rows = table.rows
        speedups = [r["speedup"] for r in rows]
        # Monotone scaling to large node counts (paper: 1 -> ~6-7).
        assert speedups == sorted(speedups)
        assert speedups[-1] > 3.0
        # %DCF3D grows from the smallest to the largest partition.
        assert rows[-1]["%dcf3d"] > rows[0]["%dcf3d"]
        benchmark.extra_info[f"{name}_speedups"] = [
            round(s, 2) for s in speedups
        ]


@pytest.mark.benchmark(group="table3")
def test_figure7_module_speedups(benchmark, sweeps):
    def series():
        return {
            name: [
                (r["nodes"], r["speedup_overflow"], r["speedup_dcf3d"])
                for r in table.rows
            ]
            for name, (table, _) in sweeps.items()
        }

    result = benchmark.pedantic(series, rounds=1, iterations=1)
    for name, rows in result.items():
        _, flow_top, dcf_top = rows[-1]
        assert flow_top > dcf_top
