"""Shared machinery for the table/figure reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures on the
simulated machine, prints the rows, writes them under
``benchmarks/results/`` and asserts the paper's qualitative *shape*
(who wins, what grows, where the crossovers are).  Absolute numbers
differ from 1997 hardware; EXPERIMENTS.md records both sides.

Scales: runs use reduced grid systems (see each module) so the full
suite finishes in minutes; ``REPRO_BENCH_SCALE`` in the environment
overrides the default scale for heavier runs.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import OverflowD1, speedup_table
from repro.core.performance import PerformanceTable

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale(default: float) -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def run_sweep(case_fn, machine_fn, node_counts, scale, nsteps, **case_kw):
    """Run one case over several node counts on one machine; returns
    (runs, total_gridpoints).

    Every sweep runs under the SimMPI sanitizer (batched hooks, so the
    cost is one set lookup per send): a message race or tag collision
    in a benchmark config is a *wrong measurement*, not a soft warning,
    so findings abort the sweep.
    """
    from repro.analysis.sanitizer import Sanitizer

    runs = []
    total = None
    sanitizer = Sanitizer()
    for nodes in node_counts:
        cfg = case_fn(machine=machine_fn(nodes=nodes), scale=scale,
                      nsteps=nsteps, **case_kw)
        total = cfg.total_gridpoints
        runs.append(OverflowD1(cfg, sanitizer=sanitizer).run())
    report = sanitizer.report()
    if not report.ok:
        raise RuntimeError(
            "sanitizer findings during benchmark sweep:\n" + report.format()
        )
    return runs, total


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def table_text(runs, total_gridpoints) -> tuple[PerformanceTable, str]:
    table = speedup_table(runs, total_gridpoints)
    return table, table.format()


def emit_csv(name: str, table: PerformanceTable) -> None:
    """Persist the figure series (speedup curves) as CSV."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.csv").write_text(table.to_csv() + "\n")
