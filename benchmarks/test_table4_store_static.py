"""Table 4 / Figure 10: finned-store separation, static load balancing.

Paper (SP2 / SP, 16-61 nodes, 0.81M points over 16 grids, IGBP ratio
66e-3 — 1.5-2x the other cases):

* %time in DCF3D is noticeably higher than the other two cases (17-34%
  SP2) because of the larger IGBP share;
* Mflops/node *improves* from 16 to ~28 nodes — "the problem is
  achieving a better degree of static load balance by increasing the
  number of processors" (16 grids cannot balance on 16 nodes) — then
  flattens;
* overall speedup reaches ~7.6 (SP2) / 8.3 (SP) at 61 nodes, with
  DCF3D scaling worse than OVERFLOW (Fig. 10).
"""

import pytest

from benchmarks._harness import bench_scale, emit, emit_csv, run_sweep, table_text
from repro.cases import store_case
from repro.machine import sp, sp2

NODE_COUNTS = [16, 18, 22, 28, 35, 42, 52, 61]
SCALE = bench_scale(0.15)
NSTEPS = 4


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for name, machine_fn in (("SP2", sp2), ("SP", sp)):
        runs, total = run_sweep(
            store_case, machine_fn, NODE_COUNTS, SCALE, NSTEPS
        )
        out[name] = table_text(runs, total)
    return out


@pytest.mark.benchmark(group="table4")
def test_table4_store_static(benchmark, sweeps):
    def report():
        for name, (table, text) in sweeps.items():
            emit(f"table4_{name.lower()}", text)
            emit_csv(f"figure10_{name.lower()}", table)
        return sweeps

    result = benchmark.pedantic(report, rounds=1, iterations=1)
    for name, (table, _) in result.items():
        rows = table.rows
        speedups = [r["speedup"] for r in rows]
        # Strong scaling 16 -> 61 nodes (paper: ~7.6x from the 16-node
        # base; ideal 3.8x in node ratio — superlinear because 16
        # nodes cannot balance 16 unequal grids).
        assert speedups[-1] > 2.5
        assert speedups == sorted(speedups)
        # Mflops/node improves from 16 nodes to the mid-20s range.
        mf = [r["mflops/node"] for r in rows]
        assert max(mf[1:4]) > mf[0]
        benchmark.extra_info[f"{name}_mflops"] = [round(v, 1) for v in mf]
        benchmark.extra_info[f"{name}_pct_dcf3d"] = [
            round(r["%dcf3d"], 1) for r in rows
        ]


@pytest.mark.benchmark(group="table4")
def test_figure10_module_speedups(benchmark, sweeps):
    def series():
        return {
            name: [
                (r["nodes"], r["speedup_overflow"], r["speedup_dcf3d"])
                for r in table.rows
            ]
            for name, (table, _) in sweeps.items()
        }

    result = benchmark.pedantic(series, rounds=1, iterations=1)
    for name, rows in result.items():
        _, flow_top, dcf_top = rows[-1]
        assert flow_top > dcf_top


@pytest.mark.benchmark(group="table4")
def test_store_dcf_share_exceeds_other_cases(benchmark, sweeps):
    """The paper's motivation for Table 5: this case's connectivity
    share is the largest of the three problems."""

    def shares():
        return [r["%dcf3d"] for r in sweeps["SP2"][0].rows]

    pct = benchmark.pedantic(shares, rounds=1, iterations=1)
    # Table 1/3 measured ~10-16% at their base partitions; the store
    # case starts higher and grows past 20%.
    assert max(pct) > 20.0
