"""Ablation: the load-balance factor f0 (paper section 3.0).

"The user-specified value of f0 acts as a weight to control the desired
degree of load balance in either the flow solution or connectivity
solution": f0 ~ inf keeps the static (flow-optimal) partition, f0 ~ 1
keeps re-optimising for connectivity at the flow solver's expense, and
"in practice, the 'best' value of f0 is problem dependent".  The paper
picked f0 = 5 for the store case after observing f(p) ~ 7.

This sweep maps the tradeoff: flow time, DCF3D time and combined time
per step across f0 on the store-separation case.
"""

import math

import pytest

from benchmarks._harness import bench_scale, emit
from repro.cases import store_case
from repro.core import OverflowD1
from repro.core.overflow_d1 import PHASE_DCF, PHASE_FLOW
from repro.machine import sp2

SCALE = bench_scale(0.15)
NSTEPS = 8
NODES = 28
F0_VALUES = [math.inf, 7.0, 5.0, 3.0, 1.5]


@pytest.mark.benchmark(group="ablation-f0")
def test_f0_tradeoff_sweep(benchmark):
    def sweep():
        rows = []
        for f0 in F0_VALUES:
            cfg = store_case(machine=sp2(nodes=NODES), scale=SCALE,
                             nsteps=NSTEPS, f0=f0)
            cfg.lb_check_interval = 2
            r = OverflowD1(cfg).run()
            rows.append(
                {
                    "f0": f0,
                    "flow": r.phase_elapsed(PHASE_FLOW) / NSTEPS,
                    "dcf": r.phase_elapsed(PHASE_DCF) / NSTEPS,
                    "combined": r.time_per_step,
                    "partitions": len(r.partition_history),
                }
            )
        lines = [f"{'f0':>6} {'flow s':>8} {'dcf s':>8} {'combined':>9} "
                 f"{'repartitions':>13}"]
        for row in rows:
            f0s = "inf" if math.isinf(row["f0"]) else f"{row['f0']:.1f}"
            lines.append(
                f"{f0s:>6} {row['flow']:>8.4f} {row['dcf']:>8.4f} "
                f"{row['combined']:>9.4f} {row['partitions'] - 1:>13d}"
            )
        emit("ablation_f0_sweep", "\n".join(lines))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    static = rows[0]
    aggressive = rows[-1]

    # Aggressive rebalancing must actually move processors around.
    assert aggressive["partitions"] > 1
    # The paper's tradeoff: somewhere in the sweep the dynamic scheme
    # improves DCF3D relative to static...
    assert min(r["dcf"] for r in rows[1:]) < static["dcf"] * 1.02
    # ...while the flow solver never improves (it only gives ground).
    assert all(r["flow"] >= static["flow"] * 0.98 for r in rows[1:])
