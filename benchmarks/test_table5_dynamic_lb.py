"""Table 5 / Figure 11: dynamic load balance on the store case (SP2).

Paper (f0 = 5, chosen because the worst observed connectivity imbalance
was f(p) ~ 7):

* the dynamic scheme improves DCF3D: its %time grows only 1.35x from
  16 to 52 nodes instead of 2.0x static, and its speedup improves
  (4.10 vs 3.28 at 52 nodes);
* the improvement costs OVERFLOW performance, and since the flow solve
  is >= two-thirds of the total the *combined* performance is better
  with the static scheme (by 15-25%);
* at 16 nodes (16 grids, one processor each) the two schemes coincide.
"""

import math

import pytest

from benchmarks._harness import RESULTS_DIR, bench_scale, emit
from repro.cases import store_case
from repro.core import OverflowD1
from repro.core.overflow_d1 import PHASE_DCF, PHASE_FLOW
from repro.machine import sp2

NODE_COUNTS = [16, 18, 28, 52]
SCALE = bench_scale(0.15)
NSTEPS = 8


def run_one(nodes: int, f0: float):
    cfg = store_case(machine=sp2(nodes=nodes), scale=SCALE,
                     nsteps=NSTEPS, f0=f0)
    cfg.lb_check_interval = 2
    return OverflowD1(cfg).run()


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for nodes in NODE_COUNTS:
        static = run_one(nodes, math.inf)
        dynamic = run_one(nodes, 5.0)
        rows.append(
            {
                "nodes": nodes,
                "static": static,
                "dynamic": dynamic,
            }
        )
    return rows


@pytest.mark.benchmark(group="table5")
def test_table5_dynamic_vs_static(benchmark, comparison):
    def report():
        lines = [
            f"{'nodes':>6} {'%dcf stat':>10} {'%dcf dyn':>9} "
            f"{'dcf t/s stat':>13} {'dcf t/s dyn':>12} "
            f"{'t/step stat':>12} {'t/step dyn':>11}"
        ]
        for row in comparison:
            s, d = row["static"], row["dynamic"]
            lines.append(
                f"{row['nodes']:>6d} {s.pct_dcf3d:>10.1f} {d.pct_dcf3d:>9.1f} "
                f"{s.phase_elapsed(PHASE_DCF)/NSTEPS:>13.4f} "
                f"{d.phase_elapsed(PHASE_DCF)/NSTEPS:>12.4f} "
                f"{s.time_per_step:>12.4f} {d.time_per_step:>11.4f}"
            )
        emit("table5_dynamic_lb", "\n".join(lines))
        # Figure-11 series: per-module time curves for both schemes.
        csv = ["nodes,flow_static,flow_dynamic,dcf_static,dcf_dynamic,"
               "combined_static,combined_dynamic"]
        for row in comparison:
            s, d = row["static"], row["dynamic"]
            csv.append(
                f"{row['nodes']},"
                f"{s.phase_elapsed(PHASE_FLOW)/NSTEPS:.6g},"
                f"{d.phase_elapsed(PHASE_FLOW)/NSTEPS:.6g},"
                f"{s.phase_elapsed(PHASE_DCF)/NSTEPS:.6g},"
                f"{d.phase_elapsed(PHASE_DCF)/NSTEPS:.6g},"
                f"{s.time_per_step:.6g},{d.time_per_step:.6g}"
            )
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "figure11_store.csv").write_text("\n".join(csv) + "\n")
        return comparison

    rows = benchmark.pedantic(report, rounds=1, iterations=1)

    # 16 nodes / 16 grids: no processor to move, schemes coincide (up
    # to the epoch-boundary resynchronisation of the dynamic run).
    base = rows[0]
    assert base["static"].time_per_step == pytest.approx(
        base["dynamic"].time_per_step, rel=1e-3
    )

    # The dynamic scheme actually repartitions at larger counts.
    repartitioned = [
        row for row in rows[1:]
        if len(row["dynamic"].partition_history) > 1
    ]
    assert repartitioned, "Algorithm 2 never fired"

    # Paper shape: at some mid-size partition the dynamic scheme
    # reduces the DCF3D time per step relative to static.
    improvements = [
        row["static"].phase_elapsed(PHASE_DCF)
        - row["dynamic"].phase_elapsed(PHASE_DCF)
        for row in rows[1:]
    ]
    assert max(improvements) > 0, "dynamic LB never helped DCF3D"

    benchmark.extra_info["pct_dcf3d_static"] = [
        round(r["static"].pct_dcf3d, 1) for r in rows
    ]
    benchmark.extra_info["pct_dcf3d_dynamic"] = [
        round(r["dynamic"].pct_dcf3d, 1) for r in rows
    ]


@pytest.mark.benchmark(group="table5")
def test_figure11_flow_penalty(benchmark, comparison):
    """Fig. 11's other half: rebalancing for connectivity costs the
    flow solver (its elapsed time does not improve)."""

    def flow_times():
        return [
            (
                row["nodes"],
                row["static"].phase_elapsed(PHASE_FLOW) / NSTEPS,
                row["dynamic"].phase_elapsed(PHASE_FLOW) / NSTEPS,
            )
            for row in comparison
        ]

    rows = benchmark.pedantic(flow_times, rounds=1, iterations=1)
    # Wherever the partitions diverge, the dynamic flow time is never
    # meaningfully better than static (paper: it is strictly worse).
    for nodes, t_static, t_dynamic in rows[1:]:
        assert t_dynamic >= 0.95 * t_static
