"""Section-5 scaling claim: the coarse-grain adaptive scheme scales.

"Since the vast majority of the interpolation donors will exist in
Cartesian grid components in this type of discretization, the approach
should scale well."  The bench runs the X-38-like adaptive system on
increasing simulated node counts and checks (a) near-ideal flow-phase
scaling, (b) a small connectivity share at every count — contrast this
with the OVERFLOW-D1 store case where %DCF3D reaches 30-40%.
"""

import pytest

from benchmarks._harness import emit
from repro.adapt import AdaptiveDriver
from repro.cases import x38_adaptive_system, x38_near_body_grids
from repro.grids import AABB
from repro.machine import sp2

NODE_COUNTS = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def body_fn():
    near = x38_near_body_grids(scale=0.05)
    boxes0 = [g.bounding_box() for g in near]

    def bodies(step):
        dx = 0.05 * step
        return [
            AABB(b.lo + [dx, 0, 0], b.hi + [dx, 0, 0]) for b in boxes0
        ]

    return bodies


@pytest.mark.benchmark(group="adaptive-scaling")
def test_adaptive_scheme_scales(benchmark, body_fn):
    def sweep():
        rows = []
        for nodes in NODE_COUNTS:
            system = x38_adaptive_system(max_level=2, points_per_brick=7)
            system.adapt(body_fn(0), margin=0.1)
            drv = AdaptiveDriver(system, sp2(nodes=nodes))
            r = drv.run(nsteps=8, body_boxes_fn=body_fn, adapt_interval=4)
            rows.append(
                {
                    "nodes": nodes,
                    "t/step": r.time_per_step,
                    "connect%": 100 * r.phase_fraction("connect"),
                    "adapt%": 100 * r.phase_fraction("adapt"),
                    "bricks": r.final_bricks,
                    "imbalance": r.group_imbalance,
                }
            )
        lines = [f"{'nodes':>6} {'t/step':>9} {'connect%':>9} "
                 f"{'adapt%':>7} {'bricks':>7} {'imbalance':>10}"]
        for r in rows:
            lines.append(
                f"{r['nodes']:>6d} {r['t/step']:>9.4f} {r['connect%']:>9.1f} "
                f"{r['adapt%']:>7.2f} {r['bricks']:>7d} "
                f"{r['imbalance']:>10.3f}"
            )
        emit("adaptive_scaling", "\n".join(lines))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedup = rows[0]["t/step"] / rows[-1]["t/step"]
    ideal = NODE_COUNTS[-1] / NODE_COUNTS[0]
    # Near-ideal scaling over 2 -> 16 nodes (>= 60% efficiency).
    assert speedup > 0.6 * ideal
    # Connectivity stays a small share at every node count — the
    # scheme's whole point versus the OVERFLOW-D1 cases.
    assert all(r["connect%"] < 20.0 for r in rows)
