"""Table 2: the oscillating-airfoil scale-up study.

Paper: the original grids are coarsened (remove every other point, /4)
and refined (insert midpoints, x4), run on 3 / 12 / 48 nodes so the
points-per-node stays ~5100.  Findings:

* time/step grows modestly with problem size (weak-scaling loss);
* the %time in DCF3D roughly doubles from the coarsened 3-node case to
  the refined 48-node case (10% -> 23% on the SP2) — "the connectivity
  solution may become a more dominant parallel cost for larger
  problems".
"""

import pytest

from benchmarks._harness import bench_scale, emit
from repro.cases import airfoil_case
from repro.cases.airfoil import airfoil_fringe_layers, airfoil_grids
from repro.core import OverflowD1
from repro.machine import sp2

SCALE = bench_scale(1.0)
NSTEPS = 4


def build_cases():
    base = airfoil_grids(SCALE)
    return [
        ("coarsened", [g.coarsened() for g in base], 3,
         max(1, airfoil_fringe_layers(SCALE) // 2)),
        ("original", base, 12, airfoil_fringe_layers(SCALE)),
        ("refined", [g.refined() for g in base], 48,
         2 * airfoil_fringe_layers(SCALE)),
    ]


@pytest.fixture(scope="module")
def scaleup_rows():
    rows = []
    for name, grids, nodes, fringe in build_cases():
        cfg = airfoil_case(
            machine=sp2(nodes=nodes), scale=SCALE, nsteps=NSTEPS,
            grids=grids, fringe_layers=fringe,
        )
        r = OverflowD1(cfg).run()
        rows.append(
            {
                "case": name,
                "nodes": nodes,
                "gridpoints": cfg.total_gridpoints,
                "points/node": cfg.total_gridpoints / nodes,
                "time/step": r.time_per_step,
                "%dcf3d": r.pct_dcf3d,
            }
        )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_scaleup(benchmark, scaleup_rows):
    def report():
        lines = [
            f"{'case':>10} {'nodes':>6} {'points':>8} {'pts/node':>9} "
            f"{'time/step':>10} {'%dcf3d':>7}"
        ]
        for r in scaleup_rows:
            lines.append(
                f"{r['case']:>10} {r['nodes']:>6d} {r['gridpoints']:>8d} "
                f"{r['points/node']:>9.0f} {r['time/step']:>10.4f} "
                f"{r['%dcf3d']:>7.1f}"
            )
        emit("table2_scaleup", "\n".join(lines))
        return scaleup_rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    coarse, original, refined = rows

    # Scale-up construction: ~4x points between cases.
    assert refined["gridpoints"] > 3.0 * original["gridpoints"]
    assert original["gridpoints"] > 3.0 * coarse["gridpoints"]
    # Points per node roughly constant (the paper holds ~5100).
    ppn = [r["points/node"] for r in rows]
    assert max(ppn) / min(ppn) < 1.6

    # Paper shape 1: time/step increases with problem size.
    assert refined["time/step"] > coarse["time/step"]
    # Paper shape 2: DCF3D's share grows from the coarsened to the
    # refined case (the paper measures ~2.2x).
    assert refined["%dcf3d"] > 1.2 * coarse["%dcf3d"]
    benchmark.extra_info["pct_dcf3d"] = [round(r["%dcf3d"], 1) for r in rows]
    benchmark.extra_info["time_per_step"] = [
        round(r["time/step"], 4) for r in rows
    ]
