"""Ablation: prime-factor (near-cubic) decomposition vs 1-D strips.

The paper's static routine "forms subdomains which have index spaces
that are as close to cubic as possible, thereby minimizing the surface
area in order to minimize communication" (section 3.0, Fig. 4).  This
bench quantifies that choice: total halo points and the simulated
flow-phase time of an airfoil run under each decomposition.
"""

import pytest

from benchmarks._harness import bench_scale, emit
from repro.cases import airfoil_case
from repro.core import OverflowD1
from repro.core.overflow_d1 import PHASE_FLOW
from repro.machine import sp2
from repro.partition import (
    prime_factor_decompose,
    strip_decompose,
    total_halo_points,
)

SCALE = bench_scale(1.0)


@pytest.mark.benchmark(group="ablation-decomposition")
def test_halo_volume_comparison(benchmark):
    def compare():
        rows = []
        for dims in ((146, 146), (241, 89), (64, 64, 64)):
            for nparts in (8, 16):
                pf = total_halo_points(
                    prime_factor_decompose(dims, nparts), dims
                )
                strip = total_halo_points(
                    strip_decompose(dims, nparts), dims
                )
                rows.append((dims, nparts, pf, strip, strip / pf))
        lines = [f"{'dims':>16} {'parts':>6} {'prime-factor':>13} "
                 f"{'strips':>8} {'ratio':>6}"]
        for dims, nparts, pf, strip, ratio in rows:
            lines.append(
                f"{str(dims):>16} {nparts:>6d} {pf:>13d} {strip:>8d} "
                f"{ratio:>6.2f}"
            )
        emit("ablation_decomposition", "\n".join(lines))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    for dims, nparts, pf, strip, ratio in rows:
        assert pf <= strip
    # For square 2-D grids at 16 parts the advantage is large.
    square16 = [r for r in rows if r[0] == (146, 146) and r[1] == 16][0]
    assert square16[4] > 1.5


@pytest.mark.benchmark(group="ablation-decomposition")
def test_flow_phase_time_with_strips(benchmark):
    """End-to-end: the halo traffic difference shows up in the
    simulated flow-phase time."""
    import repro.partition.assignment as assignment
    from repro.partition.decompose import (
        prime_factor_decompose as pf_decompose,
    )

    def run_with(decomposer):
        original = assignment.prime_factor_decompose
        assignment.prime_factor_decompose = decomposer
        try:
            cfg = airfoil_case(machine=sp2(nodes=16), scale=SCALE, nsteps=3)
            return OverflowD1(cfg).run()
        finally:
            assignment.prime_factor_decompose = original

    def compare():
        near_cubic = run_with(pf_decompose)
        strips = run_with(strip_decompose)
        return near_cubic, strips

    near_cubic, strips = benchmark.pedantic(compare, rounds=1, iterations=1)
    t_pf = near_cubic.phase_elapsed(PHASE_FLOW)
    t_strip = strips.phase_elapsed(PHASE_FLOW)
    emit(
        "ablation_decomposition_flow",
        f"flow-phase elapsed (3 steps): near-cubic {t_pf:.4f} s, "
        f"strips {t_strip:.4f} s",
    )
    assert t_pf <= t_strip * 1.02  # strips never beat near-cubic
