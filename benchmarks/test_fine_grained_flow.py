"""Fine-grained within-grid parallelism (paper section 2.1, Fig. 2).

Real 2-D numerics distributed over simulated ranks: two-deep halo
exchange per step plus pipelined distributed Thomas sweeps keeping the
implicit operator exact across subdomains.  The bench verifies the
paper's partition-independence claim end-to-end (identical flow state
for every rank lattice) and reports the virtual-time scaling of the
within-grid level on the SP2 model.
"""

import numpy as np
import pytest

from benchmarks._harness import emit
from repro.grids.generators import cartesian_background
from repro.grids.structured import BoundaryFace, CurvilinearGrid
from repro.machine import sp2
from repro.solver import FlowConfig, ParallelSolver2D, Solver2D

NODE_COUNTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def channel():
    bg = cartesian_background("ch", (0, 0), (8, 3), (97, 41))
    xyz = bg.xyz.copy()
    x, y = xyz[..., 0], xyz[..., 1]
    xyz[..., 1] = y + 0.15 * np.exp(-((x - 4.0) ** 2)) * (1 - y / 3.0)
    return CurvilinearGrid(
        "ch",
        xyz,
        (
            BoundaryFace("jmin", "wall"),
            BoundaryFace("jmax", "farfield"),
            BoundaryFace("imin", "farfield"),
            BoundaryFace("imax", "farfield"),
        ),
    )


@pytest.mark.benchmark(group="fine-grained")
def test_fine_grained_scaling_and_exactness(benchmark, channel):
    cfg = FlowConfig(mach=0.5, cfl=2.0)
    serial = Solver2D(channel, cfg)
    dt = 0.8 * serial.timestep()
    nsteps = 3
    for _ in range(nsteps):
        serial.step(dt)

    def sweep():
        rows = []
        for nodes in NODE_COUNTS:
            par = ParallelSolver2D(channel, cfg, sp2(nodes=nodes))
            q, sim = par.run(nsteps, dt)
            rows.append(
                {
                    "nodes": nodes,
                    "lattice": f"{par.px}x{par.py}",
                    "t/step": sim.elapsed / nsteps,
                    "exact": bool(np.array_equal(q, serial.q)),
                }
            )
        lines = [f"{'nodes':>6} {'lattice':>8} {'t/step':>9} {'exact':>6}"]
        for r in rows:
            lines.append(
                f"{r['nodes']:>6d} {r['lattice']:>8} {r['t/step']:>9.4f} "
                f"{str(r['exact']):>6}"
            )
        emit("fine_grained_flow", "\n".join(lines))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Paper claim: solution independent of the processor count.
    assert all(r["exact"] for r in rows)
    # The within-grid level scales (pipelined sweeps serialise part of
    # the work, so well short of ideal — as on the real machine).
    assert rows[-1]["t/step"] < rows[0]["t/step"]
