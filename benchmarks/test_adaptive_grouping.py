"""Section-5 machinery: Algorithm-3 grouping and Cartesian connectivity.

Quantifies the forward-looking scheme's claims:

* Algorithm 3 packs hundreds of off-body bricks onto nodes with even
  work while keeping most connectivity intra-group (vs a round-robin
  baseline that ignores locality);
* donor lookup between Cartesian bricks is closed-form — the count of
  stencil-walk searches avoided equals the resolved fringe points;
* the entire off-body system is described by 2*ndim+1 scalars per
  brick (the "seven parameters" argument).
"""

import numpy as np
import pytest

from benchmarks._harness import emit
from repro.adapt import cartesian_connectivity
from repro.cases import x38_adaptive_system, x38_near_body_grids
from repro.partition import group_grids


@pytest.fixture(scope="module")
def adapted_system():
    near = x38_near_body_grids(scale=0.05)
    system = x38_adaptive_system(max_level=2, points_per_brick=7)
    boxes = [g.bounding_box() for g in near]
    for _ in range(2):
        system.adapt(boxes, margin=0.1)
    return system


@pytest.mark.benchmark(group="adaptive")
def test_grouping_vs_round_robin(benchmark, adapted_system):
    system = adapted_system
    sizes = system.brick_points()
    edges = system.connectivity_edges()
    ngroups = 8

    def compare():
        algo3 = system.group(ngroups)
        # Baseline: round-robin assignment, no locality.
        rr_groups = [i % ngroups for i in range(len(sizes))]
        rr_intra = sum(
            1 for a, b in edges if rr_groups[a] == rr_groups[b]
        )
        return algo3, rr_intra

    algo3, rr_intra = benchmark.pedantic(compare, rounds=1, iterations=1)
    intra = algo3.intra_group_edges(edges)
    emit(
        "adaptive_grouping",
        f"bricks {len(sizes)}, edges {len(edges)}, groups {ngroups}\n"
        f"Algorithm 3: imbalance {algo3.imbalance():.3f}, "
        f"intra-group edges {intra}\n"
        f"round-robin: intra-group edges {rr_intra}",
    )
    assert algo3.imbalance() < 1.5
    # Locality: far more edges stay intra-group than the 1/ngroups
    # share a locality-blind assignment expects.
    expected_random = len(edges) / ngroups
    assert intra > 1.5 * expected_random


@pytest.mark.benchmark(group="adaptive")
def test_cartesian_connectivity_avoids_searches(benchmark, adapted_system):
    system = adapted_system

    def connect():
        return cartesian_connectivity(system.system, system.bricks)

    out = benchmark.pedantic(connect, rounds=1, iterations=1)
    emit(
        "adaptive_connectivity",
        f"fringe points {out['fringe_points']}, donors resolved "
        f"{out['donors_resolved']}, searches avoided "
        f"{out['searches_avoided']}\n"
        f"stored parameters {system.parameters_stored()} vs "
        f"{system.total_points()} off-body points",
    )
    assert out["searches_avoided"] == out["donors_resolved"] > 0
    # "the vast majority of the interpolation donors will exist in
    # Cartesian grid components": most fringe points resolve in O(1).
    assert out["donors_resolved"] > 0.5 * out["fringe_points"]
    # Seven-parameter storage: descriptor size is negligible next to
    # the field data (the paper contrasts 7 scalars per grid with 16
    # stored terms *per point* for curvilinear grids).
    assert system.parameters_stored() < 0.05 * system.total_points()
