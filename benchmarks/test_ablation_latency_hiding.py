"""Ablation: latency hiding in the flow solve (paper section 5).

"By structuring the computations to begin on the grids which lie at the
interior of the group, the data communicated at the group borders can
be performed asynchronously, effectively overlapping communication with
computation."  The option models exactly that: halos are injected,
the interior is swept while they fly, and the boundary strip finishes
after the receive.  The benefit grows with network latency, so the
bench compares a normal SP2 against a deliberately slow network.
"""

import pytest
from dataclasses import replace

from benchmarks._harness import bench_scale, emit
from repro.cases import airfoil_case
from repro.core import OverflowD1
from repro.core.overflow_d1 import PHASE_FLOW
from repro.machine import sp2
from repro.machine.spec import NetworkSpec

SCALE = bench_scale(1.0)
NSTEPS = 4


def slow_network_sp2(nodes):
    base = sp2(nodes=nodes)
    return replace(
        base,
        name="IBM SP2 (slow net)",
        network=NetworkSpec(latency=5.0e-3, bandwidth=4.0e6),
    )


def flow_time(machine_fn, nodes, overlap):
    cfg = airfoil_case(machine=machine_fn(nodes), scale=SCALE,
                       nsteps=NSTEPS)
    cfg.overlap_halo = overlap
    r = OverflowD1(cfg).run()
    return r.phase_elapsed(PHASE_FLOW) / NSTEPS


@pytest.mark.benchmark(group="ablation-latency")
def test_overlap_helps_on_slow_networks(benchmark):
    def compare():
        rows = []
        for name, fn in (("SP2", lambda n: sp2(nodes=n)),
                         ("slow-net", slow_network_sp2)):
            off = flow_time(fn, 24, overlap=False)
            on = flow_time(fn, 24, overlap=True)
            rows.append((name, off, on, off / on))
        lines = [f"{'network':>9} {'no overlap':>11} {'overlap':>9} "
                 f"{'gain':>6}"]
        for name, off, on, gain in rows:
            lines.append(f"{name:>9} {off:>11.5f} {on:>9.5f} {gain:>6.3f}")
        emit("ablation_latency_hiding", "\n".join(lines))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    for name, off, on, gain in rows:
        assert on <= off * 1.01  # overlap never hurts
    # On the slow network the overlap visibly pays.
    slow = [r for r in rows if r[0] == "slow-net"][0]
    assert slow[3] > 1.02
