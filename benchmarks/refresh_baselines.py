#!/usr/bin/env python
"""Regenerate (or check) the checked-in BENCH baselines.

The CI perf gate trace-diffs fresh ``repro bench`` payloads against
``benchmarks/baselines/BENCH_<case>.json``; this script is the one
sanctioned way to move those baselines.  It reruns every bench case
with the exact knobs the gate uses (``--quick``, one repeat, no
microbench) and writes canonical JSON plus a ``provenance`` block:

* ``git_sha`` — the commit the numbers were generated at,
* ``generated`` — UTC timestamp,
* ``knobs`` — the resolved case configuration (nodes/scale/nsteps/...),
* ``generator`` — this script's repo-relative path.

``trace-diff`` compares only the deterministic ``simulated`` section
(and ``config_sha``), so the provenance block never participates in
the gate — it exists so a human reading a baseline knows where its
numbers came from.

``--check`` regenerates each payload in memory and trace-diffs it
against the checked-in file *without writing anything*; nonzero exit
on any regression, missing baseline, or missing provenance block.
The nightly CI run calls this mode: because the simulated sections are
bit-deterministic, any drift it reports is a real behavioural change
that landed without refreshing the baselines.

Usage::

    PYTHONPATH=src python benchmarks/refresh_baselines.py           # rewrite
    PYTHONPATH=src python benchmarks/refresh_baselines.py --check   # verify
    PYTHONPATH=src python benchmarks/refresh_baselines.py airfoil x38
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path
from typing import Any

REPO = Path(__file__).resolve().parents[1]
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

# Allow `python benchmarks/refresh_baselines.py` without PYTHONPATH.
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.obs.perf.bench import (  # noqa: E402
    BENCH_CASES,
    bench_payload,
    canonical_json,
)
from repro.obs.perf.diff import diff_bench  # noqa: E402

#: Generation knobs.  ``quick`` matches the CI perf job; ``repeats``
#: and ``microbench`` only shape the wall-clock ``host`` section the
#: gate ignores, so one repeat keeps refreshes fast.
GEN_KNOBS = {"quick": True, "repeats": 1, "microbench": False}


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=REPO,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _provenance(payload: dict[str, Any]) -> dict[str, Any]:
    return {
        "generator": "benchmarks/refresh_baselines.py",
        "git_sha": _git_sha(),
        "generated": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "knobs": dict(payload["config"]),
    }


def refresh(cases: list[str], check: bool, tolerance: float) -> int:
    """Rewrite (or verify) one baseline per case; returns #failures."""
    failures = 0
    for case in cases:
        payload = bench_payload(case, **GEN_KNOBS)
        payload["provenance"] = _provenance(payload)
        path = BASELINE_DIR / f"BENCH_{case}.json"
        if not check:
            BASELINE_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(canonical_json(payload))
            sha = payload["provenance"]["git_sha"]
            print(f"wrote {path.relative_to(REPO)} (git {sha[:12]})")
            continue
        # --check: diff in memory, never write.
        if not path.exists():
            print(f"MISSING baseline {path.relative_to(REPO)}")
            failures += 1
            continue
        old = json.loads(path.read_text())
        if "provenance" not in old:
            print(
                f"{path.name}: no provenance block "
                f"(regenerate with this script)"
            )
            failures += 1
        report = diff_bench(old, payload, tolerance=tolerance)
        print(f"{path.name}: {report.format()}")
        if not report.ok:
            failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate or verify benchmarks/baselines/BENCH_*.json"
    )
    parser.add_argument(
        "cases",
        nargs="*",
        default=[],
        help=f"cases to refresh (default: all of {sorted(BENCH_CASES)})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the checked-in baselines instead of rewriting them",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="relative trace-diff tolerance for --check (default 0.02)",
    )
    args = parser.parse_args(argv)

    cases = args.cases or sorted(BENCH_CASES)
    unknown = [c for c in cases if c not in BENCH_CASES]
    if unknown:
        parser.error(
            f"unknown case(s) {unknown}; choose from {sorted(BENCH_CASES)}"
        )
    failures = refresh(cases, check=args.check, tolerance=args.tolerance)
    if args.check:
        verdict = "OK" if not failures else f"{failures} FAILURE(S)"
        print(f"baseline check: {verdict}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
