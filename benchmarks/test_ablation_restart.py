"""Ablation: nth-level restart on vs off (paper section 2.2).

Barszcz's warm start "was found to yield a considerable reduction in
the time spent in the connectivity solution" because the
stability-limited timestep moves donors by less than one receiving-grid
cell per step.  This bench runs the oscillating-airfoil case with and
without the restart cache and compares walk-step counts and the
simulated DCF3D time.
"""

import pytest

from benchmarks._harness import bench_scale, emit
from repro.cases import airfoil_case
from repro.core import OverflowD1
from repro.core.overflow_d1 import PHASE_DCF
from repro.machine import sp2

SCALE = bench_scale(0.5)
NSTEPS = 5


@pytest.mark.benchmark(group="ablation-restart")
def test_restart_reduces_connectivity_cost(benchmark):
    def compare():
        out = {}
        for label, use_restart in (("restart", True), ("cold", False)):
            cfg = airfoil_case(machine=sp2(nodes=12), scale=SCALE,
                               nsteps=NSTEPS)
            cfg.use_restart = use_restart
            out[label] = OverflowD1(cfg).run()
        return out

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    warm, cold = result["restart"], result["cold"]
    warm_steps = sum(e.search_steps_total for e in warm.epochs)
    cold_steps = sum(e.search_steps_total for e in cold.epochs)
    warm_dcf = warm.phase_elapsed(PHASE_DCF) / NSTEPS
    cold_dcf = cold.phase_elapsed(PHASE_DCF) / NSTEPS

    emit(
        "ablation_restart",
        "\n".join(
            [
                f"{'':>10} {'walk steps':>11} {'dcf3d s/step':>13} "
                f"{'%dcf3d':>7}",
                f"{'restart':>10} {warm_steps:>11d} {warm_dcf:>13.4f} "
                f"{warm.pct_dcf3d:>7.1f}",
                f"{'cold':>10} {cold_steps:>11d} {cold_dcf:>13.4f} "
                f"{cold.pct_dcf3d:>7.1f}",
            ]
        ),
    )

    # The paper's "considerable reduction".
    assert warm_steps < 0.5 * cold_steps
    assert warm_dcf < cold_dcf
    benchmark.extra_info["step_reduction"] = round(cold_steps / warm_steps, 1)
