"""ClusterBackend behaviour: pool reuse, routing, errors, registry.

Spawns real node daemons on loopback, so the module rides behind the
``mp`` + ``cluster`` markers and skips on hosts without fork.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import BackendResult, backend_help, get_backend
from repro.cluster import ClusterBackend, cluster_available
from repro.machine import sp2

pytestmark = [
    pytest.mark.mp,
    pytest.mark.cluster,
    pytest.mark.skipif(
        cluster_available() is not None, reason=str(cluster_available())
    ),
]

TAG = 9
NRANKS = 4


@pytest.fixture(scope="module")
def engine():
    eng = get_backend("cluster", nnodes=2)
    yield eng
    eng.close()


def prog_ring(comm):
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    payload = np.arange(8, dtype=float) + comm.rank
    yield from comm.send(dst, TAG, payload, nbytes=payload.nbytes)
    msg, status = yield from comm.recv(src, TAG)
    return (status.source, float(msg.sum()))


def prog_big_cross_node(comm):
    # Two ranks per node: rank 0 <-> rank 3 is guaranteed inter-node,
    # and 300k float64 is far over both the shm threshold and the
    # daemon's pipe-restaging cutoff.
    if comm.rank == 0:
        big = np.arange(300_000, dtype=float)
        yield from comm.send(3, TAG, big, nbytes=big.nbytes)
        return None
    if comm.rank == 3:
        msg, _ = yield from comm.recv(0, TAG)
        return (len(msg), float(msg[1]), float(msg.sum()))
    return None


def prog_worker_error(comm):
    yield from comm.elapse(1e-4)
    if comm.rank == 2:
        raise ValueError("deliberate rank boom")
    return comm.rank


def test_registry_lists_cluster():
    assert "cluster" in backend_help()
    eng = get_backend("cluster", nnodes=2, spawn=False)
    assert isinstance(eng, ClusterBackend)
    eng.close()  # never started; must be a harmless no-op


def test_capability_flags(engine):
    assert engine.name == "cluster"
    assert engine.measured and engine.elastic
    assert not engine.shared_state


def test_ring_and_warm_pool_reuse(engine):
    expected = [
        ((r - 1) % NRANKS, float(np.arange(8).sum() + 8 * ((r - 1) % NRANKS)))
        for r in range(NRANKS)
    ]
    first = engine.run_spmd(sp2(nodes=NRANKS), prog_ring)
    sup = engine.supervisor
    second = engine.run_spmd(sp2(nodes=NRANKS), prog_ring)
    assert isinstance(first, BackendResult)
    assert first.returns == expected
    assert second.returns == expected
    # Same supervisor object: the node pool survived between chunks.
    assert engine.supervisor is sup
    assert first.backend == "cluster" and first.measured
    assert first.failed_ranks == ()
    assert first.elapsed > 0.0


def test_large_payload_crosses_nodes(engine):
    out = engine.run_spmd(sp2(nodes=NRANKS), prog_big_cross_node)
    n = 300_000
    assert out.returns[3] == (n, 1.0, float(n * (n - 1) / 2))


def test_worker_error_propagates_and_pool_survives(engine):
    with pytest.raises(ValueError, match="deliberate rank boom") as info:
        engine.run_spmd(sp2(nodes=NRANKS), prog_worker_error)
    notes = "".join(getattr(info.value, "__notes__", []))
    assert "rank 2" in notes
    # The abort must not poison the pool for the next chunk.
    ok = engine.run_spmd(sp2(nodes=NRANKS), prog_ring)
    assert len(ok.returns) == NRANKS


def test_rejects_sanitizer_and_fault_plan(engine):
    from repro.machine.faults import FaultPlan, FaultSpec

    with pytest.raises(ValueError, match="sanitizer"):
        engine.run_spmd(
            sp2(nodes=NRANKS), prog_ring, sanitizer=object()
        )
    plan = FaultPlan([FaultSpec(rank=0, time=1.0)])
    with pytest.raises(ValueError, match="real faults"):
        engine.run_spmd(sp2(nodes=NRANKS), prog_ring, fault_plan=plan)


def test_more_ranks_than_machine_nodes_rejected(engine):
    with pytest.raises(ValueError, match="cannot run"):
        engine.run_spmd(sp2(nodes=2), prog_ring, nranks=3)
