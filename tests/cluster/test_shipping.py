"""Closure shipping: by-reference vs by-value, identity, guards.

Everything here is an in-process round trip (``load_program`` of a
``ship_program`` blob) — the cross-interpreter leg is exercised by the
backend tests, which run the same machinery through real daemons.
"""

from __future__ import annotations

import pickle
import sys

import numpy as np
import pytest

from repro.cluster.shipping import (
    ShipError,
    blobs_sha,
    load_program,
    ship_program,
)

SCALE = 3


def module_level_program(comm):
    yield from comm.elapse(1.0)
    return comm.rank * SCALE


def test_module_function_ships_by_reference():
    fn = load_program(ship_program(module_level_program))
    # Importable module-level functions resolve to the live object.
    assert fn is module_level_program


def test_closure_ships_by_value_with_cells_and_defaults():
    offset = 100

    def prog(comm, bump=7):
        yield from comm.elapse(1.0)
        return comm.rank + offset + bump

    fn = load_program(ship_program(prog))
    assert fn is not prog
    assert fn.__defaults__ == (7,)
    gen = fn(_FakeComm(rank=2))
    assert _drive(gen) == 109


def test_shared_cell_identity_survives():
    shared = {"hits": 0}

    def prog(comm, a=shared, b=shared):
        yield from comm.elapse(1.0)
        a["hits"] += 1
        return b["hits"]  # same dict iff identity survived

    fn = load_program(ship_program(prog))
    assert _drive(fn(_FakeComm(rank=0))) == 1
    # ...and the rebuilt defaults alias each other, not the original.
    assert fn.__defaults__[0] is fn.__defaults__[1]
    assert fn.__defaults__[0] is not shared


def test_main_module_closure_uses_shipped_globals():
    # Simulate a function defined in a script's __main__: its globals
    # must travel by value (the node's __main__ is the daemon).
    code = compile(
        "def prog(comm):\n"
        "    yield from comm.elapse(1.0)\n"
        "    return int(np.sum(np.arange(GAIN)))\n",
        "<script>",
        "exec",
    )
    fake_main = {"__name__": "__main__", "np": np, "GAIN": 4}
    exec(code, fake_main)
    fn = load_program(ship_program(fake_main["prog"]))
    assert _drive(fn(_FakeComm(rank=0))) == 6


def test_unpicklable_closure_is_typed_error():
    handle = open(__file__)
    try:

        def prog(comm):
            yield from comm.elapse(1.0)
            return handle.name

        with pytest.raises(ShipError, match="not picklable"):
            ship_program(prog)
    finally:
        handle.close()


def test_non_callable_refused():
    with pytest.raises(ShipError, match="callable"):
        ship_program(42)


def test_python_version_mismatch_refused():
    blob = ship_program(module_level_program)
    doc = pickle.loads(blob)
    doc["python"] = (sys.version_info[0], sys.version_info[1] + 1)
    with pytest.raises(ShipError, match="CPython"):
        load_program(pickle.dumps(doc))


def test_blobs_sha_is_order_and_content_sensitive():
    a, b = b"blob-a", b"blob-b"
    assert blobs_sha([a, b]) == blobs_sha([a, b])
    assert blobs_sha([a, b]) != blobs_sha([b, a])
    assert blobs_sha([a]) != blobs_sha([a], extra=b"salt")


# ---------------------------------------------------------------- helpers


class _FakeComm:
    def __init__(self, rank: int, size: int = 4):
        self.rank = rank
        self.size = size

    def elapse(self, seconds):
        yield ("elapse", seconds)


def _drive(gen):
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value
