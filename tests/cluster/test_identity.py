"""Acceptance: cluster physics is byte-identical to the simulator.

The same OVERFLOW-D1 assertions the mp backend passes
(``tests/backend/test_overflow_backends.py``), now across real TCP
daemons: per-step IGBP counts, connectivity search totals, orphan
counts and repartition decisions must match exactly; only the clock
(wall vs virtual) may differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend
from repro.cases import airfoil_case, x38_case
from repro.cluster import cluster_available
from repro.core import OverflowD1
from repro.machine import sp2

pytestmark = [
    pytest.mark.mp,
    pytest.mark.cluster,
    pytest.mark.skipif(
        cluster_available() is not None, reason=str(cluster_available())
    ),
]


@pytest.fixture(scope="module")
def engine():
    eng = get_backend("cluster", nnodes=2)
    yield eng
    eng.close()


def _assert_identical(sim, cl):
    assert cl.nsteps == sim.nsteps
    assert cl.nprocs == sim.nprocs
    assert len(cl.epochs) == len(sim.epochs)
    for es, ec in zip(sim.epochs, cl.epochs):
        assert ec.partition.procs_per_grid == es.partition.procs_per_grid
        assert ec.first_step == es.first_step
        assert ec.nsteps == es.nsteps
        assert np.array_equal(
            ec.igbp.per_step(), es.igbp.per_step()
        ), "per-rank-per-step IGBP counts diverged"
        assert ec.search_steps_total == es.search_steps_total
        assert ec.orphans_total == es.orphans_total
    assert cl.partition_history == sim.partition_history
    assert np.array_equal(
        cl.igbp_rollup().accumulated(), sim.igbp_rollup().accumulated()
    )
    assert cl.elapsed > 0 and sim.elapsed > 0


def test_airfoil_physics_identical(engine):
    def run(backend):
        cfg = airfoil_case(machine=sp2(nodes=4), scale=0.25, nsteps=4)
        return OverflowD1(cfg, backend=backend).run()

    _assert_identical(run("sim"), run(engine))


def test_x38_physics_identical(engine):
    def run(backend):
        cfg = x38_case(machine=sp2(nodes=4), scale=0.2, nsteps=3)
        return OverflowD1(cfg, backend=backend).run()

    _assert_identical(run("sim"), run(engine))
