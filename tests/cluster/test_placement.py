"""Placement: contiguous blocking, remainder rule, wire round-trip."""

from __future__ import annotations

import pytest

from repro.cluster.placement import Placement


def test_even_split():
    p = Placement.contiguous(4, [0, 1])
    assert p.node_of_rank == (0, 0, 1, 1)
    assert p.nranks == 4
    assert p.node_ids == (0, 1)
    assert p.ranks_of(0) == (0, 1)
    assert p.ranks_of(1) == (2, 3)


def test_remainder_goes_to_leading_nodes():
    # 7 = 2*3 + 1: first node gets 3 ranks, the other two get 2.
    p = Placement.contiguous(7, [0, 1, 2])
    assert p.node_of_rank == (0, 0, 0, 1, 1, 2, 2)


def test_fewer_ranks_than_nodes_leaves_tail_idle():
    p = Placement.contiguous(2, [0, 1, 2])
    assert p.node_of_rank == (0, 1)
    assert p.node_ids == (0, 1)
    assert p.ranks_of(2) == ()


def test_survivor_ids_keep_their_numbers():
    # After node 0 dies the placement just spans the survivors; the
    # surviving handshake ids are used verbatim.
    p = Placement.contiguous(4, [1, 2])
    assert p.node_of_rank == (1, 1, 2, 2)


def test_wire_round_trip():
    p = Placement.contiguous(5, [3, 5])
    assert Placement.from_wire(p.to_wire()) == p


def test_rejects_empty():
    with pytest.raises(ValueError):
        Placement.contiguous(0, [0])
    with pytest.raises(ValueError):
        Placement.contiguous(4, [])
