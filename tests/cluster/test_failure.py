"""Elastic failure recovery: kill a node daemon, finish the run.

Two layers under test, both against *real* SIGKILLed daemons:

* the backend layer turns a lost node into the same typed
  :class:`RankFailure` the simulator's fault plans raise, naming
  exactly the ranks that node hosted, and keeps serving chunks on the
  survivors;
* the driver layer (``repro.resilience`` wiring) catches that failure,
  restores the last checkpoint, shrink-repartitions over the survivors
  with ``static_balance(exclude_ranks=...)`` and completes the run.

This is the scenario the CI ``cluster-smoke`` job replays end to end.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.backend import get_backend
from repro.cases import airfoil_case
from repro.cluster import cluster_available
from repro.core import OverflowD1
from repro.machine import sp2
from repro.machine.faults import RankFailure
from repro.obs.tracer import SpanTracer

pytestmark = [
    pytest.mark.mp,
    pytest.mark.cluster,
    pytest.mark.skipif(
        cluster_available() is not None, reason=str(cluster_available())
    ),
]

TAG = 4


def prog_chatter(comm):
    """Keep ranks exchanging until well past the kill point."""
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    for i in range(200):
        yield from comm.send(dst, TAG, i, nbytes=8)
        yield from comm.recv(src, TAG)
        yield from comm.elapse(2e-3)
    return comm.rank


def _kill_node(engine, node_id: int) -> tuple[int, ...]:
    """SIGKILL one spawned daemon; returns the ranks it was hosting."""
    handle = engine.supervisor.nodes[node_id]
    assert handle.proc is not None, "node was not spawned by this head"
    os.kill(handle.proc.pid, signal.SIGKILL)
    return handle.node_id


def test_node_kill_raises_rankfailure_naming_its_ranks():
    engine = get_backend("cluster", nnodes=2, hb_timeout=3.0)
    try:
        # Warm the pool and learn the placement: 4 ranks over 2 nodes
        # puts ranks (2, 3) on node 1.
        engine.run_spmd(sp2(nodes=4), prog_chatter)

        victim = engine.supervisor.nodes[1]
        os.kill(victim.proc.pid, signal.SIGKILL)
        with pytest.raises(RankFailure) as info:
            engine.run_spmd(sp2(nodes=4), prog_chatter)
        failure = info.value
        assert failure.failed_ranks == (2, 3)
        assert failure.nranks == 4

        # The pool shrinks but keeps serving: the survivor hosts the
        # whole next chunk.
        assert engine.supervisor.alive_ids() == [0]
        out = engine.run_spmd(sp2(nodes=2), prog_chatter, nranks=2)
        assert out.returns == [0, 1]
    finally:
        engine.close()


def test_driver_recovers_and_completes_after_node_loss():
    engine = get_backend("cluster", nnodes=2, hb_timeout=3.0)
    kill_state = {"calls": 0}
    real_run = engine.run

    def run_with_midrun_kill(*args, **kwargs):
        kill_state["calls"] += 1
        if kill_state["calls"] == 3:
            # Third chunk: the run is past its step-2 checkpoint, so
            # the restore is a real rewind, not the implicit step-0 one.
            os.kill(
                engine.supervisor.nodes[1].proc.pid, signal.SIGKILL
            )
        return real_run(*args, **kwargs)

    engine.run = run_with_midrun_kill
    tracer = SpanTracer()
    try:
        cfg = airfoil_case(machine=sp2(nodes=6), scale=0.2, nsteps=8)
        run = OverflowD1(
            cfg, backend=engine, tracer=tracer, checkpoint_every=2
        ).run()
    finally:
        engine.run = real_run
        engine.close()

    assert run.nsteps == 8, "run must complete despite the node loss"
    assert len(run.recoveries) == 1
    rec = run.recoveries[0]
    assert rec.nprocs_before == 6
    assert rec.nprocs_after == 3, "survivor node hosts half the ranks"
    assert rec.failed_ranks == (3, 4, 5)
    assert run.epochs[-1].partition.nprocs == 3

    # The failure is recorded in the trace as a recovery episode.
    marks = [name for _, name, _ in tracer.marks]
    assert "recovery" in marks and "recovered" in marks
    rec_mark = next(a for _, n, a in tracer.marks if n == "recovery")
    assert rec_mark["failed_ranks"] == [3, 4, 5]
