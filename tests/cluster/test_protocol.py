"""Wire-protocol unit tests: framing, caps, truncation, addresses.

Pure socketpair tests — no daemons, no forks — so this file runs in the
default (unmarked) tier.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.cluster.protocol import (
    MAX_CONTROL_FRAME,
    ClusterProtocolError,
    FrameTooLarge,
    parse_hostport,
    recv_message,
    send_control,
    send_data,
    send_payload,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestRoundTrips:
    def test_control_frame(self, pair):
        a, b = pair
        send_control(a, {"op": "hb", "node": 3})
        assert recv_message(b) == ("control", {"op": "hb", "node": 3})

    def test_payload_frame_carries_binary(self, pair):
        a, b = pair
        blob = bytes(range(256)) * 10
        send_payload(a, {"op": "launch", "blob": blob})
        kind, obj = recv_message(b)
        assert kind == "payload"
        assert obj["blob"] == blob

    def test_data_frame_verbatim(self, pair):
        a, b = pair
        frame = b"\x00engine-frame-bytes\xff"
        send_data(a, 7, frame)
        assert recv_message(b) == ("data", (7, frame))

    def test_interleaved_kinds_stay_ordered(self, pair):
        a, b = pair
        send_control(a, {"op": "ready"})
        send_data(a, 0, b"x" * 3)
        send_payload(a, {"op": "rank_done", "rank": 1})
        assert recv_message(b)[0] == "control"
        assert recv_message(b)[0] == "data"
        assert recv_message(b)[0] == "payload"

    def test_large_data_frame(self, pair):
        a, b = pair
        frame = b"z" * (4 << 20)  # over any single recv() chunk
        t = threading.Thread(target=send_data, args=(a, 2, frame))
        t.start()
        kind, (dst, got) = recv_message(b)
        t.join()
        assert kind == "data" and dst == 2 and got == frame


class TestErrors:
    def test_clean_eof_is_none(self, pair):
        a, b = pair
        a.close()
        assert recv_message(b) is None

    def test_mid_frame_eof_is_typed(self, pair):
        a, b = pair
        a.sendall(b"J" + (100).to_bytes(4, "big") + b"only-ten-b")
        a.close()
        with pytest.raises(ClusterProtocolError, match="mid-frame"):
            recv_message(b)

    def test_oversized_control_frame_refused_on_send(self, pair):
        a, _ = pair
        with pytest.raises(FrameTooLarge):
            send_control(a, {"pad": "x" * (MAX_CONTROL_FRAME + 1)})

    def test_oversized_incoming_length_word(self, pair):
        a, b = pair
        a.sendall(b"J" + (MAX_CONTROL_FRAME + 1).to_bytes(4, "big"))
        with pytest.raises(FrameTooLarge):
            recv_message(b)

    def test_unknown_kind(self, pair):
        a, b = pair
        a.sendall(b"Q" + (0).to_bytes(4, "big"))
        with pytest.raises(ClusterProtocolError, match="unknown frame kind"):
            recv_message(b)

    def test_control_garbage_json(self, pair):
        a, b = pair
        a.sendall(b"J" + (4).to_bytes(4, "big") + b"nope")
        with pytest.raises(ClusterProtocolError, match="JSON"):
            recv_message(b)

    def test_unencodable_control(self, pair):
        a, _ = pair
        with pytest.raises(ClusterProtocolError, match="unencodable"):
            send_control(a, {"bad": float("nan")})


class TestParseHostport:
    def test_plain(self):
        assert parse_hostport("10.0.0.5:9100") == ("10.0.0.5", 9100)

    def test_hostname(self):
        assert parse_hostport("head.local:80") == ("head.local", 80)

    @pytest.mark.parametrize("bad", ["nohost", ":123", "h:port", "h:"])
    def test_malformed(self, bad):
        with pytest.raises(ClusterProtocolError):
            parse_hostport(bad)
