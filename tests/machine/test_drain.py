"""The canonical-order drain primitive: Mailbox.pop_all_matching and
Comm.drain_recv."""

import pytest

from repro.machine import (
    ANY_SOURCE,
    ANY_TAG,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    Simulator,
)
from repro.machine.event import Mailbox, Message

TAG_X = 4
TAG_Y = 5


def make_machine(nodes=3, flops=1e6, latency=1e-4, bandwidth=1e6):
    return MachineSpec(
        "test", nodes, NodeSpec(flops), NetworkSpec(latency, bandwidth)
    )


def msg(src, tag, arrival, seq):
    return Message(
        src=src,
        dst=0,
        tag=tag,
        payload=f"m{src}.{seq}",
        nbytes=8,
        send_time=0.0,
        arrival_time=arrival,
        seq=seq,
    )


class TestPopAllMatching:
    def test_returns_canonical_src_seq_order(self):
        box = Mailbox()
        # Arrival order deliberately scrambled w.r.t. (src, seq).
        box.deposit(msg(2, TAG_X, arrival=0.1, seq=10))
        box.deposit(msg(1, TAG_X, arrival=0.2, seq=11))
        box.deposit(msg(1, TAG_X, arrival=0.3, seq=9))
        got = box.pop_all_matching(ANY_SOURCE, TAG_X, now=1.0)
        assert [(m.src, m.seq) for m in got] == [(1, 9), (1, 11), (2, 10)]
        assert len(box) == 0

    def test_future_messages_stay(self):
        box = Mailbox()
        box.deposit(msg(1, TAG_X, arrival=0.1, seq=1))
        box.deposit(msg(2, TAG_X, arrival=5.0, seq=2))
        got = box.pop_all_matching(ANY_SOURCE, TAG_X, now=1.0)
        assert [m.src for m in got] == [1]
        assert len(box) == 1

    def test_filters_by_src_and_tag(self):
        box = Mailbox()
        box.deposit(msg(1, TAG_X, arrival=0.1, seq=1))
        box.deposit(msg(1, TAG_Y, arrival=0.1, seq=2))
        box.deposit(msg(2, TAG_X, arrival=0.1, seq=3))
        got = box.pop_all_matching(1, TAG_X, now=1.0)
        assert [(m.src, m.tag) for m in got] == [(1, TAG_X)]
        assert len(box) == 2

    def test_empty_mailbox(self):
        assert Mailbox().pop_all_matching(ANY_SOURCE, ANY_TAG, 1.0) == []


class TestDrainRecv:
    def test_collects_arrived_messages_in_src_order(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.elapse(1.0)
                out = []
                while len(out) < 2:
                    for payload, status in (
                        yield from comm.drain_recv(ANY_SOURCE, TAG_X)
                    ):
                        out.append((status.source, payload))
                    if len(out) < 2:
                        yield from comm.elapse(0.01)
                return out
            yield from comm.send(0, TAG_X, f"p{comm.rank}", nbytes=16)

        sim = Simulator(make_machine())
        sim.spawn_all(program)
        result = sim.run()
        assert result.returns[0] == [(1, "p1"), (2, "p2")]

    def test_empty_drain_returns_empty_list(self):
        def program(comm):
            if comm.rank == 0:
                got = yield from comm.drain_recv(ANY_SOURCE, TAG_X)
                return got
            yield from comm.elapse(0.01)

        sim = Simulator(make_machine())
        sim.spawn_all(program)
        assert sim.run().returns[0] == []

    def test_drain_rejects_reserved_tag(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.drain_recv(ANY_SOURCE, 10**9)
            else:
                yield from comm.elapse(0.01)

        sim = Simulator(make_machine())
        sim.spawn_all(program)
        with pytest.raises(ValueError, match="outside the user range"):
            sim.run()

    def test_drain_counts_received_messages(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.elapse(1.0)
                yield from comm.drain_recv(ANY_SOURCE, TAG_X)
            else:
                yield from comm.send(0, TAG_X, None, nbytes=8)

        sim = Simulator(make_machine())
        sim.spawn_all(program)
        result = sim.run()
        received = sum(r.messages_received for r in result.metrics.ranks)
        assert received == 2

    def test_subcomm_drain_translates_ranks_and_tags(self):
        def program(comm):
            if comm.rank == 2:
                yield from comm.elapse(0.1)
                return None
            sub = comm.split([0, 1])
            if sub.rank == 1:
                yield from sub.send(0, TAG_X, "g", nbytes=8)
                return None
            yield from sub.elapse(1.0)
            got = yield from sub.drain_recv(ANY_SOURCE, TAG_X)
            return [(s.source, s.tag, p) for p, s in got]

        sim = Simulator(make_machine())
        sim.spawn_all(program)
        result = sim.run()
        # Group-local source rank and the *user* tag, not the offset one.
        assert result.returns[0] == [(1, TAG_X, "g")]
