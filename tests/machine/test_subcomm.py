"""Tests for group communicators (per-grid processor groups)."""

import numpy as np
import pytest

from repro.machine import MachineSpec, NetworkSpec, NodeSpec, Simulator
from repro.machine.simmpi import SubComm


def machine(nodes):
    return MachineSpec("t", nodes, NodeSpec(1e7), NetworkSpec(1e-5, 1e8))


def run(nodes, program):
    sim = Simulator(machine(nodes))
    sim.spawn_all(program)
    return sim.run()


class TestSplit:
    def test_local_ranks_and_sizes(self):
        def program(comm):
            members = [0, 2, 3] if comm.rank in (0, 2, 3) else [1, 4]
            sub = comm.split(members)
            yield from ()
            return sub.rank, sub.size

        result = run(5, program)
        assert result.returns[0] == (0, 3)
        assert result.returns[2] == (1, 3)
        assert result.returns[3] == (2, 3)
        assert result.returns[1] == (0, 2)
        assert result.returns[4] == (1, 2)

    def test_nonmember_rejected(self):
        def program(comm):
            yield from ()
            if comm.rank == 0:
                comm.split([1, 2])

        with pytest.raises(ValueError, match="not a member"):
            run(3, program)

    def test_out_of_range_rejected(self):
        def program(comm):
            yield from ()
            comm.split([comm.rank, 99])

        with pytest.raises(ValueError, match="out of range"):
            run(2, program)

    def test_nested_split_rejected(self):
        def program(comm):
            yield from ()
            sub = comm.split(list(range(comm.size)))
            sub.split([0])

        with pytest.raises(ValueError, match="nested"):
            run(2, program)


class TestGroupTraffic:
    def test_point_to_point_uses_local_ranks(self):
        def program(comm):
            members = [1, 3]
            if comm.rank not in members:
                yield from ()
                return None
            sub = comm.split(members)
            if sub.rank == 0:
                yield from sub.send(1, tag=5, payload="hi")
                return None
            payload, status = yield from sub.recv(0, tag=5)
            return payload, status.source

        result = run(4, program)
        assert result.returns[3] == ("hi", 0)  # local source rank

    def test_concurrent_group_collectives_do_not_cross(self):
        """Two disjoint groups run allreduce simultaneously; each gets
        its own sum despite identical local tags."""

        def program(comm):
            members = (
                [0, 1, 2] if comm.rank < 3 else [3, 4]
            )
            sub = comm.split(members)
            total = yield from sub.allreduce(comm.rank + 1)
            return total

        result = run(5, program)
        assert result.returns[:3] == [6, 6, 6]      # 1+2+3
        assert result.returns[3:] == [9, 9]         # 4+5

    def test_group_barrier(self):
        def program(comm):
            members = [0, 1] if comm.rank < 2 else [2, 3]
            sub = comm.split(members)
            yield from comm.elapse(0.1 * comm.rank)
            yield from sub.barrier()
            return (yield from comm.now())

        result = run(4, program)
        # Group {0,1} synchronises at >= 0.1; group {2,3} at >= 0.3.
        assert min(result.returns[:2]) >= 0.1
        assert min(result.returns[2:]) >= 0.3
        # Groups are independent: group one is NOT dragged to 0.3.
        assert max(result.returns[:2]) < 0.3

    def test_sendrecv_exchange(self):
        def program(comm):
            other = 1 - comm.rank
            payload, _ = yield from comm.sendrecv(
                other, other, tag=9, payload=f"from{comm.rank}"
            )
            return payload

        result = run(2, program)
        assert result.returns == ["from1", "from0"]

    def test_group_bcast(self):
        def program(comm):
            sub = comm.split(list(range(comm.size)))
            data = "root" if sub.rank == 0 else None
            return (yield from sub.bcast(data, root=0))

        result = run(5, program)
        assert all(r == "root" for r in result.returns)
