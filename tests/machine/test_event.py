"""Tests for message matching and mailbox semantics."""

from repro.machine.event import ANY_SOURCE, ANY_TAG, Mailbox, Message


def msg(src=0, dst=1, tag=0, arrival=1.0, payload=None, nbytes=8):
    return Message(
        src=src, dst=dst, tag=tag, payload=payload, nbytes=nbytes,
        send_time=arrival - 0.5, arrival_time=arrival,
    )


class TestMessageMatching:
    def test_exact_match(self):
        m = msg(src=3, tag=7)
        assert m.matches(3, 7)
        assert not m.matches(3, 8)
        assert not m.matches(2, 7)

    def test_wildcards(self):
        m = msg(src=3, tag=7)
        assert m.matches(ANY_SOURCE, 7)
        assert m.matches(3, ANY_TAG)
        assert m.matches(ANY_SOURCE, ANY_TAG)


class TestMailbox:
    def test_probe_respects_arrival_time(self):
        box = Mailbox()
        box.deposit(msg(arrival=5.0))
        assert box.peek_matching(ANY_SOURCE, ANY_TAG, now=4.0) is None
        assert box.peek_matching(ANY_SOURCE, ANY_TAG, now=5.0) is not None

    def test_allow_future_sees_undelivered(self):
        box = Mailbox()
        box.deposit(msg(arrival=5.0))
        got = box.peek_matching(ANY_SOURCE, ANY_TAG, now=0.0, allow_future=True)
        assert got is not None

    def test_pop_removes(self):
        box = Mailbox()
        box.deposit(msg(arrival=1.0))
        assert len(box) == 1
        box.pop_matching(ANY_SOURCE, ANY_TAG, now=2.0)
        assert len(box) == 0

    def test_wildcard_matches_earliest_arrival(self):
        box = Mailbox()
        box.deposit(msg(src=1, tag=1, arrival=3.0, payload="late"))
        box.deposit(msg(src=2, tag=2, arrival=1.0, payload="early"))
        got = box.pop_matching(ANY_SOURCE, ANY_TAG, now=10.0)
        assert got.payload == "early"

    def test_tag_filter_skips_nonmatching(self):
        box = Mailbox()
        box.deposit(msg(src=1, tag=1, arrival=1.0, payload="a"))
        box.deposit(msg(src=1, tag=2, arrival=2.0, payload="b"))
        got = box.pop_matching(1, 2, now=10.0)
        assert got.payload == "b"
        assert len(box) == 1

    def test_earliest_arrival(self):
        box = Mailbox()
        assert box.earliest_arrival() is None
        box.deposit(msg(arrival=4.0))
        box.deposit(msg(arrival=2.0))
        assert box.earliest_arrival() == 2.0

    def test_fifo_per_channel_on_equal_arrival(self):
        box = Mailbox()
        a = msg(src=1, tag=1, arrival=1.0, payload="first")
        b = msg(src=1, tag=1, arrival=1.0, payload="second")
        box.deposit(a)
        box.deposit(b)
        assert box.pop_matching(1, 1, now=2.0).payload == "first"
        assert box.pop_matching(1, 1, now=2.0).payload == "second"
