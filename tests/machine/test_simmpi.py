"""Integration tests for the SimMPI layer on the event scheduler."""

import numpy as np
import pytest

from repro.machine import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    Simulator,
    sp2,
)


def make_machine(nodes=2, flops=1e6, latency=1e-4, bandwidth=1e6):
    return MachineSpec(
        "test", nodes, NodeSpec(flops), NetworkSpec(latency, bandwidth)
    )


def run(machine, program, *args):
    sim = Simulator(machine)
    sim.spawn_all(program, *args)
    return sim.run()


class TestCompute:
    def test_compute_advances_clock(self):
        def program(comm):
            yield from comm.compute(flops=2e6)

        result = run(make_machine(nodes=1, flops=1e6), program)
        assert result.elapsed == pytest.approx(2.0)

    def test_flops_accounted(self):
        def program(comm):
            yield from comm.compute(flops=5e5)

        result = run(make_machine(nodes=3), program)
        assert result.metrics.total_flops() == pytest.approx(1.5e6)

    def test_elapse_charges_no_flops(self):
        def program(comm):
            yield from comm.elapse(3.5)

        result = run(make_machine(nodes=1), program)
        assert result.elapsed == pytest.approx(3.5)
        assert result.metrics.total_flops() == 0

    def test_zero_work_is_free(self):
        def program(comm):
            yield from comm.compute()

        result = run(make_machine(nodes=1), program)
        assert result.elapsed == 0.0


class TestPointToPoint:
    def test_send_recv_payload(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=5, payload={"x": 42}, nbytes=100)
                return None
            payload, status = yield from comm.recv(0, tag=5)
            return payload, status

        result = run(make_machine(), program)
        payload, status = result.returns[1]
        assert payload == {"x": 42}
        assert status.source == 0 and status.tag == 5

    def test_recv_waits_for_arrival(self):
        machine = make_machine(latency=1e-3, bandwidth=1e9)

        def program(comm):
            if comm.rank == 0:
                yield from comm.elapse(0.5)
                yield from comm.send(1, tag=0, nbytes=0)
            else:
                yield from comm.recv(0, tag=0)
                return (yield from comm.now())

        result = run(machine, program)
        # Arrival = 0.5 + overhead + latency.
        assert result.returns[1] == pytest.approx(0.5 + 5e-6 + 1e-3)

    def test_message_order_preserved_per_channel(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield from comm.send(1, tag=1, payload=i, nbytes=8)
                return None
            got = []
            for _ in range(5):
                payload, _ = yield from comm.recv(0, tag=1)
                got.append(payload)
            return got

        result = run(make_machine(), program)
        assert result.returns[1] == [0, 1, 2, 3, 4]

    def test_wildcard_receive(self):
        def program(comm):
            if comm.rank == 0:
                got = []
                for _ in range(2):
                    payload, status = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                    got.append((status.source, payload))
                return sorted(got)
            yield from comm.elapse(0.01 * comm.rank)
            yield from comm.send(0, tag=comm.rank, payload=f"r{comm.rank}")
            return None

        result = run(make_machine(nodes=3), program)
        assert result.returns[0] == [(1, "r1"), (2, "r2")]

    def test_numpy_payload_nbytes_estimated(self):
        arr = np.zeros(1000, dtype=np.float64)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=0, payload=arr)
            else:
                payload, status = yield from comm.recv(0, tag=0)
                return status.nbytes

        result = run(make_machine(), program)
        assert result.returns[1] >= 8000

    def test_self_send(self):
        def program(comm):
            yield from comm.send(comm.rank, tag=3, payload="me", nbytes=8)
            payload, _ = yield from comm.recv(comm.rank, tag=3)
            return payload

        result = run(make_machine(nodes=1), program)
        assert result.returns[0] == "me"

    def test_send_to_invalid_rank_raises(self):
        def program(comm):
            yield from comm.send(99, tag=0)

        with pytest.raises(ValueError, match="invalid rank"):
            run(make_machine(), program)


class TestNonBlocking:
    def test_irecv_wait(self):
        def program(comm):
            if comm.rank == 0:
                req = yield from comm.irecv(1, tag=2)
                payload, _ = yield from comm.wait(req)
                return payload
            yield from comm.send(0, tag=2, payload="async")
            return None

        result = run(make_machine(), program)
        assert result.returns[0] == "async"

    def test_test_polls_without_blocking(self):
        def program(comm):
            if comm.rank == 0:
                req = yield from comm.irecv(1, tag=9)
                polls = 0
                while not (yield from comm.test(req)):
                    polls += 1
                    yield from comm.elapse(0.01)
                return polls, req.payload
            yield from comm.elapse(0.05)
            yield from comm.send(0, tag=9, payload="done")
            return None

        result = run(make_machine(), program)
        polls, payload = result.returns[0]
        assert payload == "done"
        assert polls >= 3  # had to poll several times before arrival

    def test_iprobe(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=4, payload=1, nbytes=8)
                return None
            # Probe until the message lands, then receive it.
            while not (yield from comm.iprobe(0, tag=4)):
                yield from comm.elapse(1e-5)
            payload, _ = yield from comm.recv(0, tag=4)
            return payload

        result = run(make_machine(), program)
        assert result.returns[1] == 1

    def test_isend_returns_completed_request(self):
        def program(comm):
            if comm.rank == 0:
                req = yield from comm.isend(1, tag=0, payload="x")
                assert req.done
                yield from comm.wait(req)
            else:
                yield from comm.recv(0, tag=0)

        run(make_machine(), program)


class TestCollectives:
    @pytest.mark.parametrize("nodes", [1, 2, 3, 4, 5, 8, 13])
    def test_barrier_all_sizes(self, nodes):
        def program(comm):
            yield from comm.elapse(0.1 * comm.rank)
            yield from comm.barrier()
            return (yield from comm.now())

        result = run(make_machine(nodes=nodes), program)
        # After a barrier everyone's clock is at least the slowest arrival.
        assert min(result.returns) >= 0.1 * (nodes - 1)

    @pytest.mark.parametrize("nodes", [1, 2, 3, 4, 7, 8, 9])
    def test_bcast_all_sizes(self, nodes):
        def program(comm):
            data = "root-data" if comm.rank == 0 else None
            got = yield from comm.bcast(data, root=0)
            return got

        result = run(make_machine(nodes=nodes), program)
        assert all(r == "root-data" for r in result.returns)

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        def program(comm):
            data = f"from{comm.rank}" if comm.rank == root else None
            return (yield from comm.bcast(data, root=root))

        result = run(make_machine(nodes=3), program)
        assert all(r == f"from{root}" for r in result.returns)

    @pytest.mark.parametrize("nodes", [1, 2, 5])
    def test_gather(self, nodes):
        def program(comm):
            return (yield from comm.gather(comm.rank * 10, root=0))

        result = run(make_machine(nodes=nodes), program)
        assert result.returns[0] == [10 * i for i in range(nodes)]
        assert all(r is None for r in result.returns[1:])

    def test_allgather(self):
        def program(comm):
            return (yield from comm.allgather(comm.rank))

        result = run(make_machine(nodes=4), program)
        assert all(r == [0, 1, 2, 3] for r in result.returns)

    def test_allreduce_sum(self):
        def program(comm):
            return (yield from comm.allreduce(comm.rank + 1))

        result = run(make_machine(nodes=4), program)
        assert all(r == 10 for r in result.returns)

    def test_allreduce_max(self):
        def program(comm):
            return (yield from comm.allreduce(comm.rank, op=max))

        result = run(make_machine(nodes=5), program)
        assert all(r == 4 for r in result.returns)

    def test_alltoall(self):
        def program(comm):
            outgoing = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return (yield from comm.alltoall(outgoing))

        result = run(make_machine(nodes=3), program)
        for r in range(3):
            assert result.returns[r] == [f"{s}->{r}" for s in range(3)]

    def test_alltoall_wrong_length_raises(self):
        def program(comm):
            yield from comm.alltoall([1])

        with pytest.raises(ValueError, match="one payload per rank"):
            run(make_machine(nodes=3), program)


class TestSchedulerSemantics:
    def test_deadlock_detected(self):
        def program(comm):
            # Everyone receives, nobody sends.
            yield from comm.recv(ANY_SOURCE, ANY_TAG)

        with pytest.raises(DeadlockError, match="blocked on recv"):
            run(make_machine(), program)

    def test_determinism(self):
        """Two identical runs give byte-identical timings."""

        def program(comm, seed):
            rng = np.random.default_rng(seed + comm.rank)
            for _ in range(20):
                yield from comm.compute(flops=float(rng.integers(1, 1000)))
                dst = int(rng.integers(0, comm.size))
                yield from comm.send(dst, tag=0, nbytes=64)
            got = 0
            while got < 20 * comm.size // comm.size:
                # Drain exactly the messages sent to us is racy to predict;
                # instead just count our own sends via allreduce below.
                break
            total = yield from comm.allreduce(1)
            # Drain remaining messages to ourselves to terminate cleanly.
            while (yield from comm.iprobe()):
                yield from comm.recv()
            return total

        def elapsed():
            sim = Simulator(make_machine(nodes=4))
            sim.spawn_all(program, 42)
            return sim.run().elapsed

        assert elapsed() == elapsed()

    def test_phase_accounting(self):
        def program(comm):
            yield from comm.set_phase("alpha")
            yield from comm.compute(flops=1e6)
            yield from comm.set_phase("beta")
            yield from comm.compute(flops=3e6)

        result = run(make_machine(nodes=1, flops=1e6), program)
        m = result.metrics
        assert m.phase_time_max("alpha") == pytest.approx(1.0)
        assert m.phase_time_max("beta") == pytest.approx(3.0)
        assert m.phase_fraction("beta") == pytest.approx(0.75)

    def test_wait_time_attributed(self):
        def program(comm):
            yield from comm.set_phase("work")
            if comm.rank == 0:
                yield from comm.elapse(1.0)
                yield from comm.send(1, tag=0, nbytes=0)
            else:
                yield from comm.recv(0, tag=0)

        result = run(make_machine(), program)
        r1 = result.metrics.ranks[1]
        assert r1.time["work"]["wait"] == pytest.approx(1.0, rel=0.01)

    def test_spawn_more_than_nodes_raises(self):
        sim = Simulator(make_machine(nodes=1))
        sim.spawn(lambda comm: iter(()))
        with pytest.raises(ValueError, match="cannot spawn more"):
            sim.spawn(lambda comm: iter(()))

    def test_run_without_programs_raises(self):
        with pytest.raises(ValueError, match="no rank programs"):
            Simulator(make_machine()).run()

    def test_heterogeneous_programs(self):
        def producer(comm):
            yield from comm.send(1, tag=0, payload="work-item")

        def consumer(comm):
            payload, _ = yield from comm.recv(0, tag=0)
            return payload

        sim = Simulator(make_machine(nodes=2))
        sim.spawn(producer)
        sim.spawn(consumer)
        result = sim.run()
        assert result.returns[1] == "work-item"

    def test_sp2_slower_than_sp_for_same_program(self):
        def program(comm):
            yield from comm.compute(flops=10e6)
            other = (comm.rank + 1) % comm.size
            yield from comm.send(other, tag=0, nbytes=100_000)
            yield from comm.recv(other, tag=0)

        def time_on(machine):
            sim = Simulator(machine)
            sim.spawn_all(program)
            return sim.run().elapsed

        from repro.machine import sp

        assert time_on(sp2(nodes=2)) > time_on(sp(nodes=2))
