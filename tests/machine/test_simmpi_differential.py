"""Differential tests for the SimMPI collectives (ISSUE satellite).

Every collective is checked against a *serial reference* computed
directly from the per-rank inputs, over randomized rank counts that
include P=1 and non-powers-of-2.  A second battery pins the reserved
tag space: user tags live in [0, MAX_USER_TAG); everything above —
sub-communicator offsets and the collective rounds at
``_COLL_TAG_BASE`` — is guarded against application use so concurrent
collectives can never match user messages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    ANY_TAG,
    MAX_USER_TAG,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    Simulator,
)
from repro.machine.simmpi import _COLL_TAG_BASE, SubComm


def make_machine(nodes):
    return MachineSpec(
        "diff", nodes, NodeSpec(1e6), NetworkSpec(1e-4, 1e6)
    )


def run(nodes, program, *args):
    sim = Simulator(make_machine(nodes))
    sim.spawn_all(program, *args)
    return sim.run()


# Rank counts: P=1, powers of two, and awkward non-powers-of-2.
RANK_COUNTS = st.integers(min_value=1, max_value=13)


class TestDifferentialCollectives:
    """Each collective vs. a serial reference over random rank counts."""

    @settings(max_examples=25, deadline=None)
    @given(nodes=RANK_COUNTS, seed=st.integers(0, 10_000))
    def test_allreduce_sum_matches_serial(self, nodes, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(-1000, 1000, size=nodes).tolist()
        reference = sum(values)  # serial reduction

        def program(comm):
            out = yield from comm.allreduce(values[comm.rank])
            return out

        result = run(nodes, program)
        assert result.returns == [reference] * nodes

    @settings(max_examples=25, deadline=None)
    @given(nodes=RANK_COUNTS, seed=st.integers(0, 10_000))
    def test_allreduce_max_matches_serial(self, nodes, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-1.0, 1.0, size=nodes).tolist()
        reference = max(values)

        def program(comm):
            out = yield from comm.allreduce(values[comm.rank], op=max)
            return out

        result = run(nodes, program)
        assert result.returns == [reference] * nodes

    @settings(max_examples=25, deadline=None)
    @given(
        nodes=RANK_COUNTS,
        root_pick=st.integers(0, 12),
        seed=st.integers(0, 10_000),
    )
    def test_bcast_delivers_root_value_everywhere(self, nodes, root_pick, seed):
        root = root_pick % nodes
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << 30, size=nodes).tolist()

        def program(comm):
            out = yield from comm.bcast(values[comm.rank], root=root)
            return out

        result = run(nodes, program)
        assert result.returns == [values[root]] * nodes

    @settings(max_examples=25, deadline=None)
    @given(
        nodes=RANK_COUNTS,
        root_pick=st.integers(0, 12),
        seed=st.integers(0, 10_000),
    )
    def test_gather_reassembles_rank_order(self, nodes, root_pick, seed):
        root = root_pick % nodes
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << 30, size=nodes).tolist()

        def program(comm):
            out = yield from comm.gather(values[comm.rank], root=root)
            return out

        result = run(nodes, program)
        for rank, got in enumerate(result.returns):
            assert got == (values if rank == root else None)

    @settings(max_examples=25, deadline=None)
    @given(nodes=RANK_COUNTS, seed=st.integers(0, 10_000))
    def test_allgather_matches_serial(self, nodes, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << 30, size=nodes).tolist()

        def program(comm):
            out = yield from comm.allgather(values[comm.rank])
            return out

        result = run(nodes, program)
        assert result.returns == [values] * nodes

    @settings(max_examples=20, deadline=None)
    @given(nodes=RANK_COUNTS, seed=st.integers(0, 10_000))
    def test_barrier_synchronises_unequal_workloads(self, nodes, seed):
        """No rank may pass the barrier before the slowest rank reaches
        it — the post-barrier clock equals the serial max of the
        per-rank compute times (plus communication)."""
        rng = np.random.default_rng(seed)
        flops = rng.integers(1, 50, size=nodes) * 1e4
        slowest = max(flops) / 1e6  # machine computes at 1e6 flop/s

        def program(comm):
            yield from comm.compute(flops=float(flops[comm.rank]))
            yield from comm.barrier()
            return None

        result = run(nodes, program)
        assert result.elapsed >= slowest - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(nodes=st.integers(2, 13), seed=st.integers(0, 10_000))
    def test_alltoall_transposes(self, nodes, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 1 << 20, size=(nodes, nodes)).tolist()

        def program(comm):
            out = yield from comm.alltoall(list(matrix[comm.rank]))
            return out

        result = run(nodes, program)
        # Serial reference: rank r ends with column r of the matrix.
        for r, got in enumerate(result.returns):
            assert got == [matrix[src][r] for src in range(nodes)]


class TestReservedTagSpace:
    """The explicit tag guard: user tags < MAX_USER_TAG, collectives at
    ``_COLL_TAG_BASE`` and group offsets in between are unreachable."""

    def test_reserved_spaces_are_disjoint(self):
        # Largest possible SubComm-translated user tag stays strictly
        # below the collective base.
        max_group_tag = 997 * SubComm._TAG_STRIDE + MAX_USER_TAG
        assert MAX_USER_TAG <= SubComm._TAG_STRIDE
        assert max_group_tag < _COLL_TAG_BASE

    @pytest.mark.parametrize(
        "tag", [MAX_USER_TAG, MAX_USER_TAG + 1, _COLL_TAG_BASE,
                _COLL_TAG_BASE + 3, -1]
    )
    def test_send_rejects_reserved_or_invalid_tag(self, tag):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag, "x")
            else:
                yield from comm.recv(0, ANY_TAG)

        with pytest.raises(ValueError, match="reserved|outside"):
            run(2, program)

    @pytest.mark.parametrize("tag", [MAX_USER_TAG, _COLL_TAG_BASE, -5])
    def test_recv_rejects_reserved_tag(self, tag):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, 7, "x")
            else:
                yield from comm.recv(0, tag)

        with pytest.raises(ValueError, match="reserved|outside"):
            run(2, program)

    @pytest.mark.parametrize("tag", [_COLL_TAG_BASE, MAX_USER_TAG])
    def test_irecv_and_iprobe_reject_reserved_tag(self, tag):
        def prog_irecv(comm):
            if comm.rank == 1:
                yield from comm.irecv(0, tag)

        def prog_iprobe(comm):
            if comm.rank == 1:
                yield from comm.iprobe(0, tag)

        for prog in (prog_irecv, prog_iprobe):
            with pytest.raises(ValueError, match="reserved|outside"):
                run(2, prog)

    def test_largest_legal_tag_works(self):
        tag = MAX_USER_TAG - 1

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag, "edge")
                return None
            payload, status = yield from comm.recv(0, tag)
            return (payload, status.tag)

        result = run(2, program)
        assert result.returns[1] == ("edge", tag)

    def test_user_traffic_never_matched_by_collective(self):
        """A user message with the maximal legal tag stays queued across
        a concurrent barrier + bcast and arrives intact afterwards —
        collectives must only consume their reserved-tag rounds."""
        tag = MAX_USER_TAG - 1

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(2, tag, {"payload": 123})
            yield from comm.barrier()
            word = yield from comm.bcast("coll" if comm.rank == 1 else None,
                                         root=1)
            if comm.rank == 2:
                data, status = yield from comm.recv(0, tag)
                return (word, data, status.tag)
            return (word, None, None)

        result = run(3, program)
        assert result.returns[2] == ("coll", {"payload": 123}, tag)

    @settings(max_examples=10, deadline=None)
    @given(nodes=st.integers(2, 9), seed=st.integers(0, 10_000))
    def test_subcomm_collectives_stay_isolated(self, nodes, seed):
        """Concurrent per-group allreduces over a random split must each
        match their own serial reference (group tag offsets work)."""
        rng = np.random.default_rng(seed)
        values = rng.integers(-100, 100, size=nodes).tolist()
        cut = int(rng.integers(1, nodes))
        groups = [list(range(cut)), list(range(cut, nodes))]
        if not groups[1]:
            groups = [groups[0]]
        refs = [sum(values[r] for r in g) for g in groups]

        def program(comm):
            mine = next(g for g in groups if comm.rank in g)
            sub = comm.split(mine)
            out = yield from sub.allreduce(values[comm.rank])
            return out

        result = run(nodes, program)
        for gi, g in enumerate(groups):
            for r in g:
                assert result.returns[r] == refs[gi]
