"""Conservative-PDES causality properties of the scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MachineSpec, NetworkSpec, NodeSpec, Simulator


def machine(nodes, latency=1e-4, bandwidth=1e7):
    return MachineSpec("t", nodes, NodeSpec(1e7),
                       NetworkSpec(latency, bandwidth))


class TestCausality:
    def test_no_message_received_before_sent(self):
        """Receive completion time >= send time + latency, always."""
        records = []

        def program(comm):
            if comm.rank == 0:
                for k in range(10):
                    yield from comm.compute(seconds=0.01)
                    t_send = yield from comm.now()
                    yield from comm.send(1, tag=k, payload=t_send, nbytes=64)
            else:
                for k in range(10):
                    t_send, _ = yield from comm.recv(0, tag=k)
                    t_recv = yield from comm.now()
                    records.append((t_send, t_recv))

        sim = Simulator(machine(2))
        sim.spawn_all(program)
        sim.run()
        for t_send, t_recv in records:
            assert t_recv >= t_send + 1e-4

    def test_barrier_is_causal_fence(self):
        """No rank's post-barrier clock precedes any rank's pre-barrier
        clock."""
        pre = {}
        post = {}

        def program(comm):
            yield from comm.compute(seconds=0.05 * (comm.rank + 1))
            pre[comm.rank] = yield from comm.now()
            yield from comm.barrier()
            post[comm.rank] = yield from comm.now()

        sim = Simulator(machine(5))
        sim.spawn_all(program)
        sim.run()
        assert min(post.values()) >= max(pre.values())

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    def test_random_traffic_is_deterministic_and_causal(self, nodes, seed):
        def run_once():
            order = []

            def program(comm):
                rng = np.random.default_rng(seed + comm.rank)
                sent = 0
                for _ in range(8):
                    yield from comm.compute(
                        seconds=float(rng.uniform(0, 1e-3))
                    )
                    dst = int(rng.integers(0, comm.size))
                    yield from comm.send(dst, tag=1, nbytes=32)
                    sent += 1
                total = yield from comm.allreduce(sent)
                # Drain everything addressed to us before exiting.
                got = 0
                deadline = 0
                while deadline < 10000:
                    msg = yield ("tryrecv", -1, 1)
                    if msg is None:
                        # All messages sent globally; if we've seen our
                        # share stop, else idle a bit.
                        yield from comm.elapse(1e-5)
                        deadline += 1
                        if deadline > 200:
                            break
                    else:
                        got += 1
                order.append(total)
                return got

            sim = Simulator(machine(nodes))
            sim.spawn_all(program)
            out = sim.run()
            return out.elapsed, sum(out.returns)

        e1, got1 = run_once()
        e2, got2 = run_once()
        assert e1 == e2
        assert got1 == got2
        assert got1 == 8 * nodes  # every message eventually delivered
