"""Fault injection, failure detection and failure/deadlock diagnostics."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.machine import (
    DeadlockError,
    FaultPlan,
    FaultSpec,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    RankFailure,
    Simulator,
    describe_tag,
)
from repro.machine.simmpi import Comm, _pickled_size


def make_machine(nodes=2, flops=1e6, latency=1e-4, bandwidth=1e6):
    return MachineSpec(
        "test", nodes, NodeSpec(flops), NetworkSpec(latency, bandwidth)
    )


class TestFaultSpec:
    def test_parse_step(self):
        f = FaultSpec.parse("rank=3@step=40")
        assert (f.rank, f.step, f.time, f.phase_index) == (3, 40, None, None)

    def test_parse_time(self):
        f = FaultSpec.parse("rank=2@t=0.5")
        assert (f.rank, f.time) == (2, 0.5)
        assert FaultSpec.parse("rank=2@time=0.5") == f

    def test_parse_phase(self):
        f = FaultSpec.parse("rank=1@phase=12")
        assert (f.rank, f.phase_index) == (1, 12)

    @pytest.mark.parametrize(
        "bad",
        ["rank=3", "3@step=4", "rank=3@when=4", "node=3@step=4", ""],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec(rank=0)
        with pytest.raises(ValueError):
            FaultSpec(rank=0, time=1.0, step=2)

    def test_describe_round_trips(self):
        for s in ("rank=3@step=40", "rank=2@t=0.5", "rank=1@phase=12"):
            assert FaultSpec.parse(s).describe() == s


class TestFaultPlan:
    def test_accepts_strings_and_specs(self):
        plan = FaultPlan(["rank=0@t=1.0", FaultSpec(rank=1, step=3)])
        assert len(plan) == 2 and plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan([])

    def test_earliest_trigger_wins(self):
        plan = FaultPlan.parse("rank=0@t=2.0", "rank=0@t=0.5", "rank=0@phase=7")
        assert plan.time_fault(0) == 0.5
        assert plan.phase_fault(0) == 7
        assert plan.time_fault(1) is None

    def test_step_vs_scheduler_split(self):
        plan = FaultPlan.parse("rank=0@step=4", "rank=1@t=1.0")
        assert [f.rank for f in plan.step_faults()] == [0]
        assert [f.rank for f in plan.scheduler_faults()] == [1]

    def test_poisson_is_seed_deterministic(self):
        a = FaultPlan.poisson(nranks=16, mtbf=5.0, horizon=10.0, seed=7)
        b = FaultPlan.poisson(nranks=16, mtbf=5.0, horizon=10.0, seed=7)
        c = FaultPlan.poisson(nranks=16, mtbf=5.0, horizon=10.0, seed=8)
        assert a.faults == b.faults
        assert a.faults != c.faults

    def test_poisson_max_faults_keeps_earliest(self):
        plan = FaultPlan.poisson(
            nranks=32, mtbf=1.0, horizon=100.0, seed=0, max_faults=3
        )
        assert len(plan) == 3


class TestSchedulerFaults:
    def test_time_fault_kills_rank(self):
        def program(comm):
            for _ in range(5):
                yield from comm.compute(flops=1e6)  # 1 s each

        sim = Simulator(
            make_machine(nodes=3),
            fault_plan=FaultPlan.parse("rank=1@t=2.0"),
        )
        sim.spawn_all(program)
        with pytest.raises(RankFailure) as exc:
            sim.run()
        assert exc.value.failed_ranks == (1,)
        # The fault fires at the first event boundary at/after t=2.0.
        assert exc.value.failed[1] == pytest.approx(2.0)

    def test_failure_message_reports_counts(self):
        def program(comm):
            yield from comm.compute(flops=1e6)
            if comm.rank == 0:
                yield from comm.recv(1, tag=5)  # never arrives: 1 is dead

        sim = Simulator(
            make_machine(nodes=3),
            fault_plan=FaultPlan.parse("rank=1@t=0.5"),
        )
        sim.spawn_all(program)
        with pytest.raises(RankFailure, match=r"1 of 3 ranks failed") as exc:
            sim.run()
        assert "1 blocked" in str(exc.value)
        assert "1 completed" in str(exc.value)
        assert exc.value.blocked == [(0, 1, 5)]
        assert exc.value.completed == [2]

    def test_all_ranks_dead_message(self):
        def program(comm):
            yield from comm.compute(flops=1e9)

        sim = Simulator(
            make_machine(nodes=2),
            fault_plan=FaultPlan.parse("rank=0@t=0.1", "rank=1@t=0.1"),
        )
        sim.spawn_all(program)
        with pytest.raises(RankFailure, match="all 2 ranks failed"):
            sim.run()

    def test_sends_to_dead_rank_are_black_holed(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(flops=1e6)
                yield from comm.send(1, tag=0, payload=None, nbytes=100)

        sim = Simulator(
            make_machine(nodes=2),
            fault_plan=FaultPlan.parse("rank=1@t=0.0"),
        )
        sim.spawn_all(program)
        out = sim.run(raise_on_failure=False)
        assert out.failed_ranks == (1,)
        assert sim.dropped_messages >= 1

    def test_phase_fault_fires_at_kth_barrier(self):
        def program(comm):
            for k in range(5):
                yield from comm.set_phase(f"phase{k}")
                yield from comm.compute(flops=1e6)

        sim = Simulator(
            make_machine(nodes=1),
            fault_plan=FaultPlan([FaultSpec(rank=0, phase_index=2)]),
        )
        sim.spawn_all(program)
        with pytest.raises(RankFailure) as exc:
            sim.run()
        # Two phases (2 x 1 s of compute) completed before the kill.
        assert exc.value.failed[0] == pytest.approx(2.0)

    def test_raise_on_failure_false_returns_survivor_results(self):
        def program(comm):
            yield from comm.compute(flops=2e6)
            return comm.rank * 10

        sim = Simulator(
            make_machine(nodes=3),
            fault_plan=FaultPlan.parse("rank=2@t=1.0"),
        )
        sim.spawn_all(program)
        out = sim.run(raise_on_failure=False)
        assert out.returns == [0, 10, None]
        assert out.failed_ranks == (2,)

    def test_blocked_survivors_raise_even_without_raise_on_failure(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=0)

        sim = Simulator(
            make_machine(nodes=2),
            fault_plan=FaultPlan.parse("rank=1@t=0.0"),
        )
        sim.spawn_all(program)
        with pytest.raises(RankFailure):
            sim.run(raise_on_failure=False)

    def test_no_fault_plan_is_unperturbed(self):
        def program(comm):
            yield from comm.compute(flops=1e6)
            return "ok"

        plain = Simulator(make_machine(nodes=2))
        plain.spawn_all(program)
        r0 = plain.run()
        empty = Simulator(make_machine(nodes=2), fault_plan=FaultPlan([]))
        empty.spawn_all(program)
        r1 = empty.run()
        assert r0.elapsed == r1.elapsed
        assert r0.returns == r1.returns == ["ok", "ok"]


class TestDeadlockDiagnostics:
    def test_deadlock_message_names_ranks_and_tags(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=5)

        sim = Simulator(make_machine(nodes=2))
        sim.spawn_all(program)
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        msg = str(exc.value)
        assert "deadlock: 1 of 2 ranks blocked forever" in msg
        assert "(1 completed normally)" in msg
        assert "rank 0 blocked on recv(src=1, tag=user:5)" in msg

    def test_deadlock_message_lists_unmatched_mailbox(self):
        def program(comm):
            if comm.rank == 1:
                yield from comm.send(0, tag=7, payload=None, nbytes=8)
            if comm.rank == 0:
                yield from comm.recv(1, tag=9)  # wrong tag: never matches

        sim = Simulator(make_machine(nodes=2))
        sim.spawn_all(program)
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        msg = str(exc.value)
        assert "mailbox holds 1 unmatched" in msg
        assert "tag=user:7" in msg

    def test_fault_is_rank_failure_not_deadlock(self):
        """A rank blocked on a dead peer is a RankFailure, never a
        (misleading) DeadlockError."""

        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=0)

        sim = Simulator(
            make_machine(nodes=2),
            fault_plan=FaultPlan.parse("rank=1@t=0.0"),
        )
        sim.spawn_all(program)
        with pytest.raises(RankFailure):
            sim.run()


class TestDescribeTag:
    def test_user_tags(self):
        assert describe_tag(5) == "user:5"
        assert describe_tag(201) == "user:201"

    def test_any_tag(self):
        from repro.machine import ANY_TAG

        assert describe_tag(ANY_TAG) == "ANY"

    def test_collective_tags_named(self):
        from repro.machine.simmpi import (
            _TAG_BARRIER,
            _TAG_BCAST,
            _TAG_HEARTBEAT,
        )

        assert "barrier" in describe_tag(_TAG_BARRIER)
        assert "bcast" in describe_tag(_TAG_BCAST)
        assert "heartbeat" in describe_tag(_TAG_HEARTBEAT)


class TestHeartbeatDetection:
    def test_no_failures_detects_empty(self):
        def program(comm):
            agreed = yield from comm.detect_failures()
            return agreed

        sim = Simulator(make_machine(nodes=4))
        sim.spawn_all(program)
        out = sim.run()
        assert out.returns == [()] * 4

    def test_survivors_agree_on_dead_set(self):
        def program(comm):
            agreed = yield from comm.detect_failures()
            return agreed

        sim = Simulator(
            make_machine(nodes=5),
            fault_plan=FaultPlan.parse("rank=1@t=0.0", "rank=3@t=0.0"),
        )
        sim.spawn_all(program)
        out = sim.run(raise_on_failure=False)
        for r in (0, 2, 4):
            assert out.returns[r] == (1, 3)

    def test_detection_is_deterministic(self):
        def program(comm):
            return (yield from comm.detect_failures())

        elapsed = []
        for _ in range(2):
            sim = Simulator(
                make_machine(nodes=6),
                fault_plan=FaultPlan.parse("rank=2@t=0.0"),
            )
            sim.spawn_all(program)
            out = sim.run(raise_on_failure=False)
            elapsed.append(out.elapsed)
        assert elapsed[0] == elapsed[1]

    def test_timeout_is_machine_derived_and_positive(self):
        comm = Comm(0, 8, make_machine(nodes=8))
        assert comm.heartbeat_timeout() > 0


@dataclass(frozen=True)
class _FrozenPoint:
    x: float
    y: float


@dataclass
class _ListHolder:
    values: list = field(default_factory=list)


class TestPayloadSizes:
    """Satellite: the estimator measures objects instead of guessing 64."""

    def test_explicit_nbytes_wins(self):
        assert Comm._size_of(np.zeros(100), 24) == 24

    def test_ndarray(self):
        assert Comm._size_of(np.zeros(10, dtype=np.float64), None) == 96

    def test_none_and_scalars(self):
        assert Comm._size_of(None, None) == 8
        assert Comm._size_of(3, None) == 16
        assert Comm._size_of(2.5, None) == 16

    def test_bytes(self):
        assert Comm._size_of(b"abcd", None) == 20

    def test_tuple_recurses(self):
        assert Comm._size_of((1, 2.5), None) == 48  # 16 + 16 + 16

    def test_dataclass_is_pickle_measured(self):
        import pickle

        obj = _FrozenPoint(1.0, 2.0)
        expect = 16 + len(pickle.dumps(obj, protocol=4))
        assert Comm._size_of(obj, None) == expect
        assert expect != 64  # no longer the old blind constant

    def test_unhashable_dataclass_measured_directly(self):
        obj = _ListHolder(values=[1, 2, 3])
        assert Comm._size_of(obj, None) == _pickled_size(obj)

    def test_hashable_payloads_memoized(self):
        from repro.machine.simmpi import _pickled_size_memo

        obj = _FrozenPoint(4.0, 5.0)
        _pickled_size_memo.cache_clear()
        first = Comm._size_of(obj, None)
        again = Comm._size_of(obj, None)
        assert first == again
        assert _pickled_size_memo.cache_info().hits >= 1

    def test_unpicklable_falls_back_to_constant(self):
        assert Comm._size_of(lambda: None, None) == 64
