"""Unit tests for SimMPI internals: size estimation, requests."""

import numpy as np
import pytest

from repro.machine.simmpi import Comm, Request
from repro.machine.spec import sp2


class TestSizeOf:
    def test_explicit_wins(self):
        assert Comm._size_of(np.zeros(100), 7) == 7

    def test_none_payload(self):
        assert Comm._size_of(None, None) == 8

    def test_numpy_payload(self):
        assert Comm._size_of(np.zeros(100), None) == 800 + 16

    def test_bytes_payload(self):
        assert Comm._size_of(b"abc", None) == 19

    def test_scalars(self):
        assert Comm._size_of(3, None) == 16
        assert Comm._size_of(2.5, None) == 16
        assert Comm._size_of(True, None) == 16

    def test_containers_recurse(self):
        n = Comm._size_of([np.zeros(10), np.zeros(10)], None)
        assert n == 16 + 2 * (80 + 16)
        d = Comm._size_of({"k": np.zeros(10)}, None)
        assert d > 80

    def test_unknown_object_default(self):
        class Thing:
            pass

        assert Comm._size_of(Thing(), None) == 64


class TestRequest:
    def test_send_request_born_done(self):
        r = Request("send")
        assert r.done

    def test_recv_request_starts_pending(self):
        r = Request("recv", src=3, tag=7)
        assert not r.done
        assert (r.src, r.tag) == (3, 7)


class TestCommConstruction:
    def test_fields(self):
        m = sp2(nodes=4)
        c = Comm(2, 4, m)
        assert c.rank == 2 and c.size == 4
        assert c.machine is m
