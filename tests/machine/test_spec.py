"""Tests for machine specifications."""

import pytest

from repro.machine import MachineSpec, NetworkSpec, NodeSpec, cray_ymp, sp, sp2


class TestNodeSpec:
    def test_effective_flops_plain(self):
        node = NodeSpec(flops=30e6)
        assert node.effective_flops() == 30e6
        assert node.effective_flops(points_per_node=100) == 30e6

    def test_cache_boost_applies_below_threshold(self):
        node = NodeSpec(flops=30e6, cache_boost=1.2, cache_points=6000)
        assert node.effective_flops(points_per_node=5000) == pytest.approx(36e6)

    def test_cache_boost_not_applied_at_or_above_threshold(self):
        node = NodeSpec(flops=30e6, cache_boost=1.2, cache_points=6000)
        assert node.effective_flops(points_per_node=6000) == 30e6
        assert node.effective_flops(points_per_node=60000) == 30e6

    def test_no_boost_when_unknown_working_set(self):
        node = NodeSpec(flops=30e6, cache_boost=1.2, cache_points=6000)
        assert node.effective_flops(None) == 30e6


class TestNetworkSpec:
    def test_injection_time(self):
        net = NetworkSpec(latency=50e-6, bandwidth=40e6, overhead=5e-6)
        assert net.injection_time(40) == pytest.approx(5e-6 + 40 / 40e6)

    def test_transfer_includes_latency(self):
        net = NetworkSpec(latency=50e-6, bandwidth=40e6, overhead=5e-6)
        assert net.transfer_time(0) == pytest.approx(55e-6)

    def test_bandwidth_dominates_large_messages(self):
        net = NetworkSpec(latency=50e-6, bandwidth=40e6)
        one_mb = net.transfer_time(1_000_000)
        assert one_mb == pytest.approx(1_000_000 / 40e6, rel=0.01)


class TestMachineSpec:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            MachineSpec("m", 0, NodeSpec(1e6), NetworkSpec(1e-6, 1e6))

    def test_with_nodes_preserves_everything_else(self):
        m = sp2(nodes=4).with_nodes(16)
        assert m.nodes == 16
        assert m.name == "IBM SP2"
        assert m.node.flops == sp2().node.flops

    def test_compute_time(self):
        m = sp2(nodes=1)
        assert m.compute_time(30e6) == pytest.approx(1.0)


class TestPresets:
    def test_sp_is_faster_than_sp2(self):
        """Paper section 4.0: the SP (P2SC, 135 MHz, 110 MB/s) outclasses
        the SP2 (POWER2, 66.7 MHz, 40 MB/s) in both compute and network."""
        assert sp().node.flops > sp2().node.flops
        assert sp().network.bandwidth > sp2().network.bandwidth
        assert sp().network.latency < sp2().network.latency

    def test_ymp_is_single_node(self):
        assert cray_ymp().nodes == 1

    def test_ymp_node_comparable_to_sp_node(self):
        """Table 6: one SP node is ~1.0-1.2 YMP units, one SP2 node ~0.5-0.7."""
        ymp_rate = cray_ymp().node.flops
        assert 0.9 < sp().node.flops / ymp_rate < 1.3
        assert 0.4 < sp2().node.flops / ymp_rate < 0.8
