"""Direct tests for per-rank and machine-wide metrics."""

import pytest

from repro.machine.metrics import MachineMetrics, RankMetrics


def rank(r, phases):
    m = RankMetrics(r)
    for phase, kind, dt in phases:
        m.add_time(phase, kind, dt)
    m.final_clock = m.total_time()
    return m


class TestRankMetrics:
    def test_phase_time_sums_kinds(self):
        m = rank(0, [("a", "compute", 1.0), ("a", "wait", 0.5),
                     ("b", "comm", 0.25)])
        assert m.phase_time("a") == pytest.approx(1.5)
        assert m.total_time() == pytest.approx(1.75)

    def test_negative_increment_rejected(self):
        m = RankMetrics(0)
        with pytest.raises(ValueError):
            m.add_time("a", "compute", -1.0)

    def test_flops_accounting(self):
        m = RankMetrics(0)
        m.add_flops("a", 100.0)
        m.add_flops("b", 50.0)
        assert m.total_flops() == 150.0


class TestMachineMetrics:
    def test_elapsed_is_max_clock(self):
        mm = MachineMetrics([rank(0, [("a", "compute", 1.0)]),
                             rank(1, [("a", "compute", 3.0)])])
        assert mm.elapsed == 3.0

    def test_imbalance(self):
        mm = MachineMetrics([rank(0, [("a", "compute", 1.0)]),
                             rank(1, [("a", "compute", 3.0)])])
        assert mm.imbalance("a") == pytest.approx(3.0 / 2.0)

    def test_perfect_balance_is_one(self):
        mm = MachineMetrics([rank(0, [("a", "compute", 2.0)]),
                             rank(1, [("a", "compute", 2.0)])])
        assert mm.imbalance("a") == pytest.approx(1.0)

    def test_phase_fraction(self):
        mm = MachineMetrics([
            rank(0, [("flow", "compute", 3.0), ("dcf", "compute", 1.0)]),
            rank(1, [("flow", "compute", 3.0), ("dcf", "compute", 1.0)]),
        ])
        assert mm.phase_fraction("dcf") == pytest.approx(0.25)

    def test_mflops_per_node(self):
        a = rank(0, [("x", "compute", 2.0)])
        a.add_flops("x", 10e6)
        b = rank(1, [("x", "compute", 2.0)])
        b.add_flops("x", 30e6)
        mm = MachineMetrics([a, b])
        # 40 Mflop over 2 s on 2 nodes = 10 Mflop/s/node.
        assert mm.mflops_per_node() == pytest.approx(10.0)

    def test_summary_structure(self):
        mm = MachineMetrics([rank(0, [("a", "compute", 1.0)])])
        s = mm.summary()
        assert s["nranks"] == 1
        assert "a" in s["phases"]
        assert s["phases"]["a"]["fraction"] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MachineMetrics([])

    def test_phases_preserve_order(self):
        mm = MachineMetrics([
            rank(0, [("z", "compute", 1.0), ("a", "compute", 1.0)]),
        ])
        assert mm.phases() == ["z", "a"]
