"""Tests for the adaptive off-body Cartesian scheme (section 5)."""

import numpy as np
import pytest

from repro.adapt import (
    AdaptiveSystem,
    Brick,
    cartesian_connectivity,
    gradient_flags,
    initial_off_body_system,
    proximity_flags,
    refine_bricks,
)
from repro.adapt.refine import BrickSystem, coarsen_bricks
from repro.grids.bbox import AABB


def domain2d():
    return AABB((0.0, 0.0), (4.0, 4.0))


class TestBrick:
    def test_children_cover_parent(self):
        b = Brick(0, (1, 2))
        kids = b.children()
        assert len(kids) == 4
        assert all(k.level == 1 for k in kids)
        assert all(k.parent() == b for k in kids)

    def test_3d_children(self):
        assert len(Brick(0, (0, 0, 0)).children()) == 8

    def test_level0_has_no_parent(self):
        with pytest.raises(ValueError):
            Brick(0, (0, 0)).parent()

    def test_siblings(self):
        b = Brick(1, (0, 0))
        assert len(b.siblings()) == 4
        assert b in b.siblings()


class TestBrickSystem:
    def test_initial_tiling_covers_domain(self):
        system, bricks = initial_off_body_system(domain2d(), 1.0)
        assert len(bricks) == 16
        union = system.box(bricks[0])
        for b in bricks[1:]:
            union = union.union(system.box(b))
        assert union == domain2d()

    def test_spacing_halves_per_level(self):
        system, _ = initial_off_body_system(domain2d(), 1.0,
                                            points_per_brick=5)
        assert system.spacing(1) == pytest.approx(system.spacing(0) / 2)

    def test_brick_grid_has_seven_params_3d(self):
        system, bricks = initial_off_body_system(
            AABB((0, 0, 0), (2, 2, 2)), 1.0
        )
        g = system.grid(bricks[0])
        assert g.nparams == 7

    def test_child_boxes_tile_parent(self):
        system, _ = initial_off_body_system(domain2d(), 1.0)
        b = Brick(0, (2, 3))
        parent_box = system.box(b)
        total = sum(system.box(k).volume() for k in b.children())
        assert total == pytest.approx(parent_box.volume())

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            initial_off_body_system(domain2d(), 0.0)


class TestRefineCoarsen:
    def test_refine_replaces_with_children(self):
        system, bricks = initial_off_body_system(domain2d(), 1.0)
        target = bricks[0]
        out = refine_bricks(bricks, {target: True}, max_level=3)
        assert len(out) == len(bricks) - 1 + 4
        assert target not in out

    def test_max_level_respected(self):
        system, bricks = initial_off_body_system(domain2d(), 1.0)
        out = refine_bricks(bricks, {bricks[0]: True}, max_level=0)
        assert out == sorted(bricks, key=lambda b: (b.level, b.ijk))

    def test_coarsen_merges_complete_siblings(self):
        b = Brick(0, (0, 0))
        leaves = b.children()
        out = coarsen_bricks(leaves, {})
        assert out == [b]

    def test_coarsen_keeps_flagged(self):
        b = Brick(0, (0, 0))
        leaves = b.children()
        out = coarsen_bricks(leaves, {leaves[0]: True})
        assert b not in out
        assert len(out) == 4

    def test_coarsen_requires_all_siblings_present(self):
        b = Brick(0, (0, 0))
        leaves = b.children()[:3]  # one missing
        out = coarsen_bricks(leaves, {})
        assert b not in out


class TestCriteria:
    def test_proximity_flags_near_body(self):
        system, bricks = initial_off_body_system(domain2d(), 1.0)
        body = AABB((1.1, 1.1), (1.4, 1.4))
        flags = proximity_flags(system, bricks, [body])
        assert flags[Brick(0, (1, 1))]
        assert not flags[Brick(0, (3, 3))]

    def test_proximity_margin_extends(self):
        system, bricks = initial_off_body_system(domain2d(), 1.0)
        body = AABB((1.1, 1.1), (1.4, 1.4))
        flags = proximity_flags(system, bricks, [body], margin=1.0)
        assert flags[Brick(0, (2, 2))]

    def test_gradient_flags(self):
        system, bricks = initial_off_body_system(domain2d(), 1.0)

        def field(pts):
            # Sharp feature near x = 2.5.
            return np.tanh(20 * (pts[:, 0] - 2.5))

        flags = gradient_flags(system, bricks, field, threshold=0.5)
        assert flags[Brick(0, (2, 0))]
        assert not flags[Brick(0, (0, 0))]

    def test_gradient_threshold_validation(self):
        system, bricks = initial_off_body_system(domain2d(), 1.0)
        with pytest.raises(ValueError):
            gradient_flags(system, bricks, lambda p: p[:, 0], threshold=0.0)


class TestAdaptiveSystem:
    def test_adapt_refines_toward_body(self):
        sys = AdaptiveSystem(domain2d(), 1.0, max_level=2,
                             points_per_brick=5)
        n0 = len(sys.bricks)
        body = AABB((1.2, 1.2), (1.3, 1.3))
        stats = sys.adapt([body])
        assert stats.nbricks > n0
        assert stats.max_level >= 1

    def test_adapt_follows_moving_body(self):
        """Paper: 'automatically repartitioned during adaption in
        response to body motion' — refinement follows the body and
        coarsens behind it."""
        sys = AdaptiveSystem(domain2d(), 1.0, max_level=2,
                             points_per_brick=5)
        for _ in range(3):
            sys.adapt([AABB((0.4, 0.4), (0.6, 0.6))])
        fine_near_origin = [
            b for b in sys.bricks
            if b.level > 0 and sys.system.box(b).lo[0] < 1.0
        ]
        assert fine_near_origin
        # Move the body to the far corner and adapt until settled.
        for _ in range(4):
            sys.adapt([AABB((3.4, 3.4), (3.6, 3.6))])
        fine_near_origin = [
            b for b in sys.bricks
            if b.level > 1 and sys.system.box(b).hi[0] < 1.0
        ]
        fine_near_corner = [
            b for b in sys.bricks
            if b.level > 0 and sys.system.box(b).lo[0] > 2.9
        ]
        assert fine_near_corner
        assert not fine_near_origin

    def test_grouping_balances_work(self):
        sys = AdaptiveSystem(domain2d(), 1.0, max_level=2,
                             points_per_brick=5)
        sys.adapt([AABB((1.2, 1.2), (1.3, 1.3))])
        grouping = sys.group(4)
        assert grouping.ngroups == 4
        assert grouping.imbalance() < 2.0

    def test_parameters_stored_tiny(self):
        """The storage argument of section 5: the whole off-body system
        is described by a handful of scalars per brick."""
        sys = AdaptiveSystem(domain2d(), 1.0, max_level=1,
                             points_per_brick=9)
        sys.adapt([AABB((1.2, 1.2), (1.3, 1.3))])
        assert sys.parameters_stored() == len(sys.bricks) * 5  # 2-D: 5
        assert sys.parameters_stored() < sys.total_points()

    def test_history_recorded(self):
        sys = AdaptiveSystem(domain2d(), 1.0, max_level=1,
                             points_per_brick=5)
        sys.adapt([AABB((0.2, 0.2), (0.4, 0.4))])
        sys.adapt([AABB((0.2, 0.2), (0.4, 0.4))])
        assert len(sys.history) == 2

    def test_invalid_max_level(self):
        with pytest.raises(ValueError):
            AdaptiveSystem(domain2d(), 1.0, max_level=-1)


class TestCartesianConnectivity:
    def test_no_searches_needed(self):
        """Section 5: donors in Cartesian components need no stencil
        walk — every resolved fringe point is a search avoided."""
        sys = AdaptiveSystem(domain2d(), 1.0, max_level=2,
                             points_per_brick=5)
        sys.adapt([AABB((1.2, 1.2), (1.3, 1.3))])
        out = cartesian_connectivity(sys.system, sys.bricks)
        assert out["fringe_points"] > 0
        assert out["donors_resolved"] > 0
        assert out["searches_avoided"] == out["donors_resolved"]

    def test_interior_fringe_fully_resolved(self):
        """Bricks away from the domain boundary find all donors among
        their neighbours."""
        system, bricks = initial_off_body_system(domain2d(), 1.0,
                                                 points_per_brick=5)
        out = cartesian_connectivity(system, bricks)
        # Domain-boundary faces have no donors; interior shares do.
        assert 0 < out["donors_resolved"] < out["fringe_points"]
