"""Focused tests for the refinement criteria."""

import numpy as np
import pytest

from repro.adapt import gradient_flags, initial_off_body_system, proximity_flags
from repro.adapt.refine import Brick
from repro.grids.bbox import AABB


@pytest.fixture
def system_bricks():
    return initial_off_body_system(AABB((0.0, 0.0), (4.0, 4.0)), 1.0)


class TestProximity:
    def test_multiple_bodies_union(self, system_bricks):
        system, bricks = system_bricks
        flags = proximity_flags(
            system, bricks,
            [AABB((0.2, 0.2), (0.4, 0.4)), AABB((3.2, 3.2), (3.4, 3.4))],
        )
        assert flags[Brick(0, (0, 0))]
        assert flags[Brick(0, (3, 3))]
        assert not flags[Brick(0, (1, 3))]

    def test_no_bodies_no_flags(self, system_bricks):
        system, bricks = system_bricks
        flags = proximity_flags(system, bricks, [])
        assert not any(flags.values())

    def test_touching_box_counts(self, system_bricks):
        """A body exactly on a brick face flags both neighbours."""
        system, bricks = system_bricks
        flags = proximity_flags(
            system, bricks, [AABB((1.0, 0.5), (1.0, 0.6))]
        )
        assert flags[Brick(0, (0, 0))]
        assert flags[Brick(0, (1, 0))]


class TestGradient:
    def test_linear_field_uniform_indicator(self, system_bricks):
        """A linear field has constant slope: either all bricks flag or
        none, depending only on the threshold."""
        system, bricks = system_bricks

        def field(pts):
            return 2.0 * pts[:, 0]

        low = gradient_flags(system, bricks, field, threshold=1.0)
        high = gradient_flags(system, bricks, field, threshold=10.0)
        assert all(low.values())
        assert not any(high.values())

    def test_sampling_resolution(self, system_bricks):
        """A feature thinner than the sample spacing can be missed at 3
        samples but caught at 9 — documents the sampling tradeoff."""
        system, bricks = system_bricks

        def spike(pts):
            return np.exp(-((pts[:, 0] - 0.27) ** 2) / 1e-2)

        coarse = gradient_flags(system, bricks, spike, threshold=0.5,
                                samples_per_edge=3)
        fine = gradient_flags(system, bricks, spike, threshold=0.5,
                              samples_per_edge=9)
        target = Brick(0, (0, 0))
        assert fine[target]
        assert sum(fine.values()) >= sum(coarse.values())
