"""Tests for the coarse-grain adaptive parallel driver (section 5)."""

import numpy as np
import pytest

from repro.adapt import AdaptiveDriver, AdaptiveSystem
from repro.grids.bbox import AABB
from repro.machine import sp2


def make_system(max_level=1, ppb=5):
    sys = AdaptiveSystem(
        AABB((0.0, 0.0, 0.0), (4.0, 2.0, 2.0)),
        brick_extent=1.0,
        max_level=max_level,
        points_per_brick=ppb,
    )
    sys.adapt([AABB((0.4, 0.4, 0.4), (0.8, 0.8, 0.8))], margin=0.1)
    return sys


def bodies_at(step):
    dx = 0.2 * step
    return [AABB((0.4 + dx, 0.4, 0.4), (0.8 + dx, 0.8, 0.8))]


class TestAdaptiveDriver:
    def test_basic_run(self):
        drv = AdaptiveDriver(make_system(), sp2(nodes=4))
        r = drv.run(nsteps=4, body_boxes_fn=bodies_at, adapt_interval=2)
        assert r.elapsed > 0
        assert r.nsteps == 4
        assert r.adapt_cycles == 1
        assert r.final_bricks > 0

    def test_connectivity_is_cheap(self):
        """Section 5: the connectivity solution costs very little
        because no donor searches are needed."""
        drv = AdaptiveDriver(make_system(), sp2(nodes=4))
        r = drv.run(nsteps=4, body_boxes_fn=bodies_at, adapt_interval=10)
        assert r.phase_fraction("connect") < 0.25
        assert r.phase_fraction("flow") > 0.5

    def test_scales_with_nodes(self):
        """'the approach should scale well': more nodes, less time."""
        times = {}
        for nodes in (2, 8):
            drv = AdaptiveDriver(make_system(max_level=2), sp2(nodes=nodes))
            r = drv.run(nsteps=3, body_boxes_fn=bodies_at, adapt_interval=10)
            times[nodes] = r.time_per_step
        assert times[8] < times[2]
        assert times[2] / times[8] > 2.0

    def test_adapt_cycle_follows_body(self):
        sys = make_system(max_level=1)
        drv = AdaptiveDriver(sys, sp2(nodes=2))
        n0 = len(sys.bricks)
        drv.run(nsteps=9, body_boxes_fn=bodies_at, adapt_interval=3)
        # Bricks changed as the body moved (refine ahead/coarsen behind).
        assert sys.history  # adapt cycles recorded

    def test_deterministic(self):
        def run_once():
            drv = AdaptiveDriver(make_system(), sp2(nodes=4))
            return drv.run(
                nsteps=4, body_boxes_fn=bodies_at, adapt_interval=2
            ).elapsed

        assert run_once() == run_once()

    def test_invalid_steps(self):
        drv = AdaptiveDriver(make_system(), sp2(nodes=2))
        with pytest.raises(ValueError):
            drv.run(nsteps=0, body_boxes_fn=bodies_at)
