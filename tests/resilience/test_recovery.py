"""Elastic recovery: detection, exclude_ranks, faulted runs, resume."""

import json

import numpy as np
import pytest

from repro.cases.airfoil import airfoil_case
from repro.core.overflow_d1 import OverflowD1, resume_run
from repro.machine.faults import FaultPlan, RankFailure
from repro.machine.spec import sp2
from repro.obs import SpanTracer
from repro.partition.assignment import build_partition
from repro.partition.static_lb import static_balance
from repro.resilience import (
    CheckpointStore,
    RecoveryPolicy,
    RecoveryRecord,
    run_failure_detection,
)


def small_case(nsteps=12, nodes=6, scale=0.3):
    return airfoil_case(machine=sp2(nodes=nodes), scale=scale, nsteps=nsteps)


def summaries(run) -> str:
    """Canonical JSON of all per-epoch rollups (byte-comparable)."""
    return json.dumps(
        [e.rollup.summary() for e in run.epochs], sort_keys=True
    )


class TestRecoveryPolicyAndRecord:
    def test_policy_defaults(self):
        p = RecoveryPolicy()
        assert p.restore_latency > 0
        assert p.restore_bandwidth > 0
        assert p.max_recoveries >= 1

    def test_record_downtime_and_describe(self):
        rec = RecoveryRecord(
            failed_ranks=(3,),
            nprocs_before=12,
            nprocs_after=11,
            step_failed=40,
            step_restored=25,
            t_failure=1.5,
            t_detect=0.01,
            t_restore=0.02,
            t_repartition=0.005,
            checkpoint_bytes=1000,
        )
        assert rec.downtime == pytest.approx(0.035)
        text = rec.describe()
        assert "rank(s) 3" in text and "12->11" in text


class TestFailureDetection:
    def test_survivors_agree_and_time_elapses(self):
        machine = sp2(nodes=8)
        dead, elapsed = run_failure_detection(machine, [2, 5])
        assert dead == (2, 5)
        assert elapsed > 0

    def test_detection_lands_in_trace(self):
        tracer = SpanTracer()
        run_failure_detection(sp2(nodes=4), [1], tracer=tracer)
        phases = {p for (_, _, p) in tracer.phase_marks}
        assert "failure-detection" in phases

    def test_deterministic(self):
        a = run_failure_detection(sp2(nodes=8), [3])
        b = run_failure_detection(sp2(nodes=8), [3])
        assert a == b


class TestExcludeRanks:
    def test_static_balance_over_survivors(self):
        full = static_balance([1000, 1000], 8)
        shrunk = static_balance([1000, 1000], 8, exclude_ranks=[3, 6])
        assert full.nprocs == 8
        assert shrunk.nprocs == 6

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="exclude_ranks out of range"):
            static_balance([100], 4, exclude_ranks=[4])

    def test_too_few_survivors_rejected(self):
        with pytest.raises(ValueError, match="cannot cover"):
            static_balance([10, 10, 10], 3, exclude_ranks=[0])

    def test_build_partition_renumbers_contiguously(self):
        dims = [(20, 20), (16, 16)]
        part = build_partition(dims, 6, exclude_ranks=[1, 4])
        assert part.nprocs == 4
        assert [sd.rank for sd in part.subdomains] == [0, 1, 2, 3]

    def test_exclude_conflicts_with_explicit_counts(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            build_partition(
                [(10, 10)], 4, procs_per_grid=[4], exclude_ranks=[0]
            )


class TestCheckpointingBitIdentity:
    """Satellite: checkpointing must not perturb a fault-free run."""

    def test_checkpointed_run_identical_to_plain(self):
        cfg = small_case()
        plain = OverflowD1(cfg).run()
        ck = OverflowD1(cfg, checkpoint_every=5).run()
        assert summaries(plain) == summaries(ck)
        assert plain.elapsed == ck.elapsed
        assert len(plain.epochs) == len(ck.epochs)
        for a, b in zip(plain.epochs, ck.epochs):
            assert np.array_equal(a.igbp.per_step(), b.igbp.per_step())
            assert a.search_steps_total == b.search_steps_total
            assert a.orphans_total == b.orphans_total
        assert ck.recoveries == []
        assert ck.wall_elapsed == plain.wall_elapsed == plain.elapsed

    def test_checkpoint_interval_choice_is_immaterial(self):
        cfg = small_case()
        a = OverflowD1(cfg, checkpoint_every=3).run()
        b = OverflowD1(cfg, checkpoint_every=7).run()
        assert summaries(a) == summaries(b)
        assert a.elapsed == b.elapsed

    def test_disk_checkpoint_equals_in_memory(self, tmp_path):
        cfg = small_case()
        store = CheckpointStore(tmp_path, keep=10)
        driver = OverflowD1(cfg, checkpoint_every=5, checkpoint_store=store)
        driver.run()
        assert store.paths(), "expected periodic checkpoints on disk"
        on_disk = store.latest()
        assert on_disk.to_bytes() == driver._last_ckpt.to_bytes()

    def test_resume_from_disk_matches_uninterrupted(self, tmp_path):
        cfg = small_case()
        full = OverflowD1(cfg).run()
        store = CheckpointStore(tmp_path)
        OverflowD1(cfg, checkpoint_every=5, checkpoint_store=store).run()
        resumed = resume_run(store.latest())
        assert summaries(resumed) == summaries(full)
        assert resumed.elapsed == full.elapsed
        for a, b in zip(resumed.epochs, full.epochs):
            assert np.array_equal(a.igbp.per_step(), b.igbp.per_step())


class TestElasticRecovery:
    def test_faulted_run_completes_with_one_recovery(self):
        cfg = small_case(nsteps=12)
        run = OverflowD1(
            cfg, fault_plan="rank=2@step=6", checkpoint_every=4
        ).run()
        assert len(run.recoveries) == 1
        rec = run.recoveries[0]
        assert rec.nprocs_before == 6
        assert rec.nprocs_after == 5
        assert rec.failed_ranks == (2,)
        assert rec.downtime > 0
        # All measured steps were completed (some twice, after rollback).
        assert sum(e.nsteps for e in run.epochs) == cfg.nsteps
        assert run.epochs[-1].partition.nprocs == 5
        # Lost work + recovery overhead makes wall time exceed the sum
        # of committed epochs.
        assert run.wall_elapsed > run.elapsed
        assert run.downtime == pytest.approx(rec.downtime)

    def test_faulted_run_metrics_deterministic(self):
        outs = []
        for _ in range(3):
            run = OverflowD1(
                small_case(nsteps=12),
                fault_plan="rank=2@step=6",
                checkpoint_every=4,
            ).run()
            outs.append(
                (summaries(run), run.wall_elapsed, tuple(run.recoveries))
            )
        assert outs[0] == outs[1] == outs[2]

    def test_recovery_without_checkpointing_uses_step0_restore(self):
        # A fault plan alone is enough: the driver takes an implicit
        # step-0 snapshot, so recovery rolls back to the beginning.
        run = OverflowD1(small_case(nsteps=8), fault_plan="rank=1@step=4").run()
        assert len(run.recoveries) == 1
        assert run.recoveries[0].step_restored == 0
        assert sum(e.nsteps for e in run.epochs) == 8

    def test_time_triggered_fault_recovers(self):
        run = OverflowD1(
            small_case(nsteps=8), fault_plan="rank=0@t=0.2", checkpoint_every=3
        ).run()
        assert len(run.recoveries) == 1
        assert sum(e.nsteps for e in run.epochs) == 8

    def test_trace_contains_recovery_spans_with_continuity(self):
        tracer = SpanTracer()
        run = OverflowD1(
            small_case(nsteps=12),
            tracer=tracer,
            fault_plan="rank=2@step=6",
            checkpoint_every=4,
        ).run()
        phases = {p for (_, _, p) in tracer.phase_marks}
        assert {"failure-detection", "restore", "repartition"} <= phases
        marks = {m[1] for m in tracer.marks}
        assert {"rank_failure", "recovery", "recovered", "checkpoint"} <= marks
        # Epoch-offset continuity: the traced timeline ends exactly at
        # the driver's wall clock (rollback + downtime included).
        assert tracer.t_end == pytest.approx(run.wall_elapsed)

    def test_chrome_trace_export_includes_recovery(self, tmp_path):
        from repro.obs import write_chrome_trace

        tracer = SpanTracer()
        OverflowD1(
            small_case(nsteps=12),
            tracer=tracer,
            fault_plan="rank=2@step=6",
            checkpoint_every=4,
        ).run()
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        blob = json.loads(path.read_text())
        names = {
            ev.get("name")
            for ev in (blob["traceEvents"] if isinstance(blob, dict) else blob)
        }
        assert "failure-detection" in names
        assert "restore" in names
        assert "repartition" in names

    def test_unrecoverable_when_budget_exhausted(self):
        policy = RecoveryPolicy(max_recoveries=0)
        with pytest.raises(RankFailure):
            OverflowD1(
                small_case(nsteps=8),
                fault_plan="rank=1@step=4",
                checkpoint_every=3,
                recovery_policy=policy,
            ).run()

    def test_two_faults_two_recoveries(self):
        run = OverflowD1(
            small_case(nsteps=12),
            fault_plan=["rank=2@step=4", "rank=4@step=8"],
            checkpoint_every=3,
        ).run()
        assert len(run.recoveries) == 2
        assert run.recoveries[0].nprocs_after == 5
        assert run.recoveries[1].nprocs_after == 4
        assert sum(e.nsteps for e in run.epochs) == 12

    def test_fault_plan_object_accepted(self):
        plan = FaultPlan.parse("rank=1@step=4")
        run = OverflowD1(
            small_case(nsteps=8), fault_plan=plan, checkpoint_every=3
        ).run()
        assert len(run.recoveries) == 1
