"""Checkpoint container: format, determinism, corruption, store, Q."""

import numpy as np
import pytest

from repro.resilience import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)


def sample_checkpoint(step=40):
    return Checkpoint.pack(
        {"case": "test", "step": step},
        {
            "alpha": {"x": np.arange(10.0), "k": 3},
            "beta": [1, 2, (3, 4)],
        },
    )


class TestPackUnpack:
    def test_round_trip(self):
        ck = sample_checkpoint()
        out = ck.unpack()
        assert np.array_equal(out["alpha"]["x"], np.arange(10.0))
        assert out["beta"] == [1, 2, (3, 4)]

    def test_unpack_is_a_deep_copy(self):
        live = {"x": np.zeros(4)}
        ck = Checkpoint.pack({"step": 0}, {"s": live})
        live["x"][:] = 99.0  # mutate after packing
        assert np.array_equal(ck.unpack()["s"]["x"], np.zeros(4))
        # Two unpacks are independent of each other too.
        a, b = ck.unpack()["s"]["x"], ck.unpack()["s"]["x"]
        a[:] = 7.0
        assert np.array_equal(b, np.zeros(4))

    def test_nbytes_and_step(self):
        ck = sample_checkpoint(step=12)
        assert ck.step == 12
        assert ck.nbytes == sum(len(b) for b in ck.sections.values())
        assert set(ck.checksums()) == {"alpha", "beta"}


class TestWireFormat:
    def test_magic_and_version(self):
        blob = sample_checkpoint().to_bytes()
        assert blob[:8] == CHECKPOINT_MAGIC
        assert CHECKPOINT_VERSION == 1

    def test_bytes_round_trip(self):
        ck = sample_checkpoint()
        back = Checkpoint.from_bytes(ck.to_bytes())
        assert back.meta == ck.meta
        assert back.sections == ck.sections
        assert back.to_bytes() == ck.to_bytes()

    def test_bytes_are_deterministic(self):
        # Same state -> same bytes, across repeated packs (no
        # timestamps, fixed pickle protocol, canonical JSON header).
        assert sample_checkpoint().to_bytes() == sample_checkpoint().to_bytes()

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="bad magic"):
            Checkpoint.from_bytes(b"NOTACKPT" + b"\0" * 32)

    def test_unknown_version_rejected(self):
        blob = bytearray(sample_checkpoint().to_bytes())
        # Corrupt the version inside the JSON header.
        idx = blob.find(b'"version":1')
        assert idx > 0
        blob[idx : idx + 11] = b'"version":9'
        with pytest.raises(CheckpointError, match="version 9 not supported"):
            Checkpoint.from_bytes(bytes(blob))

    def test_truncation_detected(self):
        blob = sample_checkpoint().to_bytes()
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.from_bytes(blob[:-5])

    def test_bit_flip_detected(self):
        blob = bytearray(sample_checkpoint().to_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte, header stays intact
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            Checkpoint.from_bytes(bytes(blob))


class TestDisk:
    def test_save_load_round_trip(self, tmp_path):
        ck = sample_checkpoint()
        path = ck.save(tmp_path / "a" / "ck.rpk")
        assert path.is_file()
        back = Checkpoint.load(path)
        assert back.to_bytes() == ck.to_bytes()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint at"):
            Checkpoint.load(tmp_path / "nope.rpk")

    def test_no_tmp_file_left_behind(self, tmp_path):
        sample_checkpoint().save(tmp_path / "ck.rpk")
        assert list(tmp_path.glob("*.tmp")) == []


class TestStore:
    def test_write_requires_step(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="lacks a 'step'"):
            store.write(Checkpoint.pack({"case": "x"}, {"s": 1}))

    def test_latest_is_highest_step(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        for step in (5, 40, 12):
            store.write(sample_checkpoint(step))
        assert store.latest().step == 40
        assert [p.name for p in store.paths()] == [
            "ckpt-step000005.rpk",
            "ckpt-step000012.rpk",
            "ckpt-step000040.rpk",
        ]

    def test_prune_keeps_newest_k(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for step in (1, 2, 3, 4):
            store.write(sample_checkpoint(step))
        assert [p.name for p in store.paths()] == [
            "ckpt-step000003.rpk",
            "ckpt-step000004.rpk",
        ]

    def test_empty_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "empty")
        assert store.latest() is None
        assert store.paths() == []

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep=0)


class TestSolverQRoundTrip:
    """Checkpointed physics state resumes bit-identically (final Q)."""

    def make_driver(self):
        from repro.cases.airfoil import AIRFOIL_SEARCH_LISTS, airfoil_grids
        from repro.core import Overset2D
        from repro.motion import PitchOscillation
        from repro.solver import FlowConfig

        return Overset2D(
            airfoil_grids(scale=0.05),
            FlowConfig(mach=0.5, reynolds=1e4, cfl=2.0),
            AIRFOIL_SEARCH_LISTS,
            motions={0: PitchOscillation()},
            fringe_layers=2,
        )

    def test_final_q_bit_identical_after_restore(self, tmp_path):
        a = self.make_driver()
        for _ in range(2):
            a.step()
        snap = Checkpoint.pack({"step": a.step_count}, {"q": a.snapshot()})
        path = snap.save(tmp_path / "phys.rpk")
        for _ in range(2):
            a.step()

        b = self.make_driver()
        b.restore_state(Checkpoint.load(path).unpack()["q"])
        assert b.step_count == 2
        for _ in range(2):
            b.step()

        for sa, sb in zip(a.solvers, b.solvers):
            assert np.array_equal(sa.q, sb.q)
        assert a.time == b.time

    def test_snapshot_is_independent_of_live_state(self):
        d = self.make_driver()
        snap = d.snapshot()
        d.step()
        # Live Q moved on; the snapshot kept the old state.
        assert not all(
            np.array_equal(s.q, q) for s, q in zip(d.solvers, snap["q"])
        )
        d.restore_state(snap)
        assert all(
            np.array_equal(s.q, q) for s, q in zip(d.solvers, snap["q"])
        )
