"""Integration tests for the distributed donor-search protocol."""

import numpy as np
import pytest

from repro.connectivity import (
    DcfConfig,
    RestartCache,
    dcf_rank_program,
    donor_search,
    find_igbps,
)
from repro.connectivity.dcf import DcfWorld
from repro.grids.generators import annulus_grid, cartesian_background
from repro.machine import MachineSpec, NetworkSpec, NodeSpec, Simulator
from repro.partition import build_partition


def machine(nodes):
    return MachineSpec(
        "test", nodes, NodeSpec(50e6), NetworkSpec(5e-5, 50e6)
    )


def two_grid_system():
    """Annulus (grid 0) embedded in a Cartesian background (grid 1)."""
    mid = annulus_grid("mid", ni=41, nj=13, r_inner=1.0, r_outer=2.5,
                       center=(0.0, 0.0))
    bg = cartesian_background("bg", (-4, -4), (4, 4), (33, 33))
    return [mid, bg]


def run_dcf(grids, nprocs, search_lists, restarts=None, procs_per_grid=None):
    part = build_partition(
        [g.dims for g in grids], nprocs, procs_per_grid=procs_per_grid
    )
    cfg = DcfConfig(search_lists=search_lists)
    world = DcfWorld(
        grid_xyz=[g.xyz for g in grids],
        grid_of_rank=[part.grid_of_rank(r) for r in range(nprocs)],
        rank_boxes=[part.subdomain_of(r).box for r in range(nprocs)],
        ranks_of_grid={
            gi: part.ranks_of_grid(gi) for gi in range(len(grids))
        },
        config=cfg,
    )
    igbp_sets = [find_igbps(g, i) for i, g in enumerate(grids)]

    def program(comm):
        rank = comm.rank
        gi = world.grid_of_rank[rank]
        box = world.rank_boxes[rank]
        # IGBPs whose receiver point lies in this rank's subdomain.
        s = igbp_sets[gi]
        multi = np.stack(
            np.unravel_index(s.flat_indices, grids[gi].dims), axis=-1
        )
        mine = np.all(
            (multi >= box.lo) & (multi < box.hi), axis=1
        )
        flat = s.flat_indices[mine]
        pts = s.points[mine]
        cache = restarts[rank] if restarts is not None else None
        out = yield from dcf_rank_program(comm, world, flat, pts, cache)
        return (flat, *out)

    sim = Simulator(machine(nprocs))
    sim.spawn_all(program)
    return sim.run(), part, igbp_sets


SEARCH_LISTS = {0: [1], 1: [0]}


class TestDistributedSearch:
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    def test_matches_serial_search(self, nprocs):
        grids = two_grid_system()
        result, part, igbp_sets = run_dcf(grids, nprocs, SEARCH_LISTS)

        for rank_out in result.returns:
            flat, assign, stats = rank_out
            if flat.size == 0:
                continue
            gi = part.grid_of_rank
            # Serial reference: search the full donor grid.
            rgrid = part.grid_of_rank(rank_out and 0) if False else None
        # Compare per receiver grid against serial search.
        got = {0: {}, 1: {}}
        for rank, (flat, assign, stats) in enumerate(result.returns):
            g = part.grid_of_rank(rank)
            for k, fi in enumerate(flat):
                got[g][int(fi)] = (
                    assign["found"][k],
                    assign["cells"][k],
                    assign["fracs"][k],
                )
        for receiver, donor in ((0, 1), (1, 0)):
            s = find_igbps(grids[receiver], receiver)
            serial = donor_search(grids[donor].xyz, s.points)
            for k, fi in enumerate(s.flat_indices):
                dist_found, cells, fracs = got[receiver][int(fi)]
                assert dist_found == serial.found[k]
                if serial.found[k]:
                    assert np.allclose(
                        cells + fracs,
                        serial.cells[k] + serial.fracs[k],
                        atol=1e-6,
                    )

    def test_igbps_received_counts(self):
        """Sum of I(p) over donor ranks >= total routed IGBPs (forwards
        count again), and only donor-grid ranks receive searches for
        points of the other grid."""
        grids = two_grid_system()
        result, part, igbp_sets = run_dcf(grids, 4, SEARCH_LISTS)
        total_igbps = sum(s.count for s in igbp_sets)
        received = sum(s.igbps_received for _, _, s in result.returns)
        assert received >= total_igbps

    def test_search_steps_charged(self):
        grids = two_grid_system()
        result, _, _ = run_dcf(grids, 4, SEARCH_LISTS)
        assert sum(s.search_steps for _, _, s in result.returns) > 0
        assert result.metrics.total_flops() > 0

    def test_orphans_when_no_donor_exists(self):
        """Points outside every donor grid exhaust their search list."""
        mid = annulus_grid("mid", ni=21, nj=9, r_inner=1.0, r_outer=2.0,
                           center=(0.0, 0.0))
        # Tiny background that does not cover the annulus outer fringe.
        bg = cartesian_background("bg", (-0.5, -0.5), (0.5, 0.5), (9, 9))
        result, part, igbp_sets = run_dcf([mid, bg], 2, {0: [1], 1: [0]})
        stats = [s for _, _, s in result.returns]
        assert sum(s.orphans for s in stats) > 0

    def test_empty_search_list_resolves_immediately(self):
        grids = two_grid_system()
        result, _, _ = run_dcf(grids, 2, {0: [], 1: []})
        for flat, assign, stats in result.returns:
            assert not assign["found"].any()

    def test_restart_reduces_steps(self):
        """nth-level restart: a second identical solve with warm caches
        uses far fewer walk steps."""
        grids = two_grid_system()
        caches = [RestartCache() for _ in range(4)]
        r1, _, _ = run_dcf(grids, 4, SEARCH_LISTS, restarts=caches)
        cold = sum(s.search_steps for _, _, s in r1.returns)
        r2, _, _ = run_dcf(grids, 4, SEARCH_LISTS, restarts=caches)
        warm = sum(s.search_steps for _, _, s in r2.returns)
        assert warm < 0.7 * cold

    def test_deterministic(self):
        grids = two_grid_system()
        r1, _, _ = run_dcf(grids, 5, SEARCH_LISTS)
        r2, _, _ = run_dcf(grids, 5, SEARCH_LISTS)
        assert r1.elapsed == r2.elapsed

    def test_imbalanced_partition_takes_longer(self):
        """Connectivity work concentrates on donor ranks: a partition
        placing all background processors away from the overlap slows
        the solve versus a balanced one (sanity check that simulated
        time responds to partitioning)."""
        grids = two_grid_system()
        fast, _, _ = run_dcf(grids, 6, SEARCH_LISTS)
        slow, _, _ = run_dcf(
            grids, 6, SEARCH_LISTS, procs_per_grid=[5, 1]
        )
        assert fast.elapsed != slow.elapsed
