"""Tests for the forwarding path of the distributed donor search.

"If the search happens to hit a processor boundary, the search request
is forwarded to the neighboring processor on the grid and the search is
continued" (paper section 2.2).  Forwarding is exercised by seeding the
restart cache with *stale* donor cells owned by the wrong rank — what a
moving-grid run produces whenever a donor drifts across a subdomain
boundary between steps.
"""

import numpy as np
import pytest

from repro.connectivity import (
    DcfConfig,
    RestartCache,
    dcf_rank_program,
    find_igbps,
)
from repro.connectivity.dcf import DcfWorld
from repro.grids.generators import annulus_grid, cartesian_background
from repro.machine import MachineSpec, NetworkSpec, NodeSpec, Simulator
from repro.partition import build_partition


def run(grids, nprocs, caches, search_lists, max_hops=20,
        procs_per_grid=None):
    part = build_partition(
        [g.dims for g in grids], nprocs, procs_per_grid=procs_per_grid
    )
    world = DcfWorld(
        grid_xyz=[g.xyz for g in grids],
        grid_of_rank=[part.grid_of_rank(r) for r in range(nprocs)],
        rank_boxes=[part.subdomain_of(r).box for r in range(nprocs)],
        ranks_of_grid={gi: part.ranks_of_grid(gi) for gi in range(len(grids))},
        config=DcfConfig(search_lists=search_lists,
                         max_forward_hops=max_hops),
    )
    igbp_sets = [find_igbps(g, i) for i, g in enumerate(grids)]

    def program(comm):
        rank = comm.rank
        gi = world.grid_of_rank[rank]
        box = world.rank_boxes[rank]
        s = igbp_sets[gi]
        multi = np.stack(
            np.unravel_index(s.flat_indices, grids[gi].dims), axis=-1
        )
        mine = np.all((multi >= box.lo) & (multi < box.hi), axis=1)
        out = yield from dcf_rank_program(
            comm, world, s.flat_indices[mine], s.points[mine],
            caches[rank],
        )
        return (s.flat_indices[mine], *out)

    machine = MachineSpec("t", nprocs, NodeSpec(50e6), NetworkSpec(5e-5, 50e6))
    sim = Simulator(machine)
    sim.spawn_all(program)
    result = sim.run()
    return result, part, igbp_sets


def stale_cache_system():
    """Annulus over a background split 4 ways in i, with the annulus's
    cached donors pointing at the wrong end of the background."""
    mid = annulus_grid("mid", ni=33, nj=9, r_inner=1.0, r_outer=2.2,
                       center=(0.0, 0.0))
    bg = cartesian_background("bg", (-3, -3), (3, 3), (33, 17))
    grids = [mid, bg]
    caches = []
    s = find_igbps(mid, 0)
    for _ in range(5):
        cache = RestartCache()
        # Stale donors: everything allegedly in the background's first
        # columns (cells owned by the first bg rank).
        cache.store(
            0, 1,
            s.flat_indices,
            np.tile([1, 8], (s.count, 1)),
            np.ones(s.count, dtype=bool),
        )
        caches.append(cache)
    return grids, caches


class TestForwarding:
    def test_stale_hints_are_forwarded_to_the_right_owner(self):
        grids, caches = stale_cache_system()
        result, part, _ = run(
            grids, 5, caches, {0: [1], 1: [0]}, procs_per_grid=[1, 4]
        )
        stats = [r[2] for r in result.returns]
        assert sum(st.forwards for st in stats) > 0
        # Despite the bad hints every point resolves, and correctly.
        from repro.connectivity import donor_search

        flat0, assign, _ = result.returns[0]
        serial = donor_search(grids[1].xyz, grids[0].points_flat()[flat0])
        hit = serial.found
        assert np.array_equal(assign["found"], hit)
        ok = assign["found"]
        assert np.allclose(
            assign["cells"][ok] + assign["fracs"][ok],
            serial.cells[ok] + serial.fracs[ok],
            atol=1e-6,
        )

    def test_hop_budget_caps_chains(self):
        """With a zero hop budget, stale hints cannot be forwarded; the
        retry machinery still resolves points through re-routing."""
        grids, caches = stale_cache_system()
        result, _, _ = run(
            grids, 5, caches, {0: [1], 1: [0]}, max_hops=0,
            procs_per_grid=[1, 4],
        )
        stats = [r[2] for r in result.returns]
        assert sum(st.forwards for st in stats) == 0
        # The protocol still terminates and answers every point.
        flat0, assign, _ = result.returns[0]
        assert assign["found"].shape[0] == flat0.shape[0]
