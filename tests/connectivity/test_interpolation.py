"""Tests for multilinear interpolation weights."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.connectivity.interpolation import (
    corner_offsets,
    interpolate,
    interpolation_weights,
)
from repro.grids.generators import cartesian_background

unit = st.floats(min_value=0.0, max_value=1.0)


class TestWeights:
    def test_cell_center_2d(self):
        w = interpolation_weights(np.array([[0.5, 0.5]]))
        assert np.allclose(w, 0.25)

    def test_corner_weight_is_one(self):
        w = interpolation_weights(np.array([[0.0, 0.0]]))
        assert w[0, 0] == 1.0 and np.allclose(w[0, 1:], 0.0)
        w = interpolation_weights(np.array([[1.0, 1.0]]))
        assert w[0, -1] == 1.0

    def test_corner_ordering_matches_offsets(self):
        """Weight k corresponds to corner_offsets()[k]."""
        fr = np.array([[0.9, 0.1]])
        w = interpolation_weights(fr)[0]
        offs = corner_offsets(2)
        # corner (1,0): weight 0.9 * 0.9 = 0.81 is the largest.
        k = np.argmax(w)
        assert offs[k].tolist() == [1, 0]

    @given(arrays(np.float64, (5, 3), elements=unit))
    def test_partition_of_unity(self, fr):
        w = interpolation_weights(fr)
        assert np.allclose(w.sum(axis=1), 1.0)
        assert (w >= 0).all()


class TestInterpolate:
    def test_linear_field_exact(self):
        """Multilinear interpolation reproduces linear fields exactly."""
        g = cartesian_background("bg", (0, 0), (4, 4), (5, 5))
        field = 2.0 * g.xyz[..., 0] - 3.0 * g.xyz[..., 1] + 1.0
        cells = np.array([[1, 2], [0, 0], [3, 3]])
        fracs = np.array([[0.3, 0.7], [0.0, 0.5], [0.9, 0.1]])
        got = interpolate(field, cells, fracs)
        pts = cells + fracs
        want = 2.0 * pts[:, 0] - 3.0 * pts[:, 1] + 1.0
        assert np.allclose(got, want)

    def test_vector_field(self):
        g = cartesian_background("bg", (0, 0), (4, 4), (5, 5))
        field = np.stack([g.xyz[..., 0], g.xyz[..., 1], g.xyz[..., 0] * 0 + 7],
                         axis=-1)
        got = interpolate(field, np.array([[2, 2]]), np.array([[0.25, 0.75]]))
        assert np.allclose(got, [[2.25, 2.75, 7.0]])

    def test_3d_trilinear(self):
        g = cartesian_background("bg", (0, 0, 0), (2, 2, 2), (3, 3, 3))
        field = g.xyz[..., 0] + 10 * g.xyz[..., 1] + 100 * g.xyz[..., 2]
        got = interpolate(field, np.array([[0, 1, 0]]),
                          np.array([[0.5, 0.5, 0.25]]))
        assert np.allclose(got, [0.5 + 15.0 + 25.0])

    def test_convexity(self):
        """Interpolated values are bounded by the corner values."""
        rng = np.random.default_rng(3)
        field = rng.normal(size=(6, 6))
        cells = np.array([[2, 3]])
        fracs = np.array([[0.37, 0.83]])
        got = interpolate(field, cells, fracs)[0]
        corners = field[2:4, 3:5]
        assert corners.min() - 1e-12 <= got <= corners.max() + 1e-12
