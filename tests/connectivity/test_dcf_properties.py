"""Property-based tests: the distributed donor search equals the serial
search for arbitrary partitions of a two-grid overset system."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import (
    DcfConfig,
    dcf_rank_program,
    donor_search,
    find_igbps,
)
from repro.connectivity.dcf import DcfWorld
from repro.grids.generators import annulus_grid, cartesian_background
from repro.machine import MachineSpec, NetworkSpec, NodeSpec, Simulator
from repro.partition import build_partition


def run_distributed(grids, nprocs, procs_per_grid=None):
    part = build_partition(
        [g.dims for g in grids], nprocs, procs_per_grid=procs_per_grid
    )
    world = DcfWorld(
        grid_xyz=[g.xyz for g in grids],
        grid_of_rank=[part.grid_of_rank(r) for r in range(nprocs)],
        rank_boxes=[part.subdomain_of(r).box for r in range(nprocs)],
        ranks_of_grid={gi: part.ranks_of_grid(gi) for gi in range(len(grids))},
        config=DcfConfig(search_lists={0: [1], 1: [0]}),
    )
    igbp_sets = [find_igbps(g, i) for i, g in enumerate(grids)]

    def program(comm):
        rank = comm.rank
        gi = world.grid_of_rank[rank]
        box = world.rank_boxes[rank]
        s = igbp_sets[gi]
        multi = np.stack(
            np.unravel_index(s.flat_indices, grids[gi].dims), axis=-1
        )
        mine = np.all((multi >= box.lo) & (multi < box.hi), axis=1)
        out = yield from dcf_rank_program(
            comm, world, s.flat_indices[mine], s.points[mine], None
        )
        return (s.flat_indices[mine], *out)

    machine = MachineSpec(
        "t", nprocs, NodeSpec(50e6), NetworkSpec(5e-5, 50e6)
    )
    sim = Simulator(machine)
    sim.spawn_all(program)
    result = sim.run()
    got = {}
    for rank, (flat, assign, stats) in enumerate(result.returns):
        g = part.grid_of_rank(rank)
        for k, fi in enumerate(flat):
            got.setdefault(g, {})[int(fi)] = (
                bool(assign["found"][k]),
                assign["cells"][k] + assign["fracs"][k],
            )
    return got, igbp_sets


@pytest.fixture(scope="module")
def grids():
    mid = annulus_grid("mid", ni=25, nj=9, r_inner=1.0, r_outer=2.2,
                       center=(0.0, 0.0))
    bg = cartesian_background("bg", (-3, -3), (3, 3), (17, 17))
    return [mid, bg]


@pytest.fixture(scope="module")
def serial_reference(grids):
    ref = {}
    for receiver, donor in ((0, 1), (1, 0)):
        s = find_igbps(grids[receiver], receiver)
        res = donor_search(grids[donor].xyz, s.points)
        ref[receiver] = {
            int(fi): (bool(res.found[k]), res.cells[k] + res.fracs[k])
            for k, fi in enumerate(s.flat_indices)
        }
    return ref


class TestDistributedEqualsSerial:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=5))
    def test_any_partition_matches_serial(
        self, grids, serial_reference, p0, p1
    ):
        got, igbp_sets = run_distributed(
            grids, p0 + p1, procs_per_grid=[p0, p1]
        )
        for receiver in (0, 1):
            want = serial_reference[receiver]
            for fi, (found, loc) in got.get(receiver, {}).items():
                w_found, w_loc = want[fi]
                assert found == w_found, (receiver, fi)
                if found:
                    assert np.allclose(loc, w_loc, atol=1e-6)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=2, max_value=9))
    def test_every_igbp_gets_exactly_one_answer(self, grids, nprocs):
        got, igbp_sets = run_distributed(grids, nprocs)
        for receiver in (0, 1):
            answered = set(got.get(receiver, {}))
            expected = set(int(f) for f in igbp_sets[receiver].flat_indices)
            assert answered == expected
