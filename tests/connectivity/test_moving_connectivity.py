"""Moving-grid connectivity invariants across many timesteps.

The paper's regime: the timestep is small enough that donor cells move
by less than one receiving-grid cell per step (section 2.2) — these
tests confirm that regime and the restart economics it enables over a
longer motion history than the driver tests cover.
"""

import numpy as np
import pytest

from repro.connectivity.donorsearch import donor_search
from repro.connectivity.restart import RestartCache
from repro.grids.generators import annulus_grid, cartesian_background
from repro.motion import PitchOscillation


@pytest.fixture(scope="module")
def moving_history():
    """20 steps of a rotating annulus over a background: per-step donor
    searches with the restart cache, recording steps and drift."""
    ref = annulus_grid("mid", ni=41, nj=11, r_inner=1.0, r_outer=2.0,
                       center=(0.25, 0.0))
    bg = cartesian_background("bg", (-3, -3), (3, 3), (41, 41))
    motion = PitchOscillation(center=(0.25, 0.0))
    cache = RestartCache()
    dt = 0.02
    from repro.connectivity.igbp import find_igbps

    s = find_igbps(ref, 0)
    history = []
    prev_cells = None
    for k in range(20):
        t = k * dt
        moved = ref.with_coordinates(motion.at(t).apply(ref.xyz))
        pts = moved.points_flat()[s.flat_indices]
        hints = cache.hints(0, 1, s.flat_indices, 2)
        res = donor_search(bg.xyz, pts, guesses=hints)
        cache.store(0, 1, s.flat_indices, res.cells, res.found)
        drift = (
            np.abs(res.cells - prev_cells).max()
            if prev_cells is not None
            else 0
        )
        prev_cells = res.cells.copy()
        history.append(
            {"found": res.found, "steps": res.total_steps, "drift": drift}
        )
    return history, s.count


class TestMovingDonors:
    def test_all_points_found_every_step(self, moving_history):
        history, n = moving_history
        for h in history:
            assert h["found"].all()

    def test_donors_move_less_than_one_cell_per_step(self, moving_history):
        """The paper's premise for nth-level restart."""
        history, n = moving_history
        for h in history[1:]:
            assert h["drift"] <= 1

    def test_warm_steps_stay_cheap(self, moving_history):
        """After the first (cold) solve, warm searches average ~1-2
        walk steps per point, every step, for the whole motion."""
        history, n = moving_history
        cold = history[0]["steps"]
        for h in history[1:]:
            assert h["steps"] < 0.25 * cold
            assert h["steps"] <= 3 * n

    def test_cost_does_not_grow_with_time(self, moving_history):
        """No degradation as the motion accumulates: the last five steps
        cost no more than the first five warm steps."""
        history, n = moving_history
        early = sum(h["steps"] for h in history[1:6])
        late = sum(h["steps"] for h in history[15:20])
        assert late <= 1.5 * early
