"""Tests for hole cutting and IGBP identification."""

import numpy as np
import pytest

from repro.connectivity.holecut import (
    body_polygon,
    cut_holes,
    hole_fringe_mask,
    points_in_polygon,
)
from repro.connectivity.igbp import find_igbps, igbp_ratio
from repro.grids.generators import (
    airfoil_ogrid,
    annulus_grid,
    body_of_revolution_grid,
    cartesian_background,
)


class TestPointsInPolygon:
    def test_square(self):
        square = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        pts = np.array([[1.0, 1.0], [3.0, 1.0], [-0.5, 1.0], [1.0, 2.5]])
        assert points_in_polygon(pts, square).tolist() == [
            True, False, False, False,
        ]

    def test_closed_polygon_with_repeated_vertex(self):
        tri = np.array([[0, 0], [2, 0], [1, 2], [0, 0]], dtype=float)
        assert points_in_polygon(np.array([[1.0, 0.5]]), tri)[0]

    def test_concave_polygon(self):
        # A "C" shape: point in the notch is outside.
        c = np.array(
            [[0, 0], [3, 0], [3, 1], [1, 1], [1, 2], [3, 2], [3, 3], [0, 3]],
            dtype=float,
        )
        assert points_in_polygon(np.array([[0.5, 1.5]]), c)[0]
        assert not points_in_polygon(np.array([[2.0, 1.5]]), c)[0]

    def test_airfoil_polygon(self):
        g = airfoil_ogrid("near", ni=121, nj=15)
        poly = body_polygon(g)
        inside = points_in_polygon(
            np.array([[0.5, 0.0], [0.5, 0.2], [1.5, 0.0]]), poly
        )
        assert inside.tolist() == [True, False, False]


class TestCutHoles:
    def make_system(self):
        near = airfoil_ogrid("near", ni=121, nj=21, radius=1.0)
        bg = cartesian_background("bg", (-2, -2), (3, 2), (81, 65))
        return [near, bg]

    def test_background_has_hole_at_airfoil(self):
        near, bg = self.make_system()
        iblanks = cut_holes([near, bg])
        # Points inside the airfoil body are blanked in the background.
        hole_count = int((iblanks[1] == 0).sum())
        assert hole_count > 0
        # The blanked region is near the airfoil: centroid around (0.5, 0).
        pts = bg.points_flat()[iblanks[1].reshape(-1) == 0]
        assert abs(pts[:, 0].mean() - 0.5) < 0.2
        assert abs(pts[:, 1].mean()) < 0.1

    def test_body_grid_not_self_cut(self):
        near, bg = self.make_system()
        iblanks = cut_holes([near, bg])
        assert (iblanks[0] == 1).all()

    def test_no_walls_no_holes(self):
        a = annulus_grid("a", ni=41, nj=11)
        b = cartesian_background("b", (-4, -4), (4, 4), (21, 21))
        iblanks = cut_holes([a, b])
        assert all((ib == 1).all() for ib in iblanks)

    def test_3d_box_cut(self):
        store = body_of_revolution_grid("store", ni=31, nj=17, nk=9,
                                        length=1.0, body_radius=0.1)
        bg = cartesian_background("bg", (-0.5, -0.5, -0.5), (1.5, 0.5, 0.5),
                                  (21, 11, 11))
        iblanks = cut_holes([store, bg])
        assert (iblanks[1] == 0).sum() > 0


class TestHoleFringe:
    def test_ring_around_hole(self):
        ib = np.ones((7, 7), dtype=np.int8)
        ib[3, 3] = 0
        fringe = hole_fringe_mask(ib)
        assert fringe[2, 3] and fringe[4, 3] and fringe[3, 2] and fringe[3, 4]
        assert not fringe[3, 3]  # the hole itself
        assert not fringe[2, 2]  # diagonal neighbours excluded
        assert fringe.sum() == 4

    def test_hole_at_boundary_no_wrap(self):
        ib = np.ones((5, 5), dtype=np.int8)
        ib[0, 0] = 0
        fringe = hole_fringe_mask(ib)
        assert fringe[1, 0] and fringe[0, 1]
        assert not fringe[-1, 0] and not fringe[0, -1]  # no wraparound

    def test_no_holes_no_fringe(self):
        assert not hole_fringe_mask(np.ones((4, 4), dtype=np.int8)).any()


class TestFindIgbps:
    def test_overset_face_points(self):
        g = annulus_grid("mid", ni=21, nj=9)
        s = find_igbps(g, grid_index=0)
        # jmin and jmax are overset: 2 * ni points.
        assert s.count == 2 * 21
        assert s.points.shape == (42, 2)

    def test_fringe_layers(self):
        g = annulus_grid("mid", ni=21, nj=9)
        s2 = find_igbps(g, 0, fringe_layers=2)
        assert s2.count == 4 * 21

    def test_hole_fringe_included(self):
        g = cartesian_background("bg", (0, 0), (8, 8), (9, 9))
        ib = np.ones((9, 9), dtype=np.int8)
        ib[4, 4] = 0
        s = find_igbps(g, 0, iblank=ib)
        # Farfield faces are not overset: only the 4 fringe points.
        assert s.count == 4

    def test_hole_points_excluded(self):
        g = annulus_grid("mid", ni=21, nj=9)
        ib = np.ones((21, 9), dtype=np.int8)
        ib[:, 0] = 0  # hole right on the overset face
        s = find_igbps(g, 0, iblank=ib)
        flat_hole = np.nonzero(ib.reshape(-1) == 0)[0]
        assert not np.intersect1d(s.flat_indices, flat_hole).size

    def test_coordinates_match_indices(self):
        g = annulus_grid("mid", ni=21, nj=9)
        s = find_igbps(g, 0)
        assert np.allclose(s.points, g.points_flat()[s.flat_indices])

    def test_updated_coordinates_after_motion(self):
        g = annulus_grid("mid", ni=21, nj=9)
        s = find_igbps(g, 0)
        moved = g.with_coordinates(g.xyz + np.array([1.0, 0.0]))
        s2 = s.updated_coordinates(moved)
        assert np.allclose(s2.points, s.points + [1.0, 0.0])


class TestIgbpRatio:
    def test_matches_paper_scale(self):
        """The airfoil system's IGBP/gridpoint ratio should be within a
        factor ~2 of the paper's 44e-3 for similarly structured grids."""
        near = airfoil_ogrid("near", ni=121, nj=41, radius=1.0)
        mid = annulus_grid("mid", ni=121, nj=41, r_inner=0.9, r_outer=3.0,
                           center=(0.5, 0.0))
        bg = cartesian_background("bg", (-6.5, -7), (7.5, 7), (85, 85))
        grids = [near, mid, bg]
        iblanks = cut_holes(grids)
        sets = [
            find_igbps(g, i, iblanks[i]) for i, g in enumerate(grids)
        ]
        ratio = igbp_ratio(sets, grids)
        assert 0.02 < ratio < 0.09
