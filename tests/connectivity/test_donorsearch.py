"""Tests for the stencil-walk donor search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity.donorsearch import donor_search
from repro.connectivity.interpolation import interpolate
from repro.grids.generators import (
    airfoil_ogrid,
    annulus_grid,
    cartesian_background,
)


def uniform_xyz(ni=11, nj=9, dx=1.0, dy=1.0):
    return cartesian_background("bg", (0, 0), (dx * (ni - 1), dy * (nj - 1)),
                                (ni, nj)).xyz


class TestUniformGrid:
    def test_exact_cells_and_fracs(self):
        xyz = uniform_xyz()
        pts = np.array([[2.5, 3.25], [0.1, 0.9], [9.99, 7.99]])
        r = donor_search(xyz, pts)
        assert r.found.all()
        assert r.cells[0].tolist() == [2, 3]
        assert np.allclose(r.fracs[0], [0.5, 0.25])

    def test_reconstruction(self):
        xyz = uniform_xyz()
        rng = np.random.default_rng(0)
        pts = rng.uniform([0, 0], [10, 8], size=(200, 2))
        r = donor_search(xyz, pts)
        assert r.found.all()
        recon = r.cells + r.fracs
        assert np.allclose(recon, pts, atol=1e-8)

    def test_outside_points_not_found(self):
        xyz = uniform_xyz()
        pts = np.array([[-1.0, 4.0], [11.0, 4.0], [5.0, -2.0]])
        r = donor_search(xyz, pts)
        assert not r.found.any()

    def test_mixed_inside_outside(self):
        xyz = uniform_xyz()
        pts = np.array([[5.0, 4.0], [50.0, 4.0]])
        r = donor_search(xyz, pts)
        assert r.found.tolist() == [True, False]


class TestWarmStart:
    def test_good_guess_converges_in_one_step(self):
        xyz = uniform_xyz()
        pts = np.array([[7.3, 2.6]])
        cold = donor_search(xyz, pts)
        warm = donor_search(xyz, pts, guesses=np.array([[7, 2]]))
        assert warm.found.all()
        assert warm.steps[0] == 1
        assert warm.steps[0] <= cold.steps[0]

    def test_nearby_guess_cheaper_than_cold(self):
        """The nth-level-restart effect: donors moved by ~1 cell cost
        far fewer walk steps than searches from scratch."""
        xyz = uniform_xyz(41, 41)
        rng = np.random.default_rng(1)
        pts = rng.uniform([1, 1], [39, 39], size=(100, 2))
        cold = donor_search(xyz, pts)
        nearby = cold.cells + rng.integers(-1, 2, size=cold.cells.shape)
        warm = donor_search(xyz, pts, guesses=nearby)
        assert warm.found.all()
        assert warm.total_steps < 0.5 * cold.total_steps

    def test_out_of_range_guess_clipped(self):
        xyz = uniform_xyz()
        r = donor_search(xyz, np.array([[5.0, 4.0]]),
                         guesses=np.array([[999, -999]]))
        assert r.found.all()


class TestCurvilinear:
    def test_annulus_reconstruction(self):
        g = annulus_grid("mid", ni=81, nj=21, r_inner=1.0, r_outer=3.0,
                         center=(0.0, 0.0))
        rng = np.random.default_rng(2)
        theta = rng.uniform(0.1, 2 * np.pi - 0.1, 50)
        rad = rng.uniform(1.1, 2.9, 50)
        pts = np.stack([rad * np.cos(theta), rad * np.sin(theta)], axis=-1)
        r = donor_search(g.xyz, pts)
        assert r.found.all()
        recon = interpolate(g.xyz, r.cells, r.fracs)
        assert np.allclose(recon, pts, atol=2e-3)  # bilinear on curved cells

    def test_airfoil_ogrid_finds_field_points(self):
        g = airfoil_ogrid("near", ni=121, nj=31, radius=2.0)
        pts = np.array([[1.5, 0.3], [0.5, -0.8], [-0.5, 0.2]])
        r = donor_search(g.xyz, pts)
        assert r.found.all()

    def test_point_inside_airfoil_body_not_found(self):
        """The airfoil interior is outside the O-grid's mapped region."""
        g = airfoil_ogrid("near", ni=121, nj=31, radius=2.0)
        r = donor_search(g.xyz, np.array([[0.5, 0.0]]))
        assert not r.found.any()

    def test_point_beyond_outer_radius_not_found(self):
        g = airfoil_ogrid("near", ni=61, nj=21, radius=1.5)
        r = donor_search(g.xyz, np.array([[5.0, 5.0]]))
        assert not r.found.any()


class TestWindowedSearch:
    """The distributed protocol walks only inside a rank's cell window."""

    def test_escape_reports_hint(self):
        xyz = uniform_xyz(21, 21)
        # Window covers cells i in [0, 9]; target lives at i ~ 15.
        r = donor_search(
            xyz,
            np.array([[15.5, 10.2]]),
            guesses=np.array([[5, 10]]),
            cell_lo=np.array([0, 0]),
            cell_hi=np.array([9, 19]),
        )
        assert not r.found.any()
        # Hint points beyond the window toward the target.
        assert r.cells[0, 0] >= 9

    def test_window_hit(self):
        xyz = uniform_xyz(21, 21)
        r = donor_search(
            xyz,
            np.array([[5.5, 10.2]]),
            cell_lo=np.array([0, 0]),
            cell_hi=np.array([9, 19]),
        )
        assert r.found.all()


class TestSteps3D:
    def test_3d_uniform(self):
        g = cartesian_background("bg", (0, 0, 0), (5, 5, 5), (6, 6, 6))
        pts = np.array([[2.5, 3.5, 1.25], [0.5, 0.5, 4.5]])
        r = donor_search(g.xyz, pts)
        assert r.found.all()
        assert np.allclose(r.cells + r.fracs, pts, atol=1e-6)

    def test_3d_outside(self):
        g = cartesian_background("bg", (0, 0, 0), (5, 5, 5), (6, 6, 6))
        r = donor_search(g.xyz, np.array([[9.0, 2.0, 2.0]]))
        assert not r.found.any()


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.01, 9.99), st.floats(0.01, 7.99))
    def test_any_interior_point_found(self, x, y):
        xyz = uniform_xyz()
        r = donor_search(xyz, np.array([[x, y]]))
        assert r.found.all()
        assert (r.fracs >= 0).all() and (r.fracs <= 1).all()

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.05, 6.2), st.floats(1.15, 2.85))
    def test_annulus_found_property(self, theta, rad):
        g = annulus_grid("mid", ni=61, nj=17, r_inner=1.0, r_outer=3.0,
                         center=(0.0, 0.0))
        pt = np.array([[rad * np.cos(theta), rad * np.sin(theta)]])
        r = donor_search(g.xyz, pt)
        assert r.found.all()


def wavy_grid(ni, nj, amp, kx, ky, theta=0.0, shift=(0.0, 0.0)):
    """A random *smooth* curvilinear grid: a cartesian sheet with
    sinusoidal coordinate waves, rigidly rotated by ``theta`` and
    translated by ``shift``.  ``amp <= 0.3`` keeps every cell a convex
    quad, so the multilinear cell maps tile the domain without overlap
    and a donor (cell, frac) pair is unique away from cell faces."""
    i = np.arange(ni, dtype=float)[:, None] * np.ones((1, nj))
    j = np.ones((ni, 1)) * np.arange(nj, dtype=float)[None, :]
    x = i + amp * np.sin(2.0 * np.pi * kx * j / (nj - 1))
    y = j + amp * np.sin(2.0 * np.pi * ky * i / (ni - 1))
    c, s = np.cos(theta), np.sin(theta)
    return np.stack(
        [c * x - s * y + shift[0], s * x + c * y + shift[1]], axis=-1
    )


class TestRoundTripProperties:
    """ISSUE satellite: (cell, frac) -> physical point -> search must
    recover the donor on random smooth curvilinear grids, and warm
    (nth-level-restart) searches must beat cold ones after small grid
    motion."""

    @settings(max_examples=40, deadline=None)
    @given(
        amp=st.floats(0.0, 0.3),
        kx=st.integers(1, 3),
        ky=st.integers(1, 3),
        theta=st.floats(0.0, 0.6),
        ci=st.integers(0, 10),
        cj=st.integers(0, 8),
        fa=st.floats(0.05, 0.95),
        fb=st.floats(0.05, 0.95),
    )
    def test_single_donor_roundtrip(self, amp, kx, ky, theta, ci, cj, fa, fb):
        xyz = wavy_grid(12, 10, amp, kx, ky, theta)
        cells = np.array([[ci, cj]])
        fracs = np.array([[fa, fb]])
        pt = interpolate(xyz, cells, fracs)
        r = donor_search(xyz, pt)
        assert r.found.all()
        assert r.cells.tolist() == cells.tolist()
        assert np.allclose(r.fracs, fracs, atol=1e-6)
        # ... and the recovered donor reproduces the physical point.
        assert np.allclose(interpolate(xyz, r.cells, r.fracs), pt, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(
        amp=st.floats(0.0, 0.25),
        kx=st.integers(1, 3),
        ky=st.integers(1, 3),
        seed=st.integers(0, 1_000),
    )
    def test_batch_roundtrip(self, amp, kx, ky, seed):
        ni, nj = 17, 13
        xyz = wavy_grid(ni, nj, amp, kx, ky)
        rng = np.random.default_rng(seed)
        n = 50
        cells = np.stack(
            [rng.integers(0, ni - 1, n), rng.integers(0, nj - 1, n)], axis=-1
        )
        fracs = rng.uniform(0.05, 0.95, size=(n, 2))
        pts = interpolate(xyz, cells, fracs)
        r = donor_search(xyz, pts)
        assert r.found.all()
        assert (r.cells == cells).all()
        assert np.allclose(r.fracs, fracs, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(
        amp=st.floats(0.0, 0.2),
        angle=st.floats(0.002, 0.02),
        dx=st.floats(-0.2, 0.2),
        dy=st.floats(-0.2, 0.2),
        seed=st.integers(0, 1_000),
    )
    def test_warm_restart_beats_cold_after_small_motion(
        self, amp, angle, dx, dy, seed
    ):
        """Move the grid by a sub-cell rigid motion; re-searching from
        the previous donors (warm) must take strictly fewer total walk
        steps than re-searching from scratch (cold)."""
        xyz0 = wavy_grid(41, 41, amp, 2, 2)
        rng = np.random.default_rng(seed)
        pts = rng.uniform([6.0, 6.0], [34.0, 34.0], size=(80, 2))
        before = donor_search(xyz0, pts)
        assert before.found.all()

        # Rigid motion about the grid centre + small translation.
        centre = xyz0.reshape(-1, 2).mean(axis=0)
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, -s], [s, c]])
        xyz1 = (xyz0 - centre) @ rot.T + centre + np.array([dx, dy])

        cold = donor_search(xyz1, pts)
        warm = donor_search(xyz1, pts, guesses=before.cells)
        assert cold.found.all() and warm.found.all()
        # Same donors either way ...
        assert (warm.cells == cold.cells).all()
        # ... but the restart pays strictly fewer walk steps.
        assert warm.total_steps < cold.total_steps
