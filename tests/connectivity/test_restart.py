"""Tests for the nth-level restart cache."""

import numpy as np

from repro.connectivity.restart import RestartCache


class TestRestartCache:
    def test_empty_cache_returns_none(self):
        cache = RestartCache()
        assert cache.hints(0, 1, np.array([3, 4]), ndim=2) is None
        assert cache.misses == 2

    def test_store_and_recall(self):
        cache = RestartCache()
        cache.store(
            0, 1,
            flat_indices=np.array([10, 11]),
            cells=np.array([[3, 4], [5, 6]]),
            found=np.array([True, True]),
        )
        hints = cache.hints(0, 1, np.array([10, 11]), ndim=2)
        assert hints.tolist() == [[3, 4], [5, 6]]
        assert cache.hit_rate == 1.0

    def test_unfound_donors_not_stored(self):
        cache = RestartCache()
        cache.store(0, 1, np.array([10]), np.array([[3, 4]]),
                    np.array([False]))
        assert cache.hints(0, 1, np.array([10]), ndim=2) is None

    def test_unknown_points_get_median_of_known(self):
        cache = RestartCache()
        cache.store(
            0, 1,
            np.array([1, 2, 3]),
            np.array([[10, 10], [12, 12], [14, 14]]),
            np.array([True, True, True]),
        )
        hints = cache.hints(0, 1, np.array([1, 99]), ndim=2)
        assert hints[0].tolist() == [10, 10]
        # Unknown rows take the median of the donors known *within this
        # query batch* (only point 1 here).
        assert hints[1].tolist() == [10, 10]

    def test_pairs_are_independent(self):
        cache = RestartCache()
        cache.store(0, 1, np.array([5]), np.array([[1, 1]]), np.array([True]))
        assert cache.hints(0, 2, np.array([5]), ndim=2) is None
        assert cache.hints(1, 1, np.array([5]), ndim=2) is None

    def test_invalidate_receiver(self):
        cache = RestartCache()
        cache.store(0, 1, np.array([5]), np.array([[1, 1]]), np.array([True]))
        cache.store(2, 1, np.array([5]), np.array([[9, 9]]), np.array([True]))
        cache.invalidate(receiver=0)
        assert cache.hints(0, 1, np.array([5]), ndim=2) is None
        assert cache.hints(2, 1, np.array([5]), ndim=2) is not None

    def test_invalidate_all(self):
        cache = RestartCache()
        cache.store(0, 1, np.array([5]), np.array([[1, 1]]), np.array([True]))
        cache.invalidate()
        assert cache.hints(0, 1, np.array([5]), ndim=2) is None

    def test_store_overwrites(self):
        cache = RestartCache()
        cache.store(0, 1, np.array([5]), np.array([[1, 1]]), np.array([True]))
        cache.store(0, 1, np.array([5]), np.array([[2, 2]]), np.array([True]))
        assert cache.hints(0, 1, np.array([5]), ndim=2).tolist() == [[2, 2]]
