"""Order verification: overset transfer is second-order accurate.

The Chimera scheme's spatial accuracy rests on the intergrid
interpolation being at least as accurate as the interior scheme
(2nd-order, paper section 2.1).  Multilinear interpolation of a smooth
field sampled on the donor grid must converge with the square of the
donor spacing — verified here for Cartesian->annulus and
annulus->Cartesian transfers, i.e. the exact transfer pattern of the
airfoil system.
"""

import numpy as np
import pytest

from repro.connectivity.donorsearch import donor_search
from repro.connectivity.interpolation import interpolate
from repro.grids.generators import annulus_grid, cartesian_background


def smooth_field(xy: np.ndarray) -> np.ndarray:
    return np.sin(1.3 * xy[..., 0]) * np.cos(0.7 * xy[..., 1])


def transfer_error(donor_grid, receiver_points):
    field = smooth_field(donor_grid.xyz)
    res = donor_search(donor_grid.xyz, receiver_points)
    assert res.found.all()
    got = interpolate(field, res.cells, res.fracs)
    want = smooth_field(receiver_points)
    return float(np.sqrt(np.mean((got - want) ** 2)))


@pytest.fixture(scope="module")
def receiver_points():
    rng = np.random.default_rng(7)
    theta = rng.uniform(0, 2 * np.pi, 200)
    rad = rng.uniform(1.2, 2.6, 200)
    return np.stack([rad * np.cos(theta), rad * np.sin(theta)], axis=-1)


class TestTransferOrder:
    def test_cartesian_donor_second_order(self, receiver_points):
        errors = []
        for n in (17, 33, 65):
            bg = cartesian_background("bg", (-3, -3), (3, 3), (n, n))
            errors.append(transfer_error(bg, receiver_points))
        # Each halving of h divides the error by ~4 (order 2).
        order1 = np.log2(errors[0] / errors[1])
        order2 = np.log2(errors[1] / errors[2])
        assert order1 > 1.6
        assert order2 > 1.6

    def test_annulus_donor_second_order(self, receiver_points):
        errors = []
        for ni, nj in ((31, 9), (61, 17), (121, 33)):
            mid = annulus_grid("mid", ni=ni, nj=nj, r_inner=1.0,
                               r_outer=3.0, center=(0.0, 0.0))
            errors.append(transfer_error(mid, receiver_points))
        order = np.log2(errors[0] / errors[2]) / 2
        assert order > 1.6

    def test_error_magnitude_reasonable(self, receiver_points):
        bg = cartesian_background("bg", (-3, -3), (3, 3), (65, 65))
        assert transfer_error(bg, receiver_points) < 5e-3

    def test_exactness_on_linears(self, receiver_points):
        """Multilinear transfer reproduces linear fields to round-off
        regardless of resolution (consistency)."""
        bg = cartesian_background("bg", (-3, -3), (3, 3), (9, 9))
        field = 2.0 * bg.xyz[..., 0] - 0.5 * bg.xyz[..., 1] + 3.0
        res = donor_search(bg.xyz, receiver_points)
        got = interpolate(field, res.cells, res.fracs)
        want = (2.0 * receiver_points[:, 0]
                - 0.5 * receiver_points[:, 1] + 3.0)
        assert np.allclose(got, want, atol=1e-10)
