"""Adaptive patch generation: tiling, grading, coalescing, manager.

The generation invariants pinned here are the ones the driver and the
byte-identity cross-backend tests lean on: the patch set tiles the
lattice disjointly and completely, every patch touching a (inflated)
body box is at the finest level, adjacent patches differ by at most one
level, bricks respect the coalescing cap, and the whole thing is a pure
function of its inputs.
"""

import numpy as np
import pytest

from repro.grids.bbox import AABB
from repro.offbody import OffBodyManager, Patch, PatchSystem

DOMAIN = AABB((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))
BODY = AABB((0.8, 0.8, 0.8), (1.2, 1.2, 1.2))


def make_system(**kw):
    kw.setdefault("points_per_patch", 4)
    kw.setdefault("max_level", 2)
    return PatchSystem(DOMAIN, 1.0, **kw)


def finest_spans(system, patches):
    """(lo, hi) integer spans of each patch in finest-level cell units."""
    return [system._span(p) for p in patches]


def assert_tiles_lattice(system, patches):
    """Patches cover every finest cell exactly once."""
    total = 1
    for n in system.ncells0:
        total *= n * (1 << system.max_level)
    covered = 0
    for lo, hi in finest_spans(system, patches):
        cells = 1
        for a, b in zip(lo, hi):
            cells *= b - a
        covered += cells
    assert covered == total
    # Disjoint interiors: no strict overlap between any two spans.
    spans = finest_spans(system, patches)
    for i in range(len(spans)):
        for j in range(i + 1, len(spans)):
            (alo, ahi), (blo, bhi) = spans[i], spans[j]
            assert not all(
                alo[d] < bhi[d] and blo[d] < ahi[d]
                for d in range(system.ndim)
            ), f"patches {i} and {j} overlap"


class TestGenerate:
    def test_tiles_disjoint_and_complete(self):
        system = make_system()
        patches = system.generate([BODY], margin=0.05)
        assert patches
        assert_tiles_lattice(system, patches)

    def test_bodies_tracked_at_finest_level(self):
        system = make_system()
        margin = 0.05
        patches = system.generate([BODY], margin=margin)
        target = BODY.inflated(margin)
        hit = [
            p for p in patches if system.patch_box(p).intersects(target)
        ]
        assert hit
        assert all(p.level == system.max_level for p in hit)

    def test_two_to_one_nesting(self):
        system = make_system()
        patches = system.generate([BODY], margin=0.05)
        for i, p in enumerate(patches):
            for q in patches[i + 1:]:
                if system.touches(p, q):
                    assert abs(p.level - q.level) <= 1

    def test_brick_cap_respected(self):
        for cap in (1, 2, 3, 4):
            system = make_system(max_brick_cells=cap)
            patches = system.generate([BODY], margin=0.05)
            assert all(max(p.shape) <= cap for p in patches)
            assert_tiles_lattice(system, patches)

    def test_coalescing_shrinks_patch_count_not_coverage(self):
        unit = make_system(max_brick_cells=1)
        brick = make_system(max_brick_cells=3)
        pu = unit.generate([BODY], margin=0.05)
        pb = brick.generate([BODY], margin=0.05)
        assert len(pb) < len(pu)
        # Coalescing must produce a spread of patch sizes — that spread
        # is what lets Algorithm 3's largest-first seeding bite.
        assert len({brick.patch_points(p) for p in pb}) > 1

    def test_pure_function_of_inputs(self):
        a = make_system().generate([BODY], margin=0.05)
        b = make_system().generate([BODY], margin=0.05)
        assert a == b

    def test_no_bodies_leaves_background_only(self):
        system = make_system()
        patches = system.generate([])
        assert all(p.level == 0 for p in patches)
        assert_tiles_lattice(system, patches)

    def test_patch_grid_matches_patch_points(self):
        system = make_system()
        for p in system.generate([BODY], margin=0.05):
            grid = system.patch_grid(p)
            assert grid.npoints == system.patch_points(p)
            box = system.patch_box(p)
            assert np.allclose(grid.origin, box.lo)

    def test_validation(self):
        with pytest.raises(ValueError):
            PatchSystem(DOMAIN, 0.0)
        with pytest.raises(ValueError):
            PatchSystem(DOMAIN, 1.0, points_per_patch=1)
        with pytest.raises(ValueError):
            PatchSystem(DOMAIN, 1.0, max_level=-1)
        with pytest.raises(ValueError):
            PatchSystem(DOMAIN, 1.0, max_brick_cells=0)


class TestPatchNames:
    def test_unit_cell_name(self):
        assert Patch(1, (2, 0, 3)).name == "ob1-2.0.3"

    def test_brick_name_carries_shape(self):
        assert Patch(1, (2, 0, 3), (3, 1, 2)).name == "ob1-2.0.3x3.1.2"
        assert Patch(1, (2, 0, 3), (3, 1, 2)).ncells == 6


class TestAdjacencyAndWeights:
    def test_adjacency_is_symmetric_touch(self):
        system = make_system()
        patches = system.generate([BODY], margin=0.05)
        edges = system.adjacency(patches)
        for i, j in edges:
            assert i < j
            assert system.touches(patches[i], patches[j])

    def test_fringe_weights_target_adjacent_patches(self):
        system = make_system()
        patches = system.generate([BODY], margin=0.05)
        edges = system.adjacency(patches)
        weights = system.fringe_weights(patches, edges)
        assert weights
        undirected = edges | {(j, i) for i, j in edges}
        for (recv, donor), w in weights.items():
            assert w > 0
            assert (recv, donor) in undirected
        # A patch can never receive more fringe donors than it has
        # fringe points.
        per_recv: dict = {}
        for (recv, _donor), w in weights.items():
            per_recv[recv] = per_recv.get(recv, 0) + w
        for recv, w in per_recv.items():
            assert w <= len(system.fringe_points(patches[recv]))


class TestManager:
    def test_layout_carries_consistent_sizes(self):
        mgr = OffBodyManager(DOMAIN, 1.0, points_per_patch=4, margin=0.05)
        layout = mgr.regenerate([BODY])
        assert layout.epoch == 0
        assert layout.npatches == len(layout.grids) == len(layout.sizes)
        assert layout.sizes == tuple(g.npoints for g in layout.grids)
        assert layout.total_points == sum(layout.sizes)
        assert sum(layout.level_counts().values()) == layout.npatches

    def test_churn_accounting_as_bodies_move(self):
        mgr = OffBodyManager(DOMAIN, 1.0, points_per_patch=4, margin=0.05)
        first = mgr.regenerate([BODY])
        assert first.created == first.npatches and first.destroyed == 0
        moved = AABB(BODY.lo + 0.5, BODY.hi + 0.5)
        second = mgr.regenerate([moved])
        assert second.epoch == 1
        assert second.created > 0 and second.destroyed > 0
        # Patch population stays a pure function of the boxes: re-running
        # from scratch on the moved box gives the same patch set.
        fresh = OffBodyManager(
            DOMAIN, 1.0, points_per_patch=4, margin=0.05
        ).regenerate([moved])
        assert fresh.patches == second.patches
        assert fresh.edges == second.edges
        assert fresh.weights == second.weights

    def test_static_bodies_mean_zero_churn(self):
        mgr = OffBodyManager(DOMAIN, 1.0, points_per_patch=4, margin=0.05)
        mgr.regenerate([BODY])
        again = mgr.regenerate([BODY])
        assert again.created == 0 and again.destroyed == 0
