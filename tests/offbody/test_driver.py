"""OffBodyDriver end-to-end on the simulator.

The load-bearing assertion lives here: on a seeded multi-body scenario,
Algorithm 3's connectivity-aware grouping moves strictly fewer DCF3D
bytes between ranks than naive round-robin (the paper's motivation for
grouping), measured through the same CommMatrix analytics the perf
observatory uses — not through grouping-internal counters.
"""

import pytest

from repro.machine.faults import RankFailure
from repro.obs import SpanTracer
from repro.obs.perf.comm_matrix import CommMatrix
from repro.offbody import (
    OffBodyDriver,
    build_offbody_case,
    generate_scenario,
)
from repro.obs.perf.bench import canonical_json

SCENARIO = generate_scenario("store-salvo", seed=7)


def small_case(**kw):
    payload = generate_scenario("store-salvo", seed=3, nbodies=2)
    return build_offbody_case(payload, **kw)


class TestRun:
    def test_end_to_end(self):
        case = small_case(nsteps=2)
        r = OffBodyDriver(case).run()
        assert r.nsteps == 2
        assert len(r.epochs) == 1
        assert r.elapsed > 0
        assert 0 < r.pct_dcf3d < 100
        assert r.mflops_per_node > 0
        assert r.partition_history
        e = r.epochs[0]
        assert e.npatches > 0 and e.created == e.npatches
        assert e.donors_total > 0 and e.search_steps_total > 0
        assert e.cut_edges + e.intra_edges > 0

    def test_adapt_interval_splits_epochs(self):
        case = small_case(nsteps=4)
        assert case.adapt_interval == 2
        r = OffBodyDriver(case).run()
        assert [e.first_step for e in r.epochs] == [0, 2]
        assert sum(e.nsteps for e in r.epochs) == 4

    def test_physics_signature_deterministic(self):
        a = OffBodyDriver(small_case(nsteps=2)).run()
        b = OffBodyDriver(small_case(nsteps=2)).run()
        assert canonical_json(a.physics_signature()) == canonical_json(
            b.physics_signature()
        )

    def test_offbody_trace_phases_present(self):
        tracer = SpanTracer()
        OffBodyDriver(small_case(nsteps=2), tracer=tracer).run()
        phases = {op[1] for op in tracer.ops}
        assert {"offbody:regen", "offbody:group", "overflow",
                "motion", "dcf3d"} <= phases
        mark_names = {m[1] for m in tracer.marks}
        assert {"offbody:regen", "offbody:group"} <= mark_names


class TestAlgorithm3Wins:
    """Algorithm 3 vs round-robin on the same scenario, same analytics."""

    @pytest.fixture(scope="class")
    def matrices(self):
        out = {}
        for strategy in ("algorithm3", "roundrobin"):
            case = build_offbody_case(SCENARIO, grouping=strategy)
            tracer = SpanTracer()
            run = OffBodyDriver(case, tracer=tracer).run()
            comm = CommMatrix.from_tracer(
                tracer, nranks=case.machine.nodes
            )
            out[strategy] = (run, comm)
        return out

    def test_alg3_moves_fewer_dcf3d_bytes(self, matrices):
        alg3 = matrices["algorithm3"][1].bytes_matrix("dcf3d").sum()
        rr = matrices["roundrobin"][1].bytes_matrix("dcf3d").sum()
        assert alg3 < rr

    def test_alg3_cuts_fewer_donor_points(self, matrices):
        for e3, er in zip(
            matrices["algorithm3"][0].epochs,
            matrices["roundrobin"][0].epochs,
        ):
            assert e3.cut_points <= er.cut_points
            assert e3.intra_edges >= er.intra_edges

    def test_alg3_balance_no_worse(self, matrices):
        tau3 = max(e.balance_tau for e in matrices["algorithm3"][0].epochs)
        taur = max(e.balance_tau for e in matrices["roundrobin"][0].epochs)
        assert tau3 <= taur

    def test_identical_physics_across_strategies(self, matrices):
        """Grouping moves work between ranks; it must not change IGBPs."""
        a = matrices["algorithm3"][0]
        r = matrices["roundrobin"][0]
        assert [e.igbp.accumulated().sum() for e in a.epochs] == [
            e.igbp.accumulated().sum() for e in r.epochs
        ]
        assert [e.donors_total for e in a.epochs] == [
            e.donors_total for e in r.epochs
        ]


class TestRecovery:
    def test_offbody_rank_failure_shrinks_and_completes(self):
        case = small_case(nsteps=4, nodes=6)  # 2 near-body + 4 groups
        fail_rank = case.n_near + 1
        r = OffBodyDriver(
            case, fault_plan=[f"rank={fail_rank}@step=1"]
        ).run()
        assert r.nsteps == 4
        assert len(r.recoveries) == 1
        rec = r.recoveries[0]
        assert rec.failed_ranks == (fail_rank,)
        assert rec.nprocs_after == rec.nprocs_before - 1
        assert r.downtime > 0
        # Post-recovery epochs regroup onto fewer ranks.
        assert len(r.partition_history[-1][1]) <= rec.nprocs_after

    def test_near_body_rank_failure_is_fatal(self):
        case = small_case(nsteps=2, nodes=6)
        with pytest.raises(RankFailure):
            OffBodyDriver(case, fault_plan=["rank=0@step=0"]).run()

    def test_cannot_shrink_below_one_group(self):
        case = small_case(nsteps=2, nodes=3)  # 2 near-body + 1 group
        with pytest.raises(RankFailure):
            OffBodyDriver(
                case, fault_plan=[f"rank={case.n_near}@step=0"]
            ).run()


class TestValidation:
    def test_unknown_grouping_rejected(self):
        with pytest.raises(ValueError, match="grouping"):
            small_case(grouping="metis")

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            small_case(nodes=2)  # 2 near-body grids need >= 3

    def test_sanitizer_needs_sim_backend(self):
        with pytest.raises(ValueError, match="sim"):
            OffBodyDriver(small_case(), sanitizer=object(), backend="mp")
