"""Seeded scenario generator: determinism, schema, registry plumbing."""

import json

import pytest

from repro.cases import UnknownCaseError, case_entry
from repro.offbody import (
    SCENARIO_KINDS,
    SCENARIO_SCHEMA,
    ScenarioError,
    build_offbody_case,
    generate_scenario,
    load_scenario,
    register_scenario_case,
    scenario_json,
    write_scenario,
)


class TestGenerate:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_same_seed_same_bytes(self, kind):
        a = scenario_json(generate_scenario(kind, seed=11))
        b = scenario_json(generate_scenario(kind, seed=11))
        assert a == b

    def test_different_seeds_differ(self):
        a = scenario_json(generate_scenario("debris", seed=1))
        b = scenario_json(generate_scenario("debris", seed=2))
        assert a != b

    def test_payload_shape(self):
        payload = generate_scenario("formation", seed=5, nbodies=3)
        assert payload["schema"] == SCENARIO_SCHEMA
        assert payload["kind"] == "formation"
        assert payload["seed"] == 5
        assert len(payload["bodies"]) == 3
        assert payload["run"]["nodes"] >= len(payload["bodies"]) + 1
        # Canonical form is plain sorted-key JSON.
        blob = scenario_json(payload)
        assert blob == json.dumps(
            json.loads(blob), sort_keys=True, separators=(",", ":")
        ) + "\n"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="kind"):
            generate_scenario("kitchen-sink", seed=1)

    def test_bad_nbodies_rejected(self):
        with pytest.raises(ScenarioError):
            generate_scenario("debris", seed=1, nbodies=0)


class TestRoundtrip:
    def test_write_load_roundtrip(self, tmp_path):
        payload = generate_scenario("store-salvo", seed=7)
        path = write_scenario(payload, tmp_path / "s.json")
        assert load_scenario(path) == payload

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ nope")
        with pytest.raises(ScenarioError):
            load_scenario(bad)
        with pytest.raises(ScenarioError):
            load_scenario(tmp_path / "missing.json")

    def test_load_rejects_wrong_schema(self, tmp_path):
        payload = generate_scenario("debris", seed=3)
        payload["schema"] = "repro-scenario/999"
        p = tmp_path / "s.json"
        p.write_text(json.dumps(payload))
        with pytest.raises(ScenarioError, match="schema"):
            load_scenario(p)

    def test_load_rejects_missing_sections(self, tmp_path):
        payload = generate_scenario("debris", seed=3)
        del payload["bodies"]
        p = tmp_path / "s.json"
        p.write_text(json.dumps(payload))
        with pytest.raises(ScenarioError):
            load_scenario(p)


class TestBuildCase:
    def test_case_follows_run_block(self):
        payload = generate_scenario("store-salvo", seed=7)
        case = build_offbody_case(payload)
        run = payload["run"]
        assert case.name == payload["name"]
        assert case.nsteps == run["nsteps"]
        assert case.machine.nodes == run["nodes"]
        assert case.grouping == run["grouping"]
        assert case.n_near == len(payload["bodies"])
        assert set(case.motions) == set(range(case.n_near))

    def test_overrides_win(self):
        payload = generate_scenario("store-salvo", seed=7)
        case = build_offbody_case(
            payload, nodes=9, nsteps=2, grouping="roundrobin"
        )
        assert case.machine.nodes == 9
        assert case.nsteps == 2
        assert case.grouping == "roundrobin"

    def test_motion_is_prescribed_and_deterministic(self):
        payload = generate_scenario("debris", seed=9, nbodies=1)
        a = build_offbody_case(payload)
        b = build_offbody_case(payload)
        xa = a.motions[0].at(0.1).apply(a.near_body[0].xyz)
        xb = b.motions[0].at(0.1).apply(b.near_body[0].xyz)
        assert (xa == xb).all()
        # And it actually moves.
        assert (xa != a.near_body[0].xyz).any()


class TestRegistry:
    def test_register_then_build_by_name(self):
        payload = generate_scenario("formation", seed=13)
        name = payload["name"]
        with pytest.raises(UnknownCaseError):
            case_entry(name)
        entry = register_scenario_case(payload, source="mem")
        assert entry.kind == "offbody"
        assert case_entry(name) is entry
        case = entry.builder(nsteps=1)
        assert case.name == name and case.nsteps == 1

    def test_reregistration_replaces(self):
        payload = generate_scenario("formation", seed=13)
        a = register_scenario_case(payload)
        b = register_scenario_case(payload)
        assert case_entry(payload["name"]) is b
        assert a is not b
