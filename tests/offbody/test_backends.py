"""Cross-backend byte-identity for the off-body driver.

The physics signature — per-epoch IGBP series, donor counts, orphan
counts, patch populations — must serialize byte-identically whether the
rank programs execute on the deterministic simulator or on real
multiprocessing ranks.  Connectivity is derived from absolute time on
every rank, so there is nothing rank-private to drift.
"""

import pytest

from repro.obs.perf.bench import canonical_json
from repro.offbody import OffBodyDriver, build_offbody_case, generate_scenario


def small_case():
    payload = generate_scenario("store-salvo", seed=3, nbodies=2)
    return build_offbody_case(payload, nsteps=2)


@pytest.mark.mp
class TestMultiprocessing:
    def test_mp_matches_sim_byte_for_byte(self):
        sim = OffBodyDriver(small_case(), backend="sim").run()
        mp = OffBodyDriver(small_case(), backend="mp").run()
        assert canonical_json(mp.physics_signature()) == canonical_json(
            sim.physics_signature()
        )

    def test_mp_reports_measured_time(self):
        r = OffBodyDriver(small_case(), backend="mp").run()
        assert r.elapsed > 0
        assert r.nsteps == 2
