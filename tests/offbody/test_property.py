"""Hypothesis battery: off-body generation and grouping invariants.

Randomized body boxes, refinement depths and brick caps must never
break the structural invariants the driver assumes: bodies tracked at
the finest level, 2:1 nesting between touching patches, a disjoint and
complete tiling of the lattice, brick shapes within the cap, and a
layout that is a pure function of its inputs.  On top of the layout,
Algorithm 3's grouping must stay a deterministic total assignment whose
cut/intra edge split partitions the connectivity graph.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.grids.bbox import AABB  # noqa: E402
from repro.offbody import PatchSystem  # noqa: E402
from repro.partition import group_grids, round_robin_grids  # noqa: E402

DOMAIN = AABB((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))

coord = st.floats(min_value=0.1, max_value=1.6, allow_nan=False)
body_box = st.tuples(coord, coord, coord, st.floats(
    min_value=0.05, max_value=0.5, allow_nan=False
)).map(lambda t: AABB(t[:3], tuple(c + t[3] for c in t[:3])))
body_boxes = st.lists(body_box, min_size=1, max_size=3)

systems = st.builds(
    PatchSystem,
    st.just(DOMAIN),
    st.just(1.0),
    points_per_patch=st.integers(min_value=3, max_value=5),
    max_level=st.integers(min_value=1, max_value=2),
    max_brick_cells=st.integers(min_value=1, max_value=3),
)


def finest_cells(system, p):
    n = 1
    for a, b in zip(*system._span(p)):
        n *= b - a
    return n


class TestGenerationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(system=systems, boxes=body_boxes)
    def test_bodies_covered_at_finest_level(self, system, boxes):
        margin = 0.05
        patches = system.generate(boxes, margin=margin)
        for box in boxes:
            target = box.inflated(margin)
            hit = [
                p for p in patches
                if system.patch_box(p).intersects(target)
            ]
            assert hit, "every body box lies inside the lattice"
            assert all(p.level == system.max_level for p in hit)

    @settings(max_examples=25, deadline=None)
    @given(system=systems, boxes=body_boxes)
    def test_two_to_one_nesting(self, system, boxes):
        patches = system.generate(boxes, margin=0.05)
        for i, p in enumerate(patches):
            for q in patches[i + 1:]:
                if system.touches(p, q):
                    assert abs(p.level - q.level) <= 1

    @settings(max_examples=25, deadline=None)
    @given(system=systems, boxes=body_boxes)
    def test_tiling_complete_disjoint_and_capped(self, system, boxes):
        patches = system.generate(boxes, margin=0.05)
        total = 1
        for n in system.ncells0:
            total *= n * (1 << system.max_level)
        assert sum(finest_cells(system, p) for p in patches) == total
        spans = [system._span(p) for p in patches]
        for i in range(len(spans)):
            for j in range(i + 1, len(spans)):
                (alo, ahi), (blo, bhi) = spans[i], spans[j]
                assert not all(
                    alo[d] < bhi[d] and blo[d] < ahi[d] for d in range(3)
                )
        assert all(max(p.shape) <= system.max_brick_cells for p in patches)

    @settings(max_examples=15, deadline=None)
    @given(system=systems, boxes=body_boxes)
    def test_pure_function_no_orphan_weights(self, system, boxes):
        patches = system.generate(boxes, margin=0.05)
        again = system.generate(boxes, margin=0.05)
        assert patches == again
        edges = system.adjacency(patches)
        weights = system.fringe_weights(patches, edges)
        undirected = edges | {(j, i) for i, j in edges}
        assert all(pair in undirected for pair in weights)


sizes_st = st.lists(
    st.integers(min_value=1, max_value=500), min_size=1, max_size=12
)
ngroups_st = st.integers(min_value=1, max_value=4)


def draw_connectivity(data, n):
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if not pairs:
        return set()
    return set(data.draw(
        st.lists(st.sampled_from(pairs), max_size=2 * n, unique=True)
    ))


class TestGroupingInvariants:
    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_st, ngroups=ngroups_st, data=st.data())
    def test_assignment_total_and_deterministic(self, sizes, ngroups,
                                                data):
        conn = draw_connectivity(data, len(sizes))
        a = group_grids(sizes, conn, ngroups)
        b = group_grids(sizes, conn, ngroups)
        assert a.group_of == b.group_of
        assert all(0 <= g < ngroups for g in a.group_of)
        assert sum(a.group_points) == sum(sizes)

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_st, ngroups=ngroups_st, data=st.data())
    def test_cut_and_intra_partition_the_edges(self, sizes, ngroups,
                                               data):
        conn = draw_connectivity(data, len(sizes))
        for r in (group_grids(sizes, conn, ngroups),
                  round_robin_grids(sizes, ngroups)):
            assert r.cut_edges(conn) + r.intra_group_edges(conn) == len(
                conn
            )
            weights = {e: 10 for e in conn}
            assert r.cut_weight(weights) == 10 * r.cut_edges(conn)

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_st, ngroups=ngroups_st)
    def test_round_robin_is_balanced_by_count(self, sizes, ngroups):
        r = round_robin_grids(sizes, ngroups)
        counts = [r.group_of.count(g) for g in range(ngroups)]
        assert max(counts) - min(counts) <= 1
