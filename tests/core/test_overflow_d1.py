"""Integration tests for the OVERFLOW-D1 performance driver."""

import math

import numpy as np
import pytest

from repro.cases import airfoil_case
from repro.core import OverflowD1, speedup_table
from repro.core.overflow_d1 import (
    PHASE_DCF,
    PHASE_FLOW,
    PHASE_MOTION,
    _halo_neighbors,
    _shared_face,
)
from repro.grids.subdomain import Box
from repro.machine import sp, sp2
from repro.partition import build_partition

SCALE = 0.05  # tiny grids: fast tests, same code paths


def run(nodes=4, nsteps=3, **kw):
    cfg = airfoil_case(machine=sp2(nodes=nodes), scale=SCALE,
                       nsteps=nsteps, **kw)
    return OverflowD1(cfg).run(), cfg


class TestSharedFace:
    def test_abutting_boxes(self):
        a = Box((0, 0), (4, 6))
        b = Box((4, 0), (8, 6))
        assert _shared_face(a, b) == 6

    def test_partial_overlap_range(self):
        a = Box((0, 0), (4, 4))
        b = Box((4, 2), (8, 8))
        assert _shared_face(a, b) == 2

    def test_disjoint(self):
        a = Box((0, 0), (4, 4))
        b = Box((6, 0), (8, 4))
        assert _shared_face(a, b) == 0

    def test_corner_touch_is_not_face(self):
        a = Box((0, 0), (4, 4))
        b = Box((4, 4), (8, 8))
        assert _shared_face(a, b) == 0

    def test_neighbors_symmetric(self):
        part = build_partition([(20, 20), (30, 10)], 6)
        nbrs = _halo_neighbors(part)
        for r, lst in enumerate(nbrs):
            for other, shared in lst:
                assert (r, shared) in [
                    (a, s) for a, s in nbrs[other]
                ]
                # Neighbours always on the same grid.
                assert part.grid_of_rank(other) == part.grid_of_rank(r)


class TestRun:
    def test_basic_run(self):
        result, cfg = run(nodes=4, nsteps=3)
        assert result.nprocs == 4
        assert result.nsteps == 3
        assert result.elapsed > 0
        assert result.time_per_step == pytest.approx(result.elapsed / 3)

    def test_phases_present(self):
        result, _ = run()
        assert result.phase_total(PHASE_FLOW) > 0
        assert result.phase_total(PHASE_DCF) > 0
        assert result.phase_total(PHASE_MOTION) > 0

    def test_pct_dcf3d_in_range(self):
        result, _ = run()
        assert 0 < result.pct_dcf3d < 100

    def test_flops_accounted(self):
        result, cfg = run(nodes=4, nsteps=3)
        # At least the flow-solve arithmetic must be charged.
        min_flow = 3 * sum(
            cfg.work.flow_flops(g.npoints, g.viscous, g.turbulence, 2)
            for g in cfg.grids
        )
        assert result.total_flops >= min_flow

    def test_deterministic(self):
        r1, _ = run(nodes=3, nsteps=2)
        r2, _ = run(nodes=3, nsteps=2)
        assert r1.elapsed == r2.elapsed

    def test_more_nodes_faster(self):
        r3, _ = run(nodes=3, nsteps=3)
        r12, _ = run(nodes=12, nsteps=3)
        assert r12.time_per_step < r3.time_per_step

    def test_speedup_reasonable(self):
        r3, _ = run(nodes=3, nsteps=3)
        r12, _ = run(nodes=12, nsteps=3)
        speedup = r3.time_per_step / r12.time_per_step
        assert 1.5 < speedup < 6.0  # ideal is 4

    def test_sp_faster_than_sp2(self):
        cfg2 = airfoil_case(machine=sp2(nodes=4), scale=SCALE, nsteps=2)
        cfgp = airfoil_case(machine=sp(nodes=4), scale=SCALE, nsteps=2)
        t2 = OverflowD1(cfg2).run().time_per_step
        tp = OverflowD1(cfgp).run().time_per_step
        assert tp < t2

    def test_static_partition_stable_with_infinite_f0(self):
        result, _ = run(nodes=6, nsteps=4)
        assert len(result.partition_history) == 1

    def test_warmup_steps_excluded_from_metrics(self):
        ra, _ = run(nodes=3, nsteps=2)
        # Warmup already defaults to 1; more warmup should not change
        # the number of measured steps.
        cfg = airfoil_case(machine=sp2(nodes=3), scale=SCALE, nsteps=2)
        cfg.warmup_steps = 3
        rb = OverflowD1(cfg).run()
        assert rb.nsteps == 2
        assert sum(e.nsteps for e in rb.epochs) == 2


class TestDynamicLoadBalance:
    def test_finite_f0_runs_in_epochs(self):
        cfg = airfoil_case(
            machine=sp2(nodes=6), scale=SCALE, nsteps=6, f0=5.0
        )
        cfg.lb_check_interval = 2
        result = OverflowD1(cfg).run()
        assert sum(e.nsteps for e in result.epochs) == 6
        assert len(result.epochs) == 3

    def test_low_f0_can_repartition(self):
        """With a very aggressive threshold the partition may change;
        either way processors are conserved and the run completes."""
        cfg = airfoil_case(
            machine=sp2(nodes=6), scale=SCALE, nsteps=6, f0=1.2
        )
        cfg.lb_check_interval = 2
        result = OverflowD1(cfg).run()
        for _, procs in result.partition_history:
            assert sum(procs) == 6

    def test_igbp_counts_collected(self):
        result, _ = run(nodes=4, nsteps=3)
        igbp = result.epochs[0].igbp_per_rank_step
        assert igbp.shape == (3, 4)
        assert igbp.sum() > 0


class TestSpeedupTable:
    def test_table_from_runs(self):
        runs = []
        for nodes in (3, 6, 12):
            cfg = airfoil_case(machine=sp2(nodes=nodes), scale=SCALE,
                               nsteps=2)
            runs.append(OverflowD1(cfg).run())
        total = airfoil_case(machine=sp2(nodes=3), scale=SCALE).total_gridpoints
        table = speedup_table(runs, total)
        assert [r["nodes"] for r in table.rows] == [3, 6, 12]
        assert table.rows[0]["speedup"] == pytest.approx(1.0)
        assert table.rows[2]["speedup"] > table.rows[1]["speedup"] > 1.0
        # Formatted output contains the headers.
        text = table.format()
        assert "%dcf3d" in text and "speedup" in text

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            speedup_table([], 1000)
