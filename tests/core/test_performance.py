"""Tests for performance-table assembly and the serial baseline."""

import pytest

from repro.cases import airfoil_case
from repro.core import OverflowD1, serial_time_per_step, speedup_table
from repro.core.performance import PerformanceTable
from repro.machine import cray_ymp, sp2


@pytest.fixture(scope="module")
def runs():
    out = []
    for nodes in (3, 6):
        cfg = airfoil_case(machine=sp2(nodes=nodes), scale=0.05, nsteps=2)
        out.append(OverflowD1(cfg).run())
    return out, airfoil_case(machine=sp2(nodes=3), scale=0.05).total_gridpoints


class TestSpeedupTable:
    def test_base_row_is_unity(self, runs):
        rs, total = runs
        table = speedup_table(rs, total)
        base = table.rows[0]
        assert base["speedup"] == pytest.approx(1.0)
        assert base["speedup_overflow"] == pytest.approx(1.0)
        assert base["speedup_dcf3d"] == pytest.approx(1.0)

    def test_rows_sorted_by_nodes(self, runs):
        rs, total = runs
        table = speedup_table(list(reversed(rs)), total)
        assert [r["nodes"] for r in table.rows] == [3, 6]

    def test_gridpoints_per_node(self, runs):
        rs, total = runs
        table = speedup_table(rs, total)
        assert table.rows[0]["gridpoints/node"] == pytest.approx(total / 3)

    def test_format_contains_all_rows(self, runs):
        rs, total = runs
        text = speedup_table(rs, total).format()
        assert text.count("\n") >= 3
        for header in speedup_table(rs, total).headers():
            assert header in text


class TestSerialBaseline:
    def test_positive_and_scales_with_points(self):
        small = airfoil_case(machine=cray_ymp(), scale=0.05, nsteps=1)
        big = airfoil_case(machine=cray_ymp(), scale=0.2, nsteps=1)
        t_small = serial_time_per_step(small)
        t_big = serial_time_per_step(big)
        assert 0 < t_small < t_big

    def test_rejects_multinode_machine(self):
        cfg = airfoil_case(machine=sp2(nodes=4), scale=0.05, nsteps=1)
        with pytest.raises(ValueError, match="1-node"):
            serial_time_per_step(cfg)

    def test_parallel_beats_serial(self):
        """A 12-node SP2 run must beat the single YMP processor (the
        point of Table 6)."""
        ymp_cfg = airfoil_case(machine=cray_ymp(), scale=0.1, nsteps=2)
        t_serial = serial_time_per_step(ymp_cfg)
        par_cfg = airfoil_case(machine=sp2(nodes=12), scale=0.1, nsteps=2)
        t_parallel = OverflowD1(par_cfg).run().time_per_step
        assert t_parallel < t_serial
