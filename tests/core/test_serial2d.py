"""Integration tests for the real-physics serial overset driver."""

import numpy as np
import pytest

from repro.cases.airfoil import AIRFOIL_SEARCH_LISTS, airfoil_grids
from repro.core import Overset2D
from repro.grids.generators import annulus_grid, cartesian_background
from repro.motion import PitchOscillation
from repro.solver import FlowConfig
from repro.solver.state import primitive


@pytest.fixture(scope="module")
def driver():
    grids = airfoil_grids(scale=0.04)
    return Overset2D(
        grids,
        FlowConfig(mach=0.5, cfl=2.0, reynolds=1e4),
        AIRFOIL_SEARCH_LISTS,
        motions={0: PitchOscillation()},
        fringe_layers=2,
    )


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Overset2D([], FlowConfig(), {})

    def test_rejects_3d(self):
        bg = cartesian_background("bg", (0, 0, 0), (1, 1, 1), (4, 4, 4))
        with pytest.raises(ValueError, match="2-D"):
            Overset2D([bg], FlowConfig(), {})

    def test_initial_connectivity(self, driver):
        rep = driver.last_report
        assert rep.igbps > 0
        assert rep.donors_found > 0.9 * rep.igbps

    def test_igbp_ratio(self, driver):
        assert 0.0 < driver.igbp_ratio() < 0.3


class TestCoupledStepping:
    def test_steps_stay_physical(self, driver):
        for _ in range(5):
            out = driver.step()
        for s in driver.solvers:
            rho, _, _, p = primitive(s.q)
            active = s.iblank == 1
            assert rho[active].min() > 0
            assert p[active].min() > 0

    def test_grid_actually_moves(self, driver):
        x_before = driver.solvers[0].xyz.copy()
        driver.step()
        assert not np.allclose(driver.solvers[0].xyz, x_before)

    def test_stationary_grids_do_not_move(self, driver):
        x_before = driver.solvers[2].xyz.copy()
        driver.step()
        assert np.allclose(driver.solvers[2].xyz, x_before)

    def test_connectivity_redone_each_moving_step(self, driver):
        r1 = driver.last_report
        driver.step()
        r2 = driver.last_report
        assert r2 is not r1

    def test_restart_cache_reduces_steps(self):
        grids = airfoil_grids(scale=0.04)
        drv = Overset2D(
            grids, FlowConfig(mach=0.5, cfl=2.0, reynolds=1e4),
            AIRFOIL_SEARCH_LISTS, motions={0: PitchOscillation()},
            fringe_layers=2,
        )
        cold_steps = drv.last_report.search_steps
        drv.step()
        warm_steps = drv.last_report.search_steps
        assert warm_steps < 0.5 * cold_steps

    def test_forces_available(self, driver):
        f = driver.surface_forces(0)
        assert np.isfinite(f["fx"]) and np.isfinite(f["fy"])


class TestStaticOversetInterpolation:
    def test_fringe_carries_freestream(self):
        """Two static overlapping grids initialised to freestream: the
        interpolated fringe values equal freestream exactly."""
        mid = annulus_grid("mid", ni=41, nj=11, r_inner=1.0, r_outer=2.5,
                           center=(0.0, 0.0))
        bg = cartesian_background("bg", (-4, -4), (4, 4), (33, 33))
        drv = Overset2D([mid, bg], FlowConfig(mach=0.8), {0: [1], 1: [0]})
        drv._exchange_fringe()
        qinf = FlowConfig(mach=0.8).freestream()
        s = drv.igbp_sets[0]
        got = drv.solvers[0].q.reshape(-1, 4)[s.flat_indices]
        assert np.allclose(got, qinf, atol=1e-12)

    def test_orphan_points_left_untouched(self):
        mid = annulus_grid("mid", ni=21, nj=9, r_inner=1.0, r_outer=2.0,
                           center=(0.0, 0.0))
        bg = cartesian_background("bg", (-0.4, -0.4), (0.4, 0.4), (5, 5))
        drv = Overset2D([mid, bg], FlowConfig(mach=0.8), {0: [1], 1: [0]})
        assert drv.last_report.orphans > 0  # annulus fringe uncovered
