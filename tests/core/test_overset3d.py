"""Integration tests for the 3-D real-physics overset driver."""

import numpy as np
import pytest

from repro.core import Overset3D, OversetDriver
from repro.grids.generators import (
    body_of_revolution_grid,
    cartesian_background,
)
from repro.motion import SteadyDescent
from repro.solver import FlowConfig
from repro.solver.state import primitive3d


@pytest.fixture(scope="module")
def driver():
    store = body_of_revolution_grid(
        "store", ni=21, nj=17, nk=9, viscous=False,
        length=1.0, body_radius=0.15, outer_radius=0.4,
        nose_bluntness=0.35,
    )
    bg = cartesian_background(
        "bg", (-0.5, -1.0, -0.6), (1.5, 0.6, 0.6), (25, 19, 15)
    )
    return Overset3D(
        [store, bg],
        FlowConfig(mach=0.6, cfl=1.5),
        {0: [1], 1: [0]},
        motions={0: SteadyDescent(velocity=(0.0, -0.05, 0.0))},
        fringe_layers=1,
    )


class TestConstruction:
    def test_rejects_2d_grids(self):
        bg = cartesian_background("bg", (0, 0), (1, 1), (5, 5))
        with pytest.raises(ValueError, match="3-D only"):
            Overset3D([bg], FlowConfig(), {})

    def test_mixed_dimensionality_rejected(self):
        bg2 = cartesian_background("a", (0, 0), (1, 1), (5, 5))
        bg3 = cartesian_background("b", (0, 0, 0), (1, 1, 1), (5, 5, 5))
        with pytest.raises(ValueError):
            OversetDriver([bg3, bg2], FlowConfig(), {})

    def test_initial_connectivity_nearly_complete(self, driver):
        rep = driver.last_report
        assert rep.igbps > 0
        # A few hole-fringe points of the coarse background sit inside
        # the body itself (single-layer fringe); everything else finds
        # a donor.
        assert rep.donors_found > 0.9 * rep.igbps

    def test_background_hole_at_store(self, driver):
        assert (driver.iblanks[1] == 0).sum() > 0


class TestCoupledStepping3D:
    def test_steps_stay_physical(self, driver):
        for _ in range(4):
            out = driver.step()
        for s in driver.solvers:
            rho, _, _, _, p = primitive3d(s.q)
            active = s.iblank == 1
            assert rho[active].min() > 0
            assert p[active].min() > 0

    def test_store_actually_descends(self, driver):
        y0 = driver.solvers[0].xyz[..., 1].mean()
        driver.step()
        assert driver.solvers[0].xyz[..., 1].mean() < y0

    def test_restart_cache_warm(self, driver):
        driver.step()
        rep = driver.last_report
        # Warm searches: ~1 step per IGBP.
        assert rep.search_steps < 3 * rep.igbps

    def test_forces_available(self, driver):
        f = driver.surface_forces(0)
        assert np.isfinite(f["fx"]) and np.isfinite(f["fz"])

    def test_fringe_carries_freestream_initially(self):
        store = body_of_revolution_grid(
            "store", ni=17, nj=13, nk=7, viscous=False, outer_radius=0.4
        )
        bg = cartesian_background(
            "bg", (-0.5, -0.8, -0.6), (1.5, 0.8, 0.6), (13, 11, 9)
        )
        drv = Overset3D(
            [store, bg], FlowConfig(mach=0.6), {0: [1], 1: [0]}
        )
        drv._exchange_fringe()
        s = drv.igbp_sets[0]
        got = drv.solvers[0].q.reshape(-1, 5)[s.flat_indices]
        assign = drv.assignments[0]
        filled = assign["donor_grid"] >= 0
        assert np.allclose(got[filled], drv.solvers[0].qinf, atol=1e-12)
