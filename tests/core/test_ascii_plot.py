"""Tests for the ASCII chart renderer."""

import pytest

from repro.core.ascii_plot import line_chart, speedup_chart


class TestLineChart:
    def test_renders_markers_and_axes(self):
        out = line_chart(
            {"a": [(1, 1), (2, 4)], "b": [(1, 2), (2, 2)]},
            title="demo", xlabel="x", ylabel="y",
        )
        assert "demo" in out
        assert "o" in out and "x" in out  # series markers
        assert "|" in out and "+" in out  # axes
        assert "o a" in out and "x b" in out  # legend

    def test_single_point_series(self):
        out = line_chart({"a": [(1.0, 1.0)]})
        assert "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_degenerate_ranges_handled(self):
        out = line_chart({"a": [(1, 5), (1, 5)]})
        assert "o" in out

    def test_monotone_series_rises_left_to_right(self):
        out = line_chart({"a": [(0, 0), (10, 10)]}, width=40, height=10)
        rows = [r for r in out.splitlines() if "|" in r]
        first_mark = min(
            (i for i, r in enumerate(rows) if "o" in r), default=None
        )
        last_mark = max(
            (i for i, r in enumerate(rows) if "o" in r), default=None
        )
        # Highest y (top row) must hold the right-end marker.
        assert first_mark == 0
        assert last_mark == len(rows) - 1


class TestSpeedupChart:
    def test_from_table_rows(self):
        rows = [
            {"nodes": 6, "speedup": 1.0, "speedup_overflow": 1.0,
             "speedup_dcf3d": 1.0},
            {"nodes": 12, "speedup": 1.9, "speedup_overflow": 2.0,
             "speedup_dcf3d": 1.4},
            {"nodes": 24, "speedup": 3.6, "speedup_overflow": 4.1,
             "speedup_dcf3d": 2.0},
        ]
        out = speedup_chart(rows, title="fig 5")
        assert "fig 5" in out
        assert "ideal" in out and "dcf3d" in out
        assert "processors" in out
