"""Tests for CaseConfig validation."""

import math

import pytest

from repro.core import CaseConfig
from repro.grids.generators import annulus_grid, cartesian_background
from repro.machine import sp2


def grids():
    return [
        annulus_grid("mid", ni=21, nj=9),
        cartesian_background("bg", (-4, -4), (4, 4), (17, 17)),
    ]


def make(**kw):
    defaults = dict(
        name="t",
        grids=grids(),
        machine=sp2(nodes=2),
        search_lists={0: [1], 1: [0]},
    )
    defaults.update(kw)
    return CaseConfig(**defaults)


class TestValidation:
    def test_valid(self):
        cfg = make()
        assert cfg.total_gridpoints == 21 * 9 + 17 * 17
        assert cfg.ndim == 2

    def test_no_grids(self):
        with pytest.raises(ValueError, match="at least one grid"):
            make(grids=[])

    def test_bad_search_list_key(self):
        with pytest.raises(ValueError, match="unknown grid"):
            make(search_lists={7: [0]})

    def test_bad_search_list_entry(self):
        with pytest.raises(ValueError, match="out of range"):
            make(search_lists={0: [9]})

    def test_self_donation(self):
        with pytest.raises(ValueError, match="cannot donate to itself"):
            make(search_lists={0: [0]})

    def test_motion_for_unknown_grid(self):
        from repro.motion import SteadyDescent

        with pytest.raises(ValueError, match="motion for unknown"):
            make(motions={5: SteadyDescent()})

    def test_bad_steps_dt(self):
        with pytest.raises(ValueError, match="nsteps"):
            make(nsteps=0)
        with pytest.raises(ValueError, match="dt"):
            make(dt=0.0)
        with pytest.raises(ValueError, match="warmup"):
            make(warmup_steps=-1)

    def test_default_f0_is_static_only(self):
        assert math.isinf(make().f0)
