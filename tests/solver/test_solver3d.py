"""Integration tests for the 3-D flow solver."""

import numpy as np
import pytest

from repro.grids.generators import (
    body_of_revolution_grid,
    cartesian_background,
    extruded_wing_grid,
)
from repro.solver import FlowConfig, Solver3D
from repro.solver.flux3d import (
    inviscid_residual3d,
    physical_fluxes3d,
    spectral_radii3d,
)
from repro.grids.gridmetrics3d import metrics3d
from repro.solver.state import conservative3d, primitive3d


def freestream_field(shape, mach=0.8, alpha=0.0):
    cfg = FlowConfig(mach=mach, alpha=alpha)
    return np.broadcast_to(cfg.freestream3d(), shape + (5,)).copy()


class TestState3D:
    def test_roundtrip(self):
        q = conservative3d(1.3, 0.2, -0.4, 0.6, 0.8)
        rho, u, v, w, p = primitive3d(q)
        assert rho == pytest.approx(1.3)
        assert w == pytest.approx(0.6)
        assert p == pytest.approx(0.8)

    def test_freestream3d_sound_speed_one(self):
        cfg = FlowConfig(mach=0.8)
        q = cfg.freestream3d()
        rho, u, v, w, p = primitive3d(q)
        assert np.sqrt(1.4 * p / rho) == pytest.approx(1.0)
        assert np.sqrt(u * u + v * v + w * w) == pytest.approx(0.8)


class TestFlux3D:
    def test_mass_momentum_fluxes(self):
        q = conservative3d(2.0, 1.0, 0.0, 0.5, 0.7)[None, None, None]
        F, G, H = physical_fluxes3d(q, 1.4)
        assert F[0, 0, 0, 0] == pytest.approx(2.0)   # rho u
        assert H[0, 0, 0, 0] == pytest.approx(1.0)   # rho w
        assert F[0, 0, 0, 1] == pytest.approx(2.0 + 0.7)  # rho u^2 + p

    def test_spectral_radii_uniform(self):
        g = cartesian_background("bg", (0, 0, 0), (7, 7, 7), (8, 8, 8))
        m = metrics3d(g.xyz)
        q = freestream_field(g.dims, mach=0.5)
        lam = spectral_radii3d(q, m, 1.4)
        # Unit spacing: J = 1, |grad xi| = 1 -> lam_xi = |u| + c = 1.5.
        assert np.allclose(lam[0], 1.5)
        assert np.allclose(lam[1], 1.0)

    def test_freestream_preserved_curvilinear(self):
        """The GCL metrics make uniform flow an exact discrete steady
        state even on the store body grid."""
        g = body_of_revolution_grid("s", ni=21, nj=17, nk=9)
        m = metrics3d(g.xyz)
        q = freestream_field(g.dims, mach=0.8, alpha=0.15)
        r = inviscid_residual3d(q, m, 1.4, k2=0.5, k4=0.016)
        assert np.abs(r).max() < 1e-11


class TestSolver3D:
    def test_rejects_2d_grid(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (5, 5))
        with pytest.raises(ValueError, match="3-D"):
            Solver3D(g, FlowConfig())

    def test_rejects_turbulent_grid(self):
        g = body_of_revolution_grid("s", ni=15, nj=13, nk=7,
                                    turbulence=True)
        with pytest.raises(NotImplementedError):
            Solver3D(g, FlowConfig())

    def test_background_holds_freestream(self):
        bg = cartesian_background("bg", (0, 0, 0), (4, 4, 4), (10, 10, 10))
        s = Solver3D(bg, FlowConfig(mach=0.8, alpha=0.1, cfl=3.0))
        q0 = s.q.copy()
        for _ in range(3):
            s.step()
        assert np.allclose(s.q, q0, atol=1e-12)

    def test_store_body_run_stable(self):
        bor = body_of_revolution_grid("store", ni=25, nj=17, nk=11,
                                      viscous=False)
        s = Solver3D(bor, FlowConfig(mach=0.6, cfl=1.5))
        for _ in range(8):
            s.step()
        rho, _, _, _, p = primitive3d(s.q)
        assert rho.min() > 0 and p.min() > 0

    def test_axisymmetric_forces_symmetric(self):
        bor = body_of_revolution_grid("store", ni=25, nj=17, nk=11,
                                      viscous=False)
        s = Solver3D(bor, FlowConfig(mach=0.6, alpha=0.0, cfl=1.5))
        for _ in range(8):
            s.step()
        f = s.surface_forces()
        # Side forces vanish by symmetry; axial force finite.
        assert abs(f["fy"]) < 1e-3
        assert abs(f["fz"]) < 1e-3
        assert np.isfinite(f["fx"])

    def test_viscous_noslip(self):
        bor = body_of_revolution_grid("store", ni=21, nj=13, nk=9,
                                      viscous=True)
        s = Solver3D(bor, FlowConfig(mach=0.5, reynolds=1e4, cfl=1.0))
        for _ in range(5):
            s.step()
        # kmin is the wall for the store body.
        _, u, v, w, _ = primitive3d(s.q[:, :, 0])
        assert np.abs(u).max() < 1e-12
        assert np.abs(w).max() < 1e-12

    def test_wing_grid_runs(self):
        wing = extruded_wing_grid("w", ni=33, nj=9, nk=7, viscous=False,
                                  symmetry_root=True)
        s = Solver3D(wing, FlowConfig(mach=0.5, cfl=1.0))
        for _ in range(4):
            s.step()
        rho, _, _, _, p = primitive3d(s.q)
        assert rho.min() > 0 and p.min() > 0

    def test_iblank_and_fringe(self):
        bg = cartesian_background("bg", (0, 0, 0), (4, 4, 4), (9, 9, 9))
        s = Solver3D(bg, FlowConfig(mach=0.8))
        ib = np.ones((9, 9, 9), dtype=np.int8)
        ib[4, 4, 4] = 0
        s.set_iblank(ib)
        s.step()
        assert np.allclose(s.q[4, 4, 4], s._frozen)
        vals = (s.qinf * 1.1)[None, :]
        s.set_fringe(np.array([7]), vals)
        assert np.allclose(s.q.reshape(-1, 5)[7], s.qinf * 1.1)

    def test_move_to_translation_keeps_metrics(self):
        bor = body_of_revolution_grid("store", ni=17, nj=13, nk=7,
                                      viscous=False)
        s = Solver3D(bor, FlowConfig(mach=0.5))
        j0 = s.metrics.jac.copy()
        s.move_to(bor.xyz + np.array([0.0, -0.5, 0.0]))
        assert np.allclose(s.metrics.jac, j0)

    def test_forces_require_wall(self):
        bg = cartesian_background("bg", (0, 0, 0), (1, 1, 1), (5, 5, 5))
        s = Solver3D(bg, FlowConfig())
        with pytest.raises(ValueError, match="no wall"):
            s.surface_forces()
