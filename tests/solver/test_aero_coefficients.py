"""Tests for Cp distributions and force coefficients."""

import numpy as np
import pytest

from repro.grids.generators import airfoil_ogrid, cartesian_background
from repro.solver import FlowConfig, Solver2D


@pytest.fixture(scope="module")
def developed_airfoil():
    grid = airfoil_ogrid("near", ni=81, nj=21, radius=4.0, viscous=False,
                         cluster_beta=1.0)
    s = Solver2D(grid, FlowConfig(mach=0.4, alpha=0.0, cfl=2.5))
    for _ in range(350):  # enough for the stagnation region to develop
        s.step()
    return s


class TestPressureCoefficient:
    def test_freestream_cp_is_zero(self):
        grid = airfoil_ogrid("near", ni=41, nj=11, viscous=False)
        s = Solver2D(grid, FlowConfig(mach=0.5))
        assert np.allclose(s.pressure_coefficient(), 0.0, atol=1e-12)

    def test_stagnation_cp_near_one(self, developed_airfoil):
        """Incompressible stagnation Cp = 1; at M=0.4 slightly above."""
        cp = developed_airfoil.pressure_coefficient()
        assert 0.6 < cp.max() < 1.6

    def test_suction_region_exists(self, developed_airfoil):
        """Flow accelerating over the thickness gives Cp < 0 somewhere."""
        cp = developed_airfoil.pressure_coefficient()
        assert cp.min() < -0.05

    def test_requires_wall(self):
        bg = cartesian_background("bg", (0, 0), (1, 1), (8, 8))
        s = Solver2D(bg, FlowConfig())
        with pytest.raises(ValueError, match="no jmin wall"):
            s.pressure_coefficient()


class TestForceCoefficients:
    def test_symmetric_flow_near_zero_lift(self, developed_airfoil):
        """NACA 0012 at alpha = 0: cl ~ 0 by symmetry."""
        c = developed_airfoil.force_coefficients()
        assert abs(c["cl"]) < 0.2
        assert np.isfinite(c["cd"]) and np.isfinite(c["cm"])

    def test_wind_frame_rotation(self):
        """At alpha != 0 the wind-frame decomposition differs from the
        body frame exactly by the rotation."""
        grid = airfoil_ogrid("near", ni=41, nj=11, viscous=False)
        s = Solver2D(grid, FlowConfig(mach=0.5, alpha=np.deg2rad(10)))
        # Craft a fake force state: pure +y body force.
        f = {"fx": 0.0, "fy": 1.0, "moment": 0.0}
        import unittest.mock as mock

        with mock.patch.object(Solver2D, "surface_forces", return_value=f):
            c = s.force_coefficients()
        a = np.deg2rad(10)
        q_inf = 0.5 * 0.25
        assert c["cl"] == pytest.approx(np.cos(a) / q_inf)
        assert c["cd"] == pytest.approx(np.sin(a) / q_inf)
