"""Tests for the fine-grained distributed flow solve (paper section 2.1).

The load-bearing property is the paper's own claim: "Implicitness is
maintained across the subdomains on each component so the solution
convergence characteristics remain unchanged with different numbers of
processors" — here strengthened to bit-exact equality between the
serial and distributed updates for any rank lattice.
"""

import numpy as np
import pytest

from repro.grids.generators import cartesian_background
from repro.grids.structured import BoundaryFace, CurvilinearGrid
from repro.machine import MachineSpec, NetworkSpec, NodeSpec, sp2
from repro.solver import FlowConfig, Solver2D
from repro.solver.parallel2d import ParallelSolver2D, rank_lattice, _splits


def bump_channel(ni=49, nj=25, viscous=False):
    """Non-periodic curvilinear test grid: a channel with a wall bump."""
    bg = cartesian_background("ch", (0, 0), (8, 3), (ni, nj))
    xyz = bg.xyz.copy()
    x, y = xyz[..., 0], xyz[..., 1]
    xyz[..., 1] = y + 0.15 * np.exp(-((x - 4.0) ** 2)) * (1 - y / 3.0)
    return CurvilinearGrid(
        "ch",
        xyz,
        (
            BoundaryFace("jmin", "wall"),
            BoundaryFace("jmax", "farfield"),
            BoundaryFace("imin", "farfield"),
            BoundaryFace("imax", "farfield"),
        ),
        viscous=viscous,
    )


def fast_machine(nodes):
    return MachineSpec("t", nodes, NodeSpec(1e9), NetworkSpec(1e-5, 1e9))


class TestLattice:
    def test_rank_lattice_prefers_square(self):
        px, py = rank_lattice((64, 64), 4)
        assert (px, py) == (2, 2)

    def test_rank_lattice_follows_aspect(self):
        px, py = rank_lattice((128, 16), 4)
        assert px > py

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError, match="cannot lay"):
            rank_lattice((8, 8), 64)

    def test_splits_cover_exactly(self):
        s = _splits(17, 4)
        assert s[0][0] == 0 and s[-1][1] == 17
        assert all(a[1] == b[0] for a, b in zip(s, s[1:]))


class TestValidation:
    def test_rejects_periodic(self):
        from repro.grids.generators import airfoil_ogrid

        g = airfoil_ogrid("a", ni=41, nj=15)
        with pytest.raises(ValueError, match="periodic"):
            ParallelSolver2D(g, FlowConfig(), fast_machine(2))

    def test_rejects_3d(self):
        g = cartesian_background("bg", (0, 0, 0), (1, 1, 1), (5, 5, 5))
        with pytest.raises(ValueError, match="2-D"):
            ParallelSolver2D(g, FlowConfig(), fast_machine(2))


class TestPartitionIndependence:
    """The headline property: distributed == serial, bit-exact."""

    @pytest.fixture(scope="class")
    def serial_state(self):
        grid = bump_channel()
        cfg = FlowConfig(mach=0.5, cfl=2.0)
        s = Solver2D(grid, cfg)
        dt = 0.8 * s.timestep()
        for _ in range(5):
            s.step(dt)
        return grid, cfg, dt, s.q

    @pytest.mark.parametrize("nodes", [1, 2, 3, 4, 6])
    def test_matches_serial_exactly(self, serial_state, nodes):
        grid, cfg, dt, q_serial = serial_state
        par = ParallelSolver2D(grid, cfg, fast_machine(nodes))
        q_par, _ = par.run(5, dt)
        assert np.array_equal(q_par, q_serial), (
            f"lattice {par.px}x{par.py} diverged from serial"
        )

    def test_viscous_case_matches(self):
        grid = bump_channel(ni=33, nj=17, viscous=True)
        cfg = FlowConfig(mach=0.4, reynolds=1e4, cfl=1.5)
        s = Solver2D(grid, cfg)
        dt = 0.8 * s.timestep()
        for _ in range(3):
            s.step(dt)
        q_par, _ = ParallelSolver2D(grid, cfg, fast_machine(4)).run(3, dt)
        assert np.allclose(q_par, s.q, atol=1e-14)


class TestVirtualTiming:
    def test_more_ranks_faster_virtual_time(self):
        grid = bump_channel(ni=65, nj=33)
        cfg = FlowConfig(mach=0.5, cfl=2.0)
        dt = 1e-3
        times = {}
        for nodes in (1, 4):
            _, sim = ParallelSolver2D(grid, cfg, sp2(nodes=nodes)).run(2, dt)
            times[nodes] = sim.elapsed
        assert times[4] < times[1]
        assert times[1] / times[4] > 2.0
