"""Boundary helper coverage for the 3-D faces and generic slicers."""

import numpy as np
import pytest

from repro.solver import boundary as bc
from repro.solver.state import FlowConfig


class TestFaceSlicer:
    def test_2d_faces(self):
        q = np.zeros((4, 5, 4))
        assert q[bc.face_slicer("imin", 2)].shape == (5, 4)
        assert q[bc.face_slicer("jmax", 2)].shape == (4, 4)

    def test_3d_faces(self):
        q = np.zeros((4, 5, 6, 5))
        assert q[bc.face_slicer("kmin", 3)].shape == (4, 5, 5)
        assert q[bc.face_slicer("imax", 3)].shape == (5, 6, 5)

    def test_pos_override(self):
        q = np.arange(4 * 5 * 4, dtype=float).reshape(4, 5, 4)
        inner = q[bc.face_slicer("imin", 2, pos=1)]
        assert np.array_equal(inner, q[1])

    def test_k_face_on_2d_rejected(self):
        with pytest.raises(ValueError, match="unknown face"):
            bc.face_slicer("kmin", 2)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="unknown face"):
            bc.face_slicer("front", 3)
        with pytest.raises(ValueError, match="unknown face"):
            bc.face_slicer("imid", 3)


class TestFarfield3D:
    @pytest.mark.parametrize("face", ["imin", "imax", "jmin", "jmax",
                                      "kmin", "kmax"])
    def test_sets_face(self, face):
        qinf = FlowConfig(mach=0.5).freestream3d()
        q = np.ones((4, 5, 6, 5)) * 9.0
        bc.apply_farfield(q, face, qinf)
        assert np.allclose(q[bc.face_slicer(face, 3)], qinf)
        # Only the one face changed.
        changed = np.sum(np.any(q != 9.0, axis=-1))
        assert changed == q[bc.face_slicer(face, 3)].shape[0] * \
            q[bc.face_slicer(face, 3)].shape[1]


class TestPeriodicAxis:
    def test_wrap_along_axis1(self):
        arr = np.arange(5 * 9, dtype=float).reshape(5, 9)
        arr[:, -1] = arr[:, 0]  # seam duplicated along axis 1
        w = bc.wrap_periodic(arr, ghosts=2, axis=1)
        assert w.shape == (5, 13)
        assert np.allclose(bc.unwrap_periodic(w, 2, axis=1), arr)
        # Ghosts replicate the periodic pre/post-seam layers.
        assert np.allclose(w[:, 0], arr[:, 6])
        assert np.allclose(w[:, -1], arr[:, 2])

    def test_seam_average_axis1(self):
        q = np.ones((4, 6, 4))
        q[:, 0] *= 1.2
        q[:, -1] *= 0.8
        bc.apply_periodic_seam(q, axis=1)
        assert np.allclose(q[:, 0], q[:, -1])
        assert np.allclose(q[:, 0], 1.0)
