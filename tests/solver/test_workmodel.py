"""Tests for the flop/byte work model."""

import pytest

from repro.machine import sp2
from repro.solver.workmodel import DEFAULT_WORK_MODEL, WorkModel


class TestFlowCosts:
    def test_viscous_costs_more(self):
        wm = DEFAULT_WORK_MODEL
        assert wm.flow_flops_per_point(True, False, 2) > wm.flow_flops_per_point(
            False, False, 2
        )

    def test_turbulence_adds(self):
        wm = DEFAULT_WORK_MODEL
        assert wm.flow_flops_per_point(True, True, 2) > wm.flow_flops_per_point(
            True, False, 2
        )

    def test_3d_factor(self):
        wm = DEFAULT_WORK_MODEL
        assert wm.flow_flops_per_point(False, False, 3) == pytest.approx(
            wm.ndim3_factor * wm.flow_flops_per_point(False, False, 2)
        )

    def test_variation_is_modest(self):
        """Paper section 3.0: work-per-point differences between viscous/
        inviscid/turbulent grids 'are not substantial' — under 2x here."""
        wm = DEFAULT_WORK_MODEL
        lo = wm.flow_flops_per_point(False, False, 2)
        hi = wm.flow_flops_per_point(True, True, 2)
        assert hi / lo < 2.0

    def test_flow_flops_scales_with_points(self):
        wm = DEFAULT_WORK_MODEL
        assert wm.flow_flops(2000, True, False, 2) == pytest.approx(
            2 * wm.flow_flops(1000, True, False, 2)
        )


class TestCalibration:
    def test_airfoil_step_time_near_paper(self):
        """Paper Table 2 (original case, 12 SP2 nodes): 0.285 s/step at
        ~5300 points/node.  The work model + SP2 machine model must land
        within a factor ~2 on the flow portion (~86% of the step)."""
        wm = DEFAULT_WORK_MODEL
        machine = sp2()
        pts = 5300
        flops = wm.flow_flops(pts, True, False, 2)
        t = machine.compute_time(flops, points_per_node=pts)
        assert 0.25 * 0.5 < t < 0.25 * 2.0

    def test_halo_bytes(self):
        assert DEFAULT_WORK_MODEL.halo_bytes(100) == 3200

    def test_search_flops(self):
        wm = DEFAULT_WORK_MODEL
        assert wm.search_flops(10) == pytest.approx(10 * wm.search_step_flops)

    def test_overrides(self):
        wm = DEFAULT_WORK_MODEL.with_overrides(euler_flops_per_point=1000.0)
        assert wm.euler_flops_per_point == 1000.0
        assert wm.viscous_extra_flops == DEFAULT_WORK_MODEL.viscous_extra_flops
