"""Integration tests: the full 2-D solver on real grids."""

import numpy as np
import pytest

from repro.grids.generators import airfoil_ogrid, cartesian_background
from repro.solver import FlowConfig, Solver2D
from repro.solver.state import primitive


@pytest.fixture(scope="module")
def airfoil_solver():
    grid = airfoil_ogrid("near", ni=81, nj=25, radius=4.0, viscous=False)
    cfg = FlowConfig(mach=0.5, alpha=0.0, cfl=2.0)
    return Solver2D(grid, cfg)


class TestConstruction:
    def test_initial_state_is_freestream(self):
        grid = cartesian_background("bg", (0, 0), (4, 4), (12, 12))
        s = Solver2D(grid, FlowConfig(mach=0.8))
        rho, u, v, p = primitive(s.q)
        assert np.allclose(rho, 1.0)
        assert np.allclose(u, 0.8)

    def test_rejects_3d_grid(self):
        grid = cartesian_background("bg", (0, 0, 0), (1, 1, 1), (4, 4, 4))
        with pytest.raises(ValueError, match="2-D"):
            Solver2D(grid, FlowConfig())

    def test_detects_periodicity(self, airfoil_solver):
        assert airfoil_solver.i_periodic


class TestFreestreamHold:
    def test_background_grid_holds_freestream(self):
        """No walls, farfield all around: freestream is an exact steady
        state and must persist."""
        grid = cartesian_background("bg", (0, 0), (4, 4), (16, 16))
        s = Solver2D(grid, FlowConfig(mach=0.8, alpha=0.2, cfl=4.0))
        q0 = s.q.copy()
        for _ in range(5):
            s.step()
        assert np.allclose(s.q, q0, atol=1e-11)

    def test_timestep_positive(self):
        grid = cartesian_background("bg", (0, 0), (4, 4), (12, 12))
        s = Solver2D(grid, FlowConfig(cfl=2.0))
        assert s.timestep() > 0


class TestAirfoilFlow:
    def test_steps_remain_physical(self, airfoil_solver):
        s = airfoil_solver
        for _ in range(20):
            out = s.step()
        rho, u, v, p = primitive(s.q)
        assert rho.min() > 0 and p.min() > 0
        assert out["dt"] > 0

    def test_flow_develops_stagnation(self, airfoil_solver):
        """After transients, pressure near the leading edge exceeds
        freestream (a stagnation region forms)."""
        s = airfoil_solver
        for _ in range(30):
            s.step()
        _, _, _, p = primitive(s.q)
        p_wall = p[:, 0]
        p_inf = 1.0 / 1.4
        assert p_wall.max() > 1.05 * p_inf

    def test_wall_velocity_tangent(self, airfoil_solver):
        """Inviscid slip wall: wall-normal velocity stays small compared
        to the freestream speed."""
        s = airfoil_solver
        for _ in range(5):
            s.step()
        # The wall rows were copied from interior with pressure held; the
        # flow must not blow up there.
        _, u, v, _ = primitive(s.q[:, 0])
        assert np.hypot(u, v).max() < 2.0


class TestViscousAirfoil:
    def test_viscous_run_stable(self):
        grid = airfoil_ogrid("near", ni=61, nj=25, radius=3.0, viscous=True)
        cfg = FlowConfig(mach=0.5, reynolds=1e4, cfl=1.5)
        s = Solver2D(grid, cfg)
        for _ in range(10):
            s.step()
        rho, u, v, p = primitive(s.q)
        assert rho.min() > 0 and p.min() > 0
        # No-slip enforced at the wall.
        assert np.abs(u[:, 0]).max() < 1e-12

    def test_turbulent_run_stable(self):
        grid = airfoil_ogrid(
            "near", ni=61, nj=25, radius=3.0, viscous=True, turbulence=True
        )
        cfg = FlowConfig(mach=0.5, reynolds=1e5, cfl=1.0)
        s = Solver2D(grid, cfg)
        for _ in range(5):
            s.step()
        rho, _, _, p = primitive(s.q)
        assert rho.min() > 0 and p.min() > 0


class TestHolesAndFringe:
    def test_iblank_freezes_holes(self):
        grid = cartesian_background("bg", (0, 0), (4, 4), (12, 12))
        s = Solver2D(grid, FlowConfig(mach=0.8))
        ib = np.ones((12, 12), dtype=np.int8)
        ib[4:8, 4:8] = 0
        s.set_iblank(ib)
        s.step()
        # Hole points pinned to the frozen state.
        assert np.allclose(s.q[4:8, 4:8], s._frozen)

    def test_iblank_shape_checked(self):
        grid = cartesian_background("bg", (0, 0), (4, 4), (12, 12))
        s = Solver2D(grid, FlowConfig())
        with pytest.raises(ValueError, match="shape"):
            s.set_iblank(np.ones((5, 5), dtype=np.int8))

    def test_set_fringe_injects_values(self):
        grid = cartesian_background("bg", (0, 0), (4, 4), (12, 12))
        s = Solver2D(grid, FlowConfig())
        vals = np.tile(s.qinf * 1.1, (3, 1))
        s.set_fringe(np.array([0, 5, 17]), vals)
        assert np.allclose(s.q.reshape(-1, 4)[5], s.qinf * 1.1)

    def test_move_to_updates_geometry(self):
        grid = airfoil_ogrid("near", ni=41, nj=15, viscous=False)
        s = Solver2D(grid, FlowConfig(mach=0.5))
        old_jac = s.metrics.jac.copy()
        s.move_to(grid.xyz + np.array([0.5, 0.1]))
        # Rigid translation: identical metrics, new coordinates.
        assert np.allclose(s.metrics.jac, old_jac)
        assert s.xyz[0, 0, 0] == pytest.approx(grid.xyz[0, 0, 0] + 0.5)

    def test_move_shape_change_rejected(self):
        grid = airfoil_ogrid("near", ni=41, nj=15)
        s = Solver2D(grid, FlowConfig())
        with pytest.raises(ValueError, match="change its shape"):
            s.move_to(np.zeros((10, 10, 2)))


class TestForces:
    def test_uniform_pressure_zero_force(self):
        """A closed wall loop under uniform pressure feels no net force."""
        grid = airfoil_ogrid("near", ni=81, nj=15, viscous=False)
        s = Solver2D(grid, FlowConfig(mach=0.5))
        f = s.surface_forces()
        assert abs(f["fx"]) < 1e-10
        assert abs(f["fy"]) < 1e-10

    def test_forces_requires_wall(self):
        grid = cartesian_background("bg", (0, 0), (1, 1), (8, 8))
        s = Solver2D(grid, FlowConfig())
        with pytest.raises(ValueError, match="no jmin wall"):
            s.surface_forces()

    def test_drag_positive_after_development(self):
        grid = airfoil_ogrid("near", ni=61, nj=21, radius=3.0, viscous=False)
        s = Solver2D(grid, FlowConfig(mach=0.5, cfl=2.0))
        for _ in range(40):
            s.step()
        f = s.surface_forces()
        assert np.isfinite(f["fx"]) and np.isfinite(f["moment"])
