"""Tests for the flow state and gas model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.solver.state import (
    FlowConfig,
    GasModel,
    conservative,
    primitive,
    sanity_check,
)


class TestGasModel:
    def test_pressure_roundtrip(self):
        q = conservative(1.2, 0.5, -0.3, 0.9)
        assert GasModel().pressure(q) == pytest.approx(0.9)

    def test_sound_speed_freestream(self):
        """With rho_inf = c_inf = 1, p_inf = 1/gamma gives c = 1."""
        cfg = FlowConfig(mach=0.8)
        qinf = cfg.freestream()
        assert cfg.gas.sound_speed(qinf) == pytest.approx(1.0)

    def test_temperature_freestream_is_one(self):
        cfg = FlowConfig(mach=0.3)
        assert cfg.gas.temperature(cfg.freestream()) == pytest.approx(1.0)


class TestFreestream:
    def test_mach_and_alpha(self):
        cfg = FlowConfig(mach=0.8, alpha=np.deg2rad(5.0))
        q = cfg.freestream()
        rho, u, v, p = primitive(q)
        assert rho == pytest.approx(1.0)
        assert np.hypot(u, v) == pytest.approx(0.8)
        assert np.arctan2(v, u) == pytest.approx(np.deg2rad(5.0))
        assert p == pytest.approx(1.0 / 1.4)

    def test_oscillating_airfoil_conditions(self):
        """The paper's case 4.1: M = 0.8, alpha(t) = 5 deg * sin(wt)."""
        alpha0 = np.deg2rad(5.0)
        cfg = FlowConfig(mach=0.8, alpha=alpha0 * np.sin(np.pi / 4))
        q = cfg.freestream()
        _, u, v, _ = primitive(q)
        assert np.hypot(u, v) == pytest.approx(0.8)


vals = st.floats(min_value=0.1, max_value=10.0)


class TestConversions:
    @given(vals, st.floats(-3, 3), st.floats(-3, 3), vals)
    def test_roundtrip(self, rho, u, v, p):
        q = conservative(rho, u, v, p)
        r2, u2, v2, p2 = primitive(q)
        assert r2 == pytest.approx(rho)
        assert u2 == pytest.approx(u)
        assert v2 == pytest.approx(v)
        assert p2 == pytest.approx(p, rel=1e-9, abs=1e-12)

    def test_array_broadcast(self):
        rho = np.ones((3, 4))
        q = conservative(rho, 0.5, 0.0, 1.0 / 1.4)
        assert q.shape == (3, 4, 4)


class TestSanityCheck:
    def test_accepts_valid(self):
        sanity_check(conservative(1.0, 0.1, 0.0, 0.7))

    def test_rejects_nan(self):
        q = conservative(1.0, 0.1, 0.0, 0.7)
        q[0] = np.nan
        with pytest.raises(FloatingPointError, match="non-finite"):
            sanity_check(q)

    def test_rejects_negative_density(self):
        q = conservative(np.array([1.0, -0.5]), 0.0, 0.0, 0.7)
        with pytest.raises(FloatingPointError, match="density"):
            sanity_check(q)

    def test_rejects_negative_pressure(self):
        q = conservative(1.0, 0.0, 0.0, np.array([0.5, -0.1]))
        with pytest.raises(FloatingPointError, match="pressure"):
            sanity_check(q)
