"""Tests for the factored implicit update."""

import numpy as np
import pytest

from repro.solver.adi import factored_update, implicit_sweep


class TestImplicitSweep:
    def test_zero_nu_is_identity(self):
        rng = np.random.default_rng(0)
        rhs = rng.normal(size=(6, 5, 4))
        out = implicit_sweep(rhs, np.zeros((6, 5)), axis=0)
        assert np.allclose(out, rhs)

    def test_smooths_oscillations(self):
        """The implicit operator damps the highest frequency: the output
        sawtooth amplitude must shrink."""
        n = 32
        saw = np.where(np.arange(n) % 2 == 0, 1.0, -1.0)
        rhs = np.zeros((n, 3, 4))
        rhs[..., 0] = saw[:, None]
        nu = np.full((n, 3), 2.0)
        out = implicit_sweep(rhs, nu, axis=0)
        assert np.abs(out[2:-2, :, 0]).max() < 0.3

    def test_preserves_constants(self):
        """delta(nu) annihilates constants in the interior, so a constant
        RHS passes through in the interior rows."""
        rhs = np.ones((20, 4, 4))
        nu = np.full((20, 4), 1.5)
        out = implicit_sweep(rhs, nu, axis=0)
        assert np.allclose(out[5:-5], 1.0, atol=0.05)

    def test_axis_one(self):
        rng = np.random.default_rng(1)
        rhs = rng.normal(size=(4, 16, 4))
        nu = np.abs(rng.normal(size=(4, 16)))
        out0 = implicit_sweep(np.swapaxes(rhs, 0, 1), np.swapaxes(nu, 0, 1), 0)
        out1 = implicit_sweep(rhs, nu, 1)
        assert np.allclose(np.swapaxes(out0, 0, 1), out1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="inconsistent"):
            implicit_sweep(np.zeros((4, 4, 4)), np.zeros((5, 4)), axis=0)

    def test_solution_solves_the_system(self):
        """Verify (I + delta(nu)) x == rhs directly."""
        rng = np.random.default_rng(2)
        n = 10
        rhs = rng.normal(size=(n, 1, 4))
        nu = np.abs(rng.normal(size=(n, 1))) + 0.1
        x = implicit_sweep(rhs, nu, axis=0)
        nu_half = 0.5 * (nu[:-1, 0] + nu[1:, 0])
        A = np.zeros((n, n))
        for k in range(n):
            A[k, k] = 1.0
            if k > 0:
                A[k, k] += nu_half[k - 1]
                A[k, k - 1] = -nu_half[k - 1]
            if k < n - 1:
                A[k, k] += nu_half[k]
                A[k, k + 1] = -nu_half[k]
        for var in range(4):
            assert np.allclose(A @ x[:, 0, var], rhs[:, 0, var])


class TestFactoredUpdate:
    def test_zero_rhs_zero_update(self):
        dq = factored_update(
            np.zeros((8, 8, 4)), np.ones((8, 8)), np.ones((8, 8))
        )
        assert np.allclose(dq, 0.0)

    def test_bounded_update(self):
        """The factored operator is a contraction: |dq| <= |rhs|."""
        rng = np.random.default_rng(3)
        rhs = rng.normal(size=(12, 12, 4))
        nu = np.abs(rng.normal(size=(12, 12))) * 5
        dq = factored_update(rhs, nu, nu)
        assert np.abs(dq).max() <= np.abs(rhs).max() * 1.01
