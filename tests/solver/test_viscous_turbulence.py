"""Tests for viscous fluxes and the Baldwin-Lomax model."""

import numpy as np
import pytest

from repro.grids.generators import cartesian_background
from repro.grids.gridmetrics import metrics2d
from repro.solver.state import FlowConfig, conservative
from repro.solver.turbulence import baldwin_lomax, vorticity, wall_distance
from repro.solver.viscous import laminar_viscosity, viscous_residual


def shear_layer(ni=12, nj=24, umax=0.5):
    """Couette-like state: u varies linearly with y, wall at j=0."""
    g = cartesian_background("bg", (0.0, 0.0), (1.0, 1.0), (ni, nj))
    m = metrics2d(g.xyz)
    y = g.xyz[..., 1]
    u = umax * y
    q = conservative(np.ones_like(y), u, np.zeros_like(y), 1.0 / 1.4)
    return g, m, q


class TestLaminarViscosity:
    def test_value(self):
        assert laminar_viscosity(0.8, 1e6) == pytest.approx(8e-7)

    def test_invalid_reynolds(self):
        with pytest.raises(ValueError):
            laminar_viscosity(0.8, 0.0)


class TestViscousResidual:
    def test_zero_for_uniform_flow(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (10, 10))
        m = metrics2d(g.xyz)
        q = np.broadcast_to(
            FlowConfig(mach=0.5).freestream(), (10, 10, 4)
        ).copy()
        v = viscous_residual(q, m, 1.4, 0.72, mu_laminar=1e-3)
        assert np.abs(v).max() < 1e-14

    def test_zero_for_linear_shear(self):
        """Constant shear has zero second derivative: interior residual
        vanishes (momentum)."""
        _, m, q = shear_layer()
        v = viscous_residual(q, m, 1.4, 0.72, mu_laminar=1e-3)
        assert np.abs(v[:, 2:-2, 1]).max() < 1e-12

    def test_diffuses_velocity_bump(self):
        """A velocity bump must produce a residual that flattens it:
        V > 0 below the peak of -u'' ... sign: dQ/dt ~ +V."""
        g = cartesian_background("bg", (0, 0), (5, 19), (6, 20))
        m = metrics2d(g.xyz)
        y = g.xyz[..., 1]
        u = np.exp(-((y - 10.0) ** 2))
        q = conservative(np.ones_like(y), u, np.zeros_like(y), 1.0 / 1.4)
        v = viscous_residual(q, m, 1.4, 0.72, mu_laminar=1.0)
        j_peak = 10
        assert v[3, j_peak, 1] < 0  # peak is eroded
        assert v[3, j_peak - 3, 1] > 0  # shoulders fill in

    def test_no_mass_diffusion(self):
        _, m, q = shear_layer()
        v = viscous_residual(q, m, 1.4, 0.72, mu_laminar=1e-2)
        assert np.abs(v[..., 0]).max() == 0.0

    def test_eddy_viscosity_increases_flux(self):
        g = cartesian_background("bg", (0, 0), (5, 19), (6, 20))
        m = metrics2d(g.xyz)
        y = g.xyz[..., 1]
        u = np.exp(-((y - 10.0) ** 2))
        q = conservative(np.ones_like(y), u, np.zeros_like(y), 1.0 / 1.4)
        v_lam = viscous_residual(q, m, 1.4, 0.72, 1e-3)
        v_turb = viscous_residual(
            q, m, 1.4, 0.72, 1e-3, mu_turbulent=np.full((6, 20), 1e-3)
        )
        assert np.abs(v_turb[..., 1]).max() > 1.5 * np.abs(v_lam[..., 1]).max()


class TestWallDistance:
    def test_uniform_grid(self):
        g = cartesian_background("bg", (0, 0), (1, 2), (5, 9))
        y = wall_distance(g.xyz)
        assert np.allclose(y[:, 0], 0.0)
        assert np.allclose(y[:, -1], 2.0)

    def test_monotone(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (5, 9))
        y = wall_distance(g.xyz)
        assert (np.diff(y, axis=1) > 0).all()


class TestVorticity:
    def test_shear_flow_vorticity(self):
        _, m, q = shear_layer(umax=0.5)
        om = vorticity(q, m, 1.4)
        # du/dy = 0.5 / 23 per unit spacing... y spans [0,1] over 24 pts:
        # u = 0.5*y with y in grid units [0, 23] -> du/dy = 0.5.
        assert np.allclose(om[2:-2, 2:-2], 0.5, rtol=1e-6)

    def test_uniform_flow_zero(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (8, 8))
        m = metrics2d(g.xyz)
        q = np.broadcast_to(FlowConfig(0.8).freestream(), (8, 8, 4)).copy()
        assert np.abs(vorticity(q, m, 1.4)).max() < 1e-14


class TestBaldwinLomax:
    def make_boundary_layer(self, ni=8, nj=40):
        g = cartesian_background("bg", (0.0, 0.0), (1.0, 0.2), (ni, nj))
        y = g.xyz[..., 1]
        delta = 0.05
        u = 0.5 * np.tanh(y / delta)
        q = conservative(np.ones_like(y), u, np.zeros_like(y), 1.0 / 1.4)
        m = metrics2d(g.xyz)
        return g, m, q

    def test_nonnegative(self):
        g, m, q = self.make_boundary_layer()
        mut = baldwin_lomax(q, g.xyz, m, 1.4, mu_laminar=1e-5)
        assert (mut >= 0).all()

    def test_zero_at_wall(self):
        g, m, q = self.make_boundary_layer()
        mut = baldwin_lomax(q, g.xyz, m, 1.4, mu_laminar=1e-5)
        assert np.allclose(mut[:, 0], 0.0, atol=1e-12)

    def test_small_in_freestream(self):
        """Outside the layer vorticity ~ 0 and F_kleb cuts off: eddy
        viscosity decays far from the wall."""
        g, m, q = self.make_boundary_layer()
        mut = baldwin_lomax(q, g.xyz, m, 1.4, mu_laminar=1e-5)
        assert mut[:, -1].max() < 0.1 * mut.max()

    def test_peak_inside_layer(self):
        g, m, q = self.make_boundary_layer()
        mut = baldwin_lomax(q, g.xyz, m, 1.4, mu_laminar=1e-5)
        j_peak = np.argmax(mut[4])
        y_peak = g.xyz[4, j_peak, 1]
        assert 0.0 < y_peak < 0.15

    def test_no_shear_no_eddy_viscosity(self):
        g = cartesian_background("bg", (0, 0), (1, 0.2), (8, 20))
        m = metrics2d(g.xyz)
        q = np.broadcast_to(FlowConfig(0.5).freestream(), (8, 20, 4)).copy()
        mut = baldwin_lomax(q, g.xyz, m, 1.4, mu_laminar=1e-5)
        assert mut.max() < 1e-10
