"""Tests for physical boundary conditions."""

import numpy as np
import pytest

from repro.solver import boundary as bc
from repro.solver.state import FlowConfig, conservative, primitive


def field(shape=(8, 6), mach=0.5):
    return np.broadcast_to(
        FlowConfig(mach=mach).freestream(), shape + (4,)
    ).copy()


class TestWall:
    def test_noslip_zeroes_velocity(self):
        q = field()
        bc.apply_wall(q, "jmin", viscous=True, gamma=1.4)
        _, u, v, _ = primitive(q[:, 0])
        assert np.allclose(u, 0.0) and np.allclose(v, 0.0)

    def test_noslip_keeps_interior_pressure(self):
        q = field()
        p_before = primitive(q[:, 1])[3].copy()
        bc.apply_wall(q, "jmin", viscous=True, gamma=1.4)
        assert np.allclose(primitive(q[:, 0])[3], p_before)

    def test_slip_projects_out_normal_velocity(self):
        q = field(mach=0.7)
        # Wall normal along +y: the x-velocity survives, v is removed.
        normals = np.tile([0.0, 1.0], (q.shape[0], 1))
        bc.apply_wall(q, "jmin", viscous=False, gamma=1.4, normals=normals)
        _, u, v, _ = primitive(q[:, 0])
        assert np.allclose(u, 0.7)
        assert np.allclose(v, 0.0)

    def test_slip_tangency_general_normal(self):
        q = field(mach=0.7)
        n = np.tile([np.sqrt(0.5), np.sqrt(0.5)], (q.shape[0], 1))
        bc.apply_wall(q, "jmin", viscous=False, gamma=1.4, normals=n)
        _, u, v, _ = primitive(q[:, 0])
        assert np.allclose(u * n[:, 0] + v * n[:, 1], 0.0, atol=1e-14)

    def test_slip_without_normals_raises(self):
        with pytest.raises(ValueError, match="needs wall normals"):
            bc.apply_wall(field(), "jmin", viscous=False, gamma=1.4)

    def test_wall_normals_flat_plate(self):
        x = np.linspace(0, 1, 6)
        y = np.linspace(0, 1, 4)
        xyz = np.ascontiguousarray(
            np.stack(np.meshgrid(x, y, indexing="ij"), axis=-1)
        )
        n = bc.wall_normals(xyz, "jmin")
        assert np.allclose(n, [0.0, 1.0])
        n_top = bc.wall_normals(xyz, "jmax")
        assert np.allclose(n_top, [0.0, -1.0])

    def test_wall_normals_circle_point_outward_from_wall(self):
        theta = np.linspace(0, 2 * np.pi, 33)
        r = np.linspace(1.0, 2.0, 5)
        xyz = np.ascontiguousarray(
            r[None, :, None]
            * np.stack([np.cos(theta), np.sin(theta)], axis=-1)[:, None, :]
        )
        n = bc.wall_normals(xyz, "jmin")  # wall is the inner circle
        radial = xyz[:, 0] / np.linalg.norm(xyz[:, 0], axis=-1, keepdims=True)
        # Fluid is outward: normals align with +radial.
        assert np.allclose(np.einsum("ij,ij->i", n, radial), 1.0, atol=1e-2)

    def test_jmax_wall(self):
        q = field()
        bc.apply_wall(q, "jmax", viscous=True, gamma=1.4)
        _, u, v, _ = primitive(q[:, -1])
        assert np.allclose(u, 0.0)

    def test_i_face_rejected(self):
        with pytest.raises(ValueError, match="j faces"):
            bc.apply_wall(field(), "imin", viscous=True, gamma=1.4)


class TestFarfield:
    @pytest.mark.parametrize("face,index", [
        ("imin", np.s_[0]), ("imax", np.s_[-1]),
        ("jmin", np.s_[:, 0]), ("jmax", np.s_[:, -1]),
    ])
    def test_sets_freestream(self, face, index):
        q = field()
        q *= 1.3  # disturb
        qinf = FlowConfig(mach=0.5).freestream()
        bc.apply_farfield(q, face, qinf)
        assert np.allclose(q[index], qinf)

    def test_unknown_face(self):
        with pytest.raises(ValueError):
            bc.apply_farfield(field(), "kmin", np.zeros(4))


class TestPeriodic:
    def test_seam_equalised(self):
        q = field()
        q[0] *= 1.1
        q[-1] *= 0.9
        bc.apply_periodic_seam(q)
        assert np.allclose(q[0], q[-1])

    def test_wrap_unwrap_roundtrip(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(11, 4, 2))
        arr[-1] = arr[0]  # seam duplicated
        wrapped = bc.wrap_periodic(arr, 2)
        assert wrapped.shape == (15, 4, 2)
        assert np.allclose(bc.unwrap_periodic(wrapped, 2), arr)

    def test_wrap_ghost_values(self):
        """Left ghosts replicate the periodic pre-seam points, right
        ghosts the post-seam points."""
        n = 9  # period 8
        arr = np.arange(float(n))
        arr[-1] = arr[0]  # closed loop 0..7 then repeat 0
        w = bc.wrap_periodic(arr, 2)
        assert w[0] == arr[6] and w[1] == arr[7]
        assert w[-2] == arr[1] and w[-1] == arr[2]

    def test_wrap_too_short(self):
        with pytest.raises(ValueError):
            bc.wrap_periodic(np.zeros(3), 2)

    def test_wrapped_differences_continuous(self):
        """Central differences across the seam of sin(theta) must match
        the analytic derivative — the point of the ghost layers."""
        theta = np.linspace(0, 2 * np.pi, 101)
        f = np.sin(theta)
        w = bc.wrap_periodic(f, 2)
        d = 0.5 * (w[2:] - w[:-2])  # central, aligned with f[1:-1] + ghosts
        dtheta = theta[1] - theta[0]
        # Interior of the wrapped array covers all original points.
        got = d[1:-1] / dtheta
        assert np.allclose(got, np.cos(theta), atol=1e-3)
