"""Tests for the tridiagonal solver and difference kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.solver.numerics import diff_central, second_difference, tridiag_solve


class TestTridiag:
    def test_identity_system(self):
        d = np.array([1.0, 2.0, 3.0])
        x = tridiag_solve(np.zeros(3), np.ones(3), np.zeros(3), d)
        assert np.allclose(x, d)

    def test_against_dense_solve(self):
        rng = np.random.default_rng(0)
        n = 12
        a = rng.uniform(-0.3, 0.3, n)
        c = rng.uniform(-0.3, 0.3, n)
        b = 1.0 + np.abs(a) + np.abs(c)  # diagonally dominant
        d = rng.normal(size=n)
        A = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
        assert np.allclose(tridiag_solve(a, b, c, d), np.linalg.solve(A, d))

    def test_batched(self):
        rng = np.random.default_rng(1)
        shape = (5, 7, 10)
        a = rng.uniform(-0.2, 0.2, shape)
        c = rng.uniform(-0.2, 0.2, shape)
        b = 1.5 + np.abs(a) + np.abs(c)
        d = rng.normal(size=shape)
        x = tridiag_solve(a, b, c, d)
        # Verify each system independently.
        for i in range(5):
            for j in range(7):
                A = (
                    np.diag(b[i, j])
                    + np.diag(a[i, j, 1:], -1)
                    + np.diag(c[i, j, :-1], 1)
                )
                assert np.allclose(x[i, j], np.linalg.solve(A, d[i, j]))

    def test_n_equals_one(self):
        x = tridiag_solve(
            np.zeros(1), np.array([2.0]), np.zeros(1), np.array([6.0])
        )
        assert np.allclose(x, [3.0])

    @settings(max_examples=50, deadline=None)
    @given(arrays(np.float64, 8,
                  elements=st.floats(min_value=-1, max_value=1)))
    def test_residual_property(self, off):
        """A x == d for diagonally dominant random systems."""
        a = np.concatenate([[0.0], off[:-1]])
        c = np.concatenate([off[1:], [0.0]])
        b = 2.5 + np.abs(a) + np.abs(c)
        d = off * 3.0 + 1.0
        x = tridiag_solve(a, b, c, d)
        res = b * x
        res[1:] += a[1:] * x[:-1]
        res[:-1] += c[:-1] * x[1:]
        assert np.allclose(res, d, atol=1e-10)


class TestDifferences:
    def test_central_on_linear_is_exact(self):
        f = 3.0 * np.arange(10.0) + 1.0
        assert np.allclose(diff_central(f, 0), 3.0)

    def test_central_axis_selection(self):
        f = np.outer(np.arange(5.0), np.ones(4)) + np.outer(
            np.ones(5), 2.0 * np.arange(4.0)
        )
        assert np.allclose(diff_central(f, 0), 1.0)
        assert np.allclose(diff_central(f, 1), 2.0)

    def test_second_difference_of_quadratic(self):
        f = np.arange(8.0) ** 2
        d2 = second_difference(f, 0)
        assert np.allclose(d2[1:-1], 2.0)
        assert d2[0] == 0.0 and d2[-1] == 0.0

    def test_second_difference_of_linear_is_zero(self):
        f = 5.0 * np.arange(9.0)
        assert np.allclose(second_difference(f, 0), 0.0)
