"""Tests for inviscid residuals: freestream preservation, dissipation."""

import numpy as np
import pytest

from repro.grids.generators import airfoil_ogrid, cartesian_background
from repro.grids.gridmetrics import metrics2d
from repro.solver.flux import (
    dissipation,
    inviscid_residual,
    physical_fluxes,
    spectral_radii,
)
from repro.solver.state import FlowConfig, conservative, primitive


def freestream_field(shape, mach=0.8, alpha=0.0):
    cfg = FlowConfig(mach=mach, alpha=alpha)
    return np.broadcast_to(cfg.freestream(), shape + (4,)).copy()


class TestPhysicalFluxes:
    def test_mass_flux(self):
        q = conservative(2.0, 3.0, -1.0, 0.9)[None, None]
        F, G = physical_fluxes(q, 1.4)
        assert F[0, 0, 0] == pytest.approx(6.0)
        assert G[0, 0, 0] == pytest.approx(-2.0)

    def test_momentum_flux_includes_pressure(self):
        q = conservative(1.0, 0.0, 0.0, 0.7)[None, None]
        F, G = physical_fluxes(q, 1.4)
        assert F[0, 0, 1] == pytest.approx(0.7)
        assert G[0, 0, 2] == pytest.approx(0.7)

    def test_energy_flux_zero_at_rest(self):
        q = conservative(1.0, 0.0, 0.0, 0.7)[None, None]
        F, G = physical_fluxes(q, 1.4)
        assert F[0, 0, 3] == 0.0 and G[0, 0, 3] == 0.0


class TestSpectralRadii:
    def test_uniform_grid_values(self):
        g = cartesian_background("bg", (0, 0), (9, 9), (10, 10))
        m = metrics2d(g.xyz)
        q = freestream_field(g.dims, mach=0.5, alpha=0.0)
        lam_xi, lam_eta = spectral_radii(q, m, 1.4)
        # dx = dy = 1: lam_xi = |u| + c = 0.5 + 1.0.
        assert np.allclose(lam_xi, 1.5)
        assert np.allclose(lam_eta, 1.0)

    def test_radii_positive(self):
        g = airfoil_ogrid("air", ni=61, nj=21)
        from repro.solver.boundary import wrap_periodic

        m = metrics2d(wrap_periodic(g.xyz))
        q = freestream_field((g.dims[0] + 4, g.dims[1]))
        lam_xi, lam_eta = spectral_radii(q, m, 1.4)
        assert (lam_xi > 0).all() and (lam_eta > 0).all()


class TestFreestreamPreservation:
    """Uniform flow must produce (near-)zero residual on any untangled
    grid — the discrete metric identity (see flux.py docstring)."""

    def test_uniform_grid(self):
        g = cartesian_background("bg", (0, 0), (4, 4), (20, 20))
        m = metrics2d(g.xyz)
        q = freestream_field(g.dims, mach=0.8, alpha=0.1)
        r = inviscid_residual(q, m, 1.4, k2=0.5, k4=0.016)
        assert np.abs(r).max() < 1e-12

    def test_curvilinear_interior(self):
        g = airfoil_ogrid("air", ni=81, nj=31)
        m = metrics2d(g.xyz)
        q = freestream_field(g.dims, mach=0.8)
        r = inviscid_residual(q, m, 1.4, k2=0.5, k4=0.016)
        # Interior nodes: exact commutation of central differences.
        assert np.abs(r[2:-2, 2:-2]).max() < 1e-10

    def test_stretched_grid_interior(self):
        x = np.cumsum(np.linspace(0.1, 1.0, 30))
        y = np.cumsum(np.linspace(0.05, 0.5, 25))
        xm, ym = np.meshgrid(x, y, indexing="ij")
        xyz = np.ascontiguousarray(np.stack([xm, ym], axis=-1))
        m = metrics2d(xyz)
        q = freestream_field((30, 25), mach=0.3, alpha=0.7)
        r = inviscid_residual(q, m, 1.4, k2=0.5, k4=0.016)
        assert np.abs(r[2:-2, 2:-2]).max() < 1e-10


class TestDissipation:
    def test_zero_on_uniform_state(self):
        q = freestream_field((12, 12))
        p = np.full((12, 12), 1.0 / 1.4)
        lam = np.ones((12, 12))
        d = dissipation(q, p, lam, axis=0, k2=0.5, k4=0.016)
        assert np.abs(d).max() < 1e-14

    def test_damps_oscillations(self):
        """Dissipation must oppose a sawtooth: D has the opposite sign
        of the high-frequency component."""
        q = freestream_field((16, 4))
        saw = np.where(np.arange(16) % 2 == 0, 1e-3, -1e-3)
        q[..., 0] += saw[:, None]
        p = np.full((16, 4), 1.0 / 1.4)
        lam = np.ones((16, 4))
        d = dissipation(q, p, lam, axis=0, k2=0.0, k4=0.016)
        # residual -= d, dq/dt = -residual: dq/dt has the sign of d.
        interior = slice(3, -3)
        assert np.all(d[interior, :, 0] * saw[interior, None] < 0)

    def test_short_direction_no_crash(self):
        q = freestream_field((3, 8))
        p = np.full((3, 8), 1.0 / 1.4)
        lam = np.ones((3, 8))
        d = dissipation(q, p, lam, axis=0, k2=0.5, k4=0.016)
        assert d.shape == q.shape
        assert np.all(d == 0)  # too short for the stencil
