"""Wire protocol: framing unit tests plus live-server fuzzing.

The fuzz battery throws malformed garbage — broken UTF-8, invalid
JSON, non-objects, unknown ops, oversized frames, random bytes — at a
running daemon and asserts the daemon (a) answers every line-shaped
frame with a typed error, (b) never wedges, and (c) still serves a
well-formed request on the same or a fresh connection afterwards.
"""

import errno
import io
import json
import os
import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import MAX_FRAME, ServeClient
from repro.serve.protocol import (
    MAX_SOCKET_PATH,
    FrameTooLarge,
    ProtocolError,
    SocketPathTooLong,
    check_socket_path,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)

from tests.serve.conftest import tiny_spec


class TestFraming:
    def test_round_trip(self):
        frame = {"op": "ping", "x": [1, 2.5, None, "s"]}
        assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame

    def test_encode_rejects_nan(self):
        with pytest.raises(ProtocolError, match="unencodable"):
            encode_frame({"x": float("nan")})

    def test_encode_rejects_exotic_types(self):
        with pytest.raises(ProtocolError, match="unencodable"):
            encode_frame({"x": object()})

    def test_encode_rejects_oversized(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"x": "a" * MAX_FRAME})

    def test_decode_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError, match="not UTF-8"):
            decode_frame(b"\xff\xfe{}")

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(b"{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1,2,3]")

    def test_read_frame_eof(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_read_frame_oversized(self):
        big = b"x" * (MAX_FRAME + 10) + b"\n"
        with pytest.raises(FrameTooLarge):
            read_frame(io.BytesIO(big))

    def test_responses(self):
        assert ok_response(a=1) == {"ok": True, "a": 1}
        err = error_response("Kind", "msg", {"d": 1}, id=7)
        assert err["ok"] is False
        assert err["error"] == {"kind": "Kind", "message": "msg",
                                "detail": {"d": 1}}
        assert err["id"] == 7


class TestSocketPathLimit:
    """Over-long unix socket paths raise the typed error before any
    bind/connect — never the kernel's bare ``AF_UNIX path too long``."""

    LONG = "/tmp/" + "x" * (MAX_SOCKET_PATH + 1) + ".sock"

    def test_short_path_passes_through(self):
        assert check_socket_path("/tmp/ok.sock") == "/tmp/ok.sock"

    def test_over_limit_raises_typed_oserror(self):
        with pytest.raises(SocketPathTooLong) as ei:
            check_socket_path(self.LONG)
        exc = ei.value
        assert isinstance(exc, OSError)
        assert exc.errno == errno.ENAMETOOLONG
        assert exc.path == self.LONG
        # The message is actionable: names the path and the OS limit.
        assert self.LONG in str(exc)
        assert str(MAX_SOCKET_PATH) in str(exc)

    def test_client_rejects_at_construction(self):
        with pytest.raises(SocketPathTooLong):
            ServeClient(self.LONG)

    def test_server_rejects_before_bind(self):
        from repro.serve.server import ReproServer

        server = ReproServer(self.LONG, workers=1)
        with pytest.raises(SocketPathTooLong):
            server._bind()
        assert not os.path.exists(self.LONG)


def _raw_exchange(path: str, data: bytes, nlines: int = 1) -> list[bytes]:
    """Send raw bytes, read back up to ``nlines`` response lines."""
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(10.0)
    s.connect(path)
    try:
        s.sendall(data)
        rfile = s.makefile("rb")
        return [rfile.readline(MAX_FRAME + 1) for _ in range(nlines)]
    finally:
        s.close()


class TestLiveServerFuzz:
    MALFORMED = [
        b"\n",  # empty frame
        b"{broken json\n",
        b"[1,2,3]\n",  # valid JSON, wrong shape
        b'"just a string"\n',
        b"42\n",
        b"null\n",
        b'{"no_op_field": true}\n',
        b'{"op": 17}\n',  # op of wrong type
        b'{"op": "nosuchop"}\n',
        b'{"op": "submit"}\n',  # submit with no job
        b'{"op": "submit", "job": "not a dict"}\n',
        b'{"op": "submit", "job": {"case": "nosuch"}}\n',
        b'{"op": "wait"}\n',  # wait with no id/sha
        b'{"op": "result", "id": 999999}\n',
        b"\xff\xfe\xfd garbage bytes\n",
    ]

    def test_each_malformed_frame_gets_typed_error(self, server):
        for frame in self.MALFORMED:
            (line,) = _raw_exchange(server.socket_path, frame)
            assert line, f"no response to {frame!r}"
            resp = json.loads(line)
            assert resp["ok"] is False, frame
            assert resp["error"]["kind"], frame

    def test_connection_survives_garbage_then_serves(self, server):
        """Per-line garbage must not close the connection."""
        data = b"{broken\n" + b'{"op": "ping"}\n'
        bad, good = _raw_exchange(server.socket_path, data, nlines=2)
        assert json.loads(bad)["ok"] is False
        ping = json.loads(good)
        assert ping["ok"] is True
        assert ping["protocol"] == "repro-serve/1"

    def test_oversized_frame_closes_connection(self, server):
        data = b"x" * (MAX_FRAME + 100) + b"\n"
        err, eof = _raw_exchange(server.socket_path, data, nlines=2)
        assert json.loads(err)["error"]["kind"] == "FrameTooLarge"
        assert eof == b""  # server hung up

    def test_seq_echo(self, server):
        (line,) = _raw_exchange(
            server.socket_path, b'{"op": "ping", "seq": 42}\n'
        )
        assert json.loads(line)["seq"] == 42

    def test_server_still_works_after_fuzzing(self, server):
        for frame in self.MALFORMED:
            _raw_exchange(server.socket_path, frame)
        with ServeClient(server.socket_path) as c:
            rec = c.run(tiny_spec(), timeout=60)
            assert rec["state"] == "done"

    @given(junk=st.binary(min_size=1, max_size=200))
    @settings(
        max_examples=25, deadline=None,
        # One shared server across examples is exactly what we want.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_binary_never_wedges(self, junk):
        """Property: any newline-terminated junk gets *an* answer."""
        server = type(self)._hyp_server
        (line,) = _raw_exchange(
            server.socket_path, junk.replace(b"\n", b" ") + b"\n"
        )
        resp = json.loads(line)
        assert isinstance(resp["ok"], bool)

    @pytest.fixture(autouse=True)
    def _share_server(self, server):
        # Hypothesis forbids function-scoped fixtures inside @given, so
        # the property test reaches the server via a class attribute.
        type(self)._hyp_server = server
        yield
        type(self)._hyp_server = None
