"""Result cache: hit/miss/eviction semantics, spill tier, thread safety."""

import threading

import pytest

from repro.serve import ResultCache


class TestMemoryTier:
    def test_miss_then_hit(self):
        c = ResultCache()
        assert c.get("aa") is None
        c.put("aa", b"payload")
        assert c.get("aa") == b"payload"
        assert c.stats() == {
            "entries": 1, "max_entries": 256, "hits": 1, "misses": 1,
            "evictions": 0, "persistent": False,
        }

    def test_put_requires_bytes(self):
        with pytest.raises(TypeError, match="bytes"):
            ResultCache().put("aa", "text")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_lru_eviction_order(self):
        c = ResultCache(max_entries=2)
        c.put("a", b"1")
        c.put("b", b"2")
        assert c.get("a") == b"1"  # refreshes 'a'
        c.put("c", b"3")  # evicts 'b', the least recent
        assert "b" not in c
        assert c.get("a") == b"1"
        assert c.get("c") == b"3"
        assert c.stats()["evictions"] == 1

    def test_put_refreshes_recency(self):
        c = ResultCache(max_entries=2)
        c.put("a", b"1")
        c.put("b", b"2")
        c.put("a", b"1*")  # re-put refreshes, and overwrites
        c.put("c", b"3")
        assert "b" not in c
        assert c.get("a") == b"1*"

    def test_contains_and_len(self):
        c = ResultCache()
        assert "x" not in c and len(c) == 0
        c.put("x", b"1")
        assert "x" in c and len(c) == 1


class TestSpillTier:
    def test_round_trip_through_directory(self, tmp_path):
        c = ResultCache(directory=tmp_path)
        c.put("deadbeef", b"spilled")
        assert (tmp_path / "deadbeef.json").read_bytes() == b"spilled"

    def test_restart_adopts_spilled_entries(self, tmp_path):
        ResultCache(directory=tmp_path).put("k1", b"v1")
        fresh = ResultCache(directory=tmp_path)
        assert len(fresh) == 0  # memory tier empty ...
        assert fresh.get("k1") == b"v1"  # ... but the disk tier answers
        assert fresh.stats()["hits"] == 1
        assert len(fresh) == 1  # now adopted into memory

    def test_eviction_removes_spilled_file(self, tmp_path):
        c = ResultCache(directory=tmp_path, max_entries=1)
        c.put("a", b"1")
        c.put("b", b"2")
        assert not (tmp_path / "a.json").exists()
        assert (tmp_path / "b.json").exists()
        assert c.get("a") is None  # gone from both tiers

    def test_contains_checks_disk(self, tmp_path):
        ResultCache(directory=tmp_path).put("k", b"v")
        assert "k" in ResultCache(directory=tmp_path)


class TestThreadSafety:
    def test_concurrent_put_get_consistent(self):
        c = ResultCache(max_entries=64)
        errors = []

        def worker(tid):
            try:
                for i in range(200):
                    sha = f"{tid}-{i % 20}"
                    c.put(sha, sha.encode())
                    got = c.get(sha)
                    # May have been evicted, but never corrupted.
                    if got is not None and got != sha.encode():
                        errors.append((sha, got))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) <= 64
