"""Warm worker pool: execution, crash recovery, timeouts, lifecycle."""

import threading
import time

import pytest

from repro.serve import (
    JobExecutionError,
    JobTimeout,
    PoolError,
    WorkerCrash,
    WorkerPool,
    run_job_bytes,
)
from repro.serve.pool import pool_available, throughput_microbench

from tests.serve.conftest import tiny_spec

pytestmark = pytest.mark.skipif(
    pool_available() is not None, reason=pool_available() or ""
)


@pytest.fixture
def pool():
    p = WorkerPool(workers=2, job_timeout=60.0, retry_backoff=0.01)
    p.start()
    yield p
    p.close()


class TestExecute:
    def test_payload_matches_direct_run(self, pool):
        payload, attempts = pool.execute(tiny_spec())
        assert attempts == 1
        assert payload == run_job_bytes(tiny_spec())

    def test_concurrent_callers_multiplex(self, pool):
        results = {}

        def call(i):
            results[i] = pool.execute(tiny_spec())[0]

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = run_job_bytes(tiny_spec())
        assert len(results) == 6
        assert all(v == expected for v in results.values())

    def test_requires_start(self):
        p = WorkerPool(workers=1)
        with pytest.raises(PoolError, match="not running"):
            p.execute(tiny_spec())
        p.close()

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(max_retries=-1)


class TestCrashRecovery:
    def test_crash_once_is_retried_transparently(self, pool):
        payload, attempts = pool.execute(tiny_spec(inject="crash:once"))
        assert attempts == 2
        assert pool.crashes == 1
        # Payload equals the clean job's *content* apart from the inject
        # knob recorded in the job section.
        import json

        clean = json.loads(run_job_bytes(tiny_spec()))
        crashed = json.loads(payload)
        assert crashed["result"] == clean["result"]

    def test_persistent_crash_exhausts_retries(self):
        p = WorkerPool(workers=1, max_retries=1, retry_backoff=0.01)
        p.start()
        try:
            with pytest.raises(WorkerCrash) as exc_info:
                p.execute(tiny_spec(inject="crash"))
            assert exc_info.value.attempts == 2
            assert p.crashes == 2
        finally:
            p.close()

    def test_pool_survives_crash_and_serves_next_job(self, pool):
        with pytest.raises(WorkerCrash):
            pool.execute(tiny_spec(inject="crash"))
        payload, _ = pool.execute(tiny_spec())
        assert payload == run_job_bytes(tiny_spec())

    def test_zero_retries_fails_first_crash(self):
        p = WorkerPool(workers=1, max_retries=0)
        p.start()
        try:
            with pytest.raises(WorkerCrash) as exc_info:
                p.execute(tiny_spec(inject="crash:once"))
            assert exc_info.value.attempts == 1
        finally:
            p.close()


class TestTimeout:
    def test_slow_job_times_out_and_pool_recovers(self):
        p = WorkerPool(workers=1, job_timeout=0.5)
        p.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(JobTimeout, match="per-job timeout"):
                p.execute(tiny_spec(inject="sleep:30"))
            assert time.monotonic() - t0 < 10.0  # killed, not waited out
            # The killed worker was replaced; pool still serves.
            payload, _ = p.execute(tiny_spec(), timeout=60.0)
            assert payload == run_job_bytes(tiny_spec())
        finally:
            p.close()

    def test_per_call_timeout_overrides_default(self, pool):
        with pytest.raises(JobTimeout):
            pool.execute(tiny_spec(inject="sleep:30"), timeout=0.5)


class TestJobErrors:
    def test_program_error_is_typed_and_not_retried(self, pool):
        with pytest.raises(JobExecutionError) as exc_info:
            pool.execute(tiny_spec(inject="error:kaboom"))
        assert exc_info.value.kind == "RuntimeError"
        assert exc_info.value.message == "kaboom"
        assert pool.crashes == 0  # a raising job is not a crash

    def test_rankfailure_detail_travels(self, pool):
        with pytest.raises(JobExecutionError) as exc_info:
            pool.execute(tiny_spec(inject="rankfail"))
        err = exc_info.value
        assert err.kind == "RankFailure"
        assert err.detail["failed"] == {"1": 0.0}
        assert err.detail["nranks"] == 3

    def test_bad_spec_error_travels(self, pool):
        # Bypass client-side validation to prove the worker-side check.
        from repro.serve.jobs import JobSpec

        bad = JobSpec("nosuchcase")
        with pytest.raises(JobExecutionError) as exc_info:
            pool.execute(bad)
        assert exc_info.value.kind == "JobSpecError"


class TestLifecycle:
    def test_close_is_idempotent_and_execute_after_close_fails(self, pool):
        pool.close()
        pool.close()
        with pytest.raises(PoolError):
            pool.execute(tiny_spec())

    def test_context_manager(self):
        with WorkerPool(workers=1, job_timeout=60.0) as p:
            payload, _ = p.execute(tiny_spec())
        assert payload


class TestThroughputMicrobench:
    def test_reports_positive_throughput(self):
        out = throughput_microbench(jobs=2, workers=2, spec=tiny_spec())
        assert out["jobs"] == 2
        assert out["jobs_per_sec"] > 0
        assert out["errors"] == []
