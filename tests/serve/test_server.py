"""Server + client integration: byte identity, failures, drain, spans.

The central acceptance test lives here: a deterministic sim-backend job
returns **byte-identical** payloads whether run direct
(:func:`run_job_bytes`), through a cold server, or served from the
cache — and a restarted daemon with a spill directory keeps that
guarantee across its lifetime.
"""

import os
import threading

import pytest

from repro.obs import SpanTracer
from repro.serve import (
    JobFailedError,
    ReproServer,
    ResultCache,
    ServeClient,
    ServeConnectError,
    ServeProtocolError,
    run_job_bytes,
)

from tests.serve.conftest import tiny_spec


class TestByteIdentity:
    def test_direct_cold_and_cache_hit_are_byte_identical(self, server):
        spec = tiny_spec()
        direct = run_job_bytes(spec)
        with ServeClient(server.socket_path) as c:
            cold = c.run(spec, timeout=60)
            hit = c.run(spec, timeout=60)
        assert cold["cached"] is False
        assert hit["cached"] is True
        assert cold["payload"].encode() == direct
        assert hit["payload"].encode() == direct
        assert cold["sha"] == spec.sha() == hit["sha"]

    def test_identity_survives_daemon_restart(self, socket_path, tmp_path):
        spec = tiny_spec()
        direct = run_job_bytes(spec)
        with ReproServer(
            socket_path, workers=1, cache_dir=str(tmp_path), job_timeout=60
        ) as srv:
            with ServeClient(socket_path) as c:
                first = c.run(spec, timeout=60)
            assert first["payload"].encode() == direct
        # Second daemon, same spill dir: answered from disk, no run.
        with ReproServer(
            socket_path, workers=1, cache_dir=str(tmp_path), job_timeout=60
        ) as srv:
            with ServeClient(socket_path) as c:
                again = c.run(spec, timeout=60)
            assert again["cached"] is True
            assert again["payload"].encode() == direct
            assert srv.cache.stats()["hits"] == 1

    def test_no_cache_forces_fresh_run_same_bytes(self, server):
        spec = tiny_spec()
        with ServeClient(server.socket_path) as c:
            a = c.run(spec, timeout=60)
            b = c.run(spec, cache=False, timeout=60)
        assert b["cached"] is False
        assert a["payload"] == b["payload"]

    def test_mp_jobs_are_never_cached(self, server):
        pytest.importorskip("multiprocessing")
        from repro.backend.mp import mp_available

        if mp_available() is not None:
            pytest.skip(mp_available())
        spec = tiny_spec(backend="mp")
        with ServeClient(server.socket_path) as c:
            a = c.run(spec, timeout=120)
            b = c.run(spec, timeout=120)
        assert a["cached"] is False
        assert b["cached"] is False  # measured payloads never hit cache


class TestFailurePropagation:
    def test_rankfailure_reconstructs_client_side(self, server):
        with ServeClient(server.socket_path) as c:
            with pytest.raises(JobFailedError) as exc_info:
                c.run(tiny_spec(inject="rankfail"), timeout=60)
        rf = exc_info.value.rank_failure
        assert rf is not None
        assert rf.failed == {1: 0.0}
        assert rf.nranks == 3

    def test_runtime_error_is_typed(self, server):
        with ServeClient(server.socket_path) as c:
            with pytest.raises(JobFailedError) as exc_info:
                c.run(tiny_spec(inject="error:bad input"), timeout=60)
        assert exc_info.value.kind == "RuntimeError"
        assert exc_info.value.message == "bad input"
        assert exc_info.value.rank_failure is None

    def test_failed_jobs_are_not_cached(self, server):
        spec = tiny_spec(inject="error:nope")
        with ServeClient(server.socket_path) as c:
            for _ in range(2):
                with pytest.raises(JobFailedError):
                    c.run(spec, timeout=60)
            jobs = [j for j in c.jobs() if j["sha"] == spec.sha()]
        assert len(jobs) == 2
        assert all(j["state"] == "failed" for j in jobs)
        assert spec.sha() not in server.cache

    def test_worker_crash_recovery_mid_job(self, server):
        """crash:once kills the worker mid-job; retry must succeed and
        the payload must match the clean run's result section."""
        import json

        with ServeClient(server.socket_path) as c:
            rec = c.run(tiny_spec(inject="crash:once"), timeout=60)
            clean = c.run(tiny_spec(), timeout=60)
        assert rec["attempts"] == 2
        assert server.pool.crashes >= 1
        assert (
            json.loads(rec["payload"])["result"]
            == json.loads(clean["payload"])["result"]
        )

    def test_bad_submission_is_protocol_error(self, server):
        with ServeClient(server.socket_path) as c:
            with pytest.raises(ServeProtocolError, match="unknown case"):
                c.submit({"case": "nosuch"})

    def test_unknown_job_lookup(self, server):
        with ServeClient(server.socket_path) as c:
            with pytest.raises(JobFailedError) as exc_info:
                c.result(job_id=424242)
        assert exc_info.value.kind == "UnknownJob"


class TestCoalescing:
    def test_identical_inflight_submissions_share_one_record(self, server):
        spec = tiny_spec(nsteps=2)  # a bit slower, to stay in flight
        ids = []
        lock = threading.Lock()

        def submit():
            with ServeClient(server.socket_path) as c:
                rec = c.submit(spec)
                with lock:
                    ids.append(rec["id"])
                c.wait(job_id=rec["id"], timeout=60)

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All six either coalesced onto the first record or were served
        # from cache after it finished; never six executions.
        with ServeClient(server.socket_path) as c:
            stats = c.stats()
        assert len(set(ids)) < 6
        assert stats["cache"]["misses"] <= 6

    def test_coalesce_opt_out(self, server):
        spec = tiny_spec()
        with ServeClient(server.socket_path) as c:
            a = c.submit(spec, cache=False, coalesce=False)
            b = c.submit(spec, cache=False, coalesce=False)
            assert a["id"] != b["id"]
            c.wait(job_id=a["id"], timeout=60)
            c.wait(job_id=b["id"], timeout=60)


class TestOps:
    def test_ping(self, server):
        with ServeClient(server.socket_path) as c:
            pong = c.ping()
        assert pong["protocol"] == "repro-serve/1"
        assert pong["workers"] == 2
        assert pong["pid"] == os.getpid()

    def test_jobs_listing_ordered_by_id(self, server):
        with ServeClient(server.socket_path) as c:
            c.run(tiny_spec(), timeout=60)
            c.run(tiny_spec(nsteps=2), timeout=60)
            jobs = c.jobs()
        assert [j["id"] for j in jobs] == sorted(j["id"] for j in jobs)
        assert {j["state"] for j in jobs} == {"done"}

    def test_result_by_sha_returns_latest(self, server):
        spec = tiny_spec()
        with ServeClient(server.socket_path) as c:
            c.run(spec, timeout=60)
            rec = c.result(sha=spec.sha())
        assert rec["state"] == "done"
        assert rec["payload"].encode() == run_job_bytes(spec)

    def test_wait_timeout_reports_not_hangs(self, server):
        with ServeClient(server.socket_path) as c:
            rec = c.submit(tiny_spec(inject="sleep:5"), cache=False)
            with pytest.raises(Exception, match="timed out"):
                c.wait(job_id=rec["id"], timeout=0.2)
            # The job still completes; a later wait succeeds.
            done = c.wait(job_id=rec["id"], timeout=60)
        assert done["state"] == "done"

    def test_payload_opt_out(self, server):
        spec = tiny_spec()
        with ServeClient(server.socket_path) as c:
            c.run(spec, timeout=60)
            rec = c.result(sha=spec.sha(), payload=False)
        assert rec["state"] == "done"
        assert "payload" not in rec

    def test_stats_counters(self, server):
        with ServeClient(server.socket_path) as c:
            c.run(tiny_spec(), timeout=60)
            c.run(tiny_spec(), timeout=60)
            stats = c.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["jobs"]["done"] == 2
        assert stats["workers"] == 2


class TestSpans:
    def test_each_executed_job_emits_one_span(self, socket_path):
        tracer = SpanTracer()
        tracer.clock = "wall"  # spans are measured host time
        with ReproServer(
            socket_path, workers=2, job_timeout=60, tracer=tracer
        ):
            with ServeClient(socket_path) as c:
                c.run(tiny_spec(), timeout=60)
                c.run(tiny_spec(), timeout=60)  # cache hit: no span
                c.run(tiny_spec(nsteps=2), timeout=60)
        # ops are (rank, phase, kind, t0, t1, flops, nbytes) tuples
        spans = [op for op in tracer.ops if op[1].startswith("job:")]
        assert len(spans) == 2  # two executions, one cache hit
        for _rank, _phase, kind, t0, t1, _flops, nbytes in spans:
            assert kind == "compute"
            assert t1 >= t0
            assert nbytes > 0  # payload size travels on the span


class TestLifecycle:
    def test_draining_rejects_new_submissions(self, socket_path):
        srv = ReproServer(socket_path, workers=1, job_timeout=60)
        srv.start()
        try:
            srv._draining.set()
            with ServeClient(socket_path) as c:
                with pytest.raises(JobFailedError) as exc_info:
                    c.submit(tiny_spec(), cache=False)
            assert exc_info.value.kind == "Draining"
        finally:
            srv.shutdown(drain_timeout=5)

    def test_drain_finishes_inflight_jobs(self, socket_path):
        srv = ReproServer(socket_path, workers=1, job_timeout=60)
        srv.start()
        with ServeClient(socket_path) as c:
            rec = c.submit(tiny_spec(inject="sleep:0.5"), cache=False)
            srv.shutdown(drain_timeout=30)
            job = srv._jobs[rec["id"]]
        assert job.state == "done"
        assert not os.path.exists(socket_path)

    def test_stale_socket_is_replaced(self, socket_path):
        import socket as s

        stale = s.socket(s.AF_UNIX, s.SOCK_STREAM)
        stale.bind(socket_path)
        stale.close()  # bound then closed: a stale file remains
        with ReproServer(socket_path, workers=1, job_timeout=60):
            with ServeClient(socket_path) as c:
                assert c.ping()["ok"]

    def test_live_socket_is_refused(self, socket_path):
        with ReproServer(socket_path, workers=1, job_timeout=60):
            second = ReproServer(socket_path, workers=1)
            with pytest.raises(OSError, match="live daemon"):
                second._bind()

    def test_shutdown_op_drains_and_exits(self, socket_path):
        srv = ReproServer(socket_path, workers=1, job_timeout=60)
        srv.start()
        with ServeClient(socket_path) as c:
            c.run(tiny_spec(), timeout=60)
            resp = c.shutdown()
        assert resp["draining"] is True
        # The daemon tears itself down: socket disappears.
        import time

        for _ in range(100):
            if not os.path.exists(socket_path):
                break
            time.sleep(0.1)
        assert not os.path.exists(socket_path)
        assert srv._stop.is_set()

    def test_client_error_on_missing_socket(self):
        with pytest.raises(ServeConnectError, match="is `repro serve`"):
            ServeClient("/tmp/definitely-not-a-socket.sock")

    def test_shared_cache_instance(self, socket_path):
        cache = ResultCache()
        with ReproServer(
            socket_path, workers=1, cache=cache, job_timeout=60
        ):
            with ServeClient(socket_path) as c:
                c.run(tiny_spec(), timeout=60)
        assert tiny_spec().sha() in cache
