"""Shared fixtures for the serve battery.

Unix socket paths are capped around 107 bytes, so sockets live under a
short ``/tmp`` prefix rather than pytest's deep ``tmp_path``.
"""

import os
import tempfile

import pytest

from repro.serve import JobSpec, ReproServer

#: The smallest real case — ~40 ms per run — used throughout the battery.
TINY = dict(case="airfoil", nodes=3, scale=0.05, nsteps=1)


def tiny_spec(**overrides) -> JobSpec:
    kw = dict(TINY)
    kw.update(overrides)
    return JobSpec(**kw)


@pytest.fixture
def socket_path():
    path = tempfile.mktemp(prefix="rsv-", suffix=".sock", dir="/tmp")
    yield path
    if os.path.exists(path):
        os.unlink(path)


@pytest.fixture
def server(socket_path):
    srv = ReproServer(socket_path, workers=2, job_timeout=60.0)
    srv.start()
    yield srv
    srv.shutdown(drain_timeout=10.0)
