"""Concurrent submission storms: N clients x M jobs against one daemon.

The daemon must (a) answer every request, (b) return byte-identical
payloads for every copy of a deterministic job no matter how requests
interleave, (c) execute far fewer jobs than it answers (cache +
coalescing), and (d) survive a storm that mixes clean jobs, failing
jobs and crash-injected jobs without wedging or cross-contaminating
records.
"""

import json
import threading

import pytest

from repro.serve import JobFailedError, ServeClient, run_job_bytes

from tests.serve.conftest import tiny_spec


def _storm(socket_path, n_clients, per_client, make_spec):
    """Run ``n_clients`` threads, each its own connection, each
    submitting ``per_client`` jobs; returns (results, errors)."""
    results: list[tuple] = []
    errors: list[tuple] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients)

    def client_main(cid):
        try:
            with ServeClient(socket_path, timeout=120.0) as c:
                barrier.wait(timeout=30)
                for j in range(per_client):
                    spec = make_spec(cid, j)
                    try:
                        rec = c.run(spec, timeout=90)
                        with lock:
                            results.append((cid, j, spec.sha(), rec))
                    except JobFailedError as exc:
                        with lock:
                            errors.append((cid, j, spec.sha(), exc))
        except Exception as exc:  # pragma: no cover - storm must not
            with lock:
                errors.append((cid, -1, "", exc))
            raise

    threads = [
        threading.Thread(target=client_main, args=(cid,))
        for cid in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    assert not any(t.is_alive() for t in threads), "storm wedged"
    return results, errors


class TestIdenticalJobStorm:
    def test_all_copies_byte_identical_and_mostly_free(self, server):
        expected = run_job_bytes(tiny_spec())
        results, errors = _storm(
            server.socket_path, n_clients=8, per_client=5,
            make_spec=lambda cid, j: tiny_spec(),
        )
        assert errors == []
        assert len(results) == 40
        for _cid, _j, _sha, rec in results:
            assert rec["state"] == "done"
            assert rec["payload"].encode() == expected
        # 40 answers from at most a handful of executions.
        stats = server.cache.stats()
        assert stats["hits"] >= 30
        assert stats["misses"] <= 8


class TestDistinctJobStorm:
    def test_every_distinct_job_served_correctly(self, server):
        # 4 clients x 4 jobs over 4 distinct specs (nsteps 1..4): each
        # spec is submitted by every client, concurrently.
        specs = {j: tiny_spec(nsteps=j + 1) for j in range(4)}
        expected = {j: run_job_bytes(s) for j, s in specs.items()}
        results, errors = _storm(
            server.socket_path, n_clients=4, per_client=4,
            make_spec=lambda cid, j: specs[j],
        )
        assert errors == []
        assert len(results) == 16
        for _cid, j, sha, rec in results:
            assert sha == specs[j].sha()
            assert rec["payload"].encode() == expected[j], (
                f"payload mismatch for job {j}"
            )

    def test_payloads_never_cross_contaminate(self, server):
        """Each payload's embedded job config must match its sha."""
        specs = {j: tiny_spec(nsteps=j + 1) for j in range(3)}
        results, errors = _storm(
            server.socket_path, n_clients=6, per_client=3,
            make_spec=lambda cid, j: specs[j],
        )
        assert errors == []
        for _cid, j, sha, rec in results:
            payload = json.loads(rec["payload"])
            assert payload["job_sha"] == sha
            assert payload["job"]["nsteps"] == j + 1


class TestMixedStorm:
    def test_failures_and_crashes_do_not_poison_clean_jobs(self, server):
        """One third clean, one third program-error, one third worker
        crash-once: clean results stay byte-identical, failures stay
        typed, nothing wedges."""
        clean = run_job_bytes(tiny_spec())

        def make_spec(cid, j):
            kind = (cid + j) % 3
            if kind == 0:
                return tiny_spec()
            if kind == 1:
                return tiny_spec(inject=f"error:storm-{cid}-{j}")
            return tiny_spec(inject="crash:once")

        results, errors = _storm(
            server.socket_path, n_clients=6, per_client=3, make_spec=make_spec
        )
        assert len(results) + len(errors) == 18
        for _cid, _j, sha, rec in results:
            payload = json.loads(rec["payload"])
            if payload["job"].get("inject") is None:
                assert rec["payload"].encode() == clean
        for _cid, _j, _sha, exc in errors:
            assert isinstance(exc, JobFailedError)
            assert exc.kind == "RuntimeError"
            assert exc.message.startswith("storm-")
        # Every injected error surfaced as an error, every crash was
        # retried into a success.
        assert len(errors) == 6
