"""Hypothesis property: job interleavings never change result bytes.

Hypothesis generates arbitrary submission schedules — which job, which
client, cache on/off, with failure-injected jobs interleaved between
deterministic ones — and the property asserts every deterministic
job's payload equals its direct :func:`run_job_bytes`, regardless of
schedule.  One warm daemon serves all examples (that's the point:
state accumulated by earlier examples must not leak into later ones).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import (
    JobFailedError,
    ReproServer,
    ServeClient,
    run_job_bytes,
)

from tests.serve.conftest import tiny_spec

# The deterministic job palette: 3 distinct tiny jobs ...
_SPECS = [tiny_spec(nsteps=n) for n in (1, 2, 3)]
# ... and failure-injected intruders scheduled between them.
_INTRUDERS = [
    tiny_spec(inject="error:intruder"),
    tiny_spec(inject="crash:once"),
]

_expected_cache: dict[int, bytes] = {}


def _expected(idx: int) -> bytes:
    # Lazy so collecting this module never runs simulations.
    if idx not in _expected_cache:
        _expected_cache[idx] = run_job_bytes(_SPECS[idx])
    return _expected_cache[idx]

# One schedule step: (job index, use_cache) — negative indices pick an
# intruder.
_STEP = st.tuples(
    st.integers(min_value=-len(_INTRUDERS), max_value=len(_SPECS) - 1),
    st.booleans(),
)


@pytest.fixture(scope="module")
def warm_server():
    import tempfile

    path = tempfile.mktemp(prefix="rsv-hyp-", suffix=".sock", dir="/tmp")
    srv = ReproServer(path, workers=2, job_timeout=60.0)
    srv.start()
    yield srv
    srv.shutdown(drain_timeout=10.0)


class TestInterleavingProperty:
    @given(schedule=st.lists(_STEP, min_size=1, max_size=8))
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_schedule_preserves_deterministic_bytes(
        self, warm_server, schedule
    ):
        with ServeClient(warm_server.socket_path, timeout=120.0) as c:
            for idx, use_cache in schedule:
                if idx < 0:
                    spec = _INTRUDERS[-idx - 1]
                    try:
                        c.run(spec, cache=use_cache, timeout=90)
                    except JobFailedError:
                        pass  # intruders may fail; must not corrupt
                    continue
                spec = _SPECS[idx]
                rec = c.run(spec, cache=use_cache, timeout=90)
                assert rec["state"] == "done"
                payload = rec["payload"].encode()
                assert payload == _expected(idx), (
                    f"schedule {schedule} changed bytes of job {idx} "
                    f"(cached={rec['cached']})"
                )
                assert json.loads(payload)["job_sha"] == spec.sha()
