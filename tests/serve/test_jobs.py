"""Job identity: spec validation, sha semantics, wire round trips.

Includes the ``config_sha`` property battery (Hypothesis): the sha is
invariant under dict key order and distinguishes every single-knob
change — the two facts the result cache's correctness rests on.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.perf.bench import canonical_json, config_sha
from repro.serve import JobSpec, JobSpecError, run_job, run_job_bytes

from tests.serve.conftest import tiny_spec


class TestJobSpec:
    def test_defaults_round_trip(self):
        spec = JobSpec("airfoil")
        again = JobSpec.from_dict(spec.to_wire())
        assert again == spec
        assert again.sha() == spec.sha()

    def test_wire_survives_json_round_trip_sha_intact(self):
        """f0=inf must survive strict JSON encode/decode."""
        spec = tiny_spec(f0=math.inf)
        wire = json.loads(json.dumps(spec.to_wire(), allow_nan=False))
        assert JobSpec.from_dict(wire).sha() == spec.sha()

    def test_finite_f0_round_trip(self):
        spec = tiny_spec(f0=2.5)
        assert JobSpec.from_dict(spec.to_wire()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(JobSpecError, match="unknown job field"):
            JobSpec.from_dict({"case": "airfoil", "tpyo": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(JobSpecError, match="must be an object"):
            JobSpec.from_dict(["airfoil"])

    def test_missing_case_rejected(self):
        with pytest.raises(JobSpecError, match="string 'case'"):
            JobSpec.from_dict({"nodes": 4})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("nodes", "four"),
            ("nodes", True),
            ("nsteps", 2.5),
            ("scale", "big"),
            ("f0", "huge"),
            ("machine", 7),
            ("backend", 7),
            ("inject", 3),
        ],
    )
    def test_bad_field_types_rejected(self, field, value):
        data = {"case": "airfoil", field: value}
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(data)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(nodes=0), dict(nsteps=0), dict(scale=0.0), dict(scale=-1.0)],
    )
    def test_bad_ranges_rejected(self, kwargs):
        with pytest.raises(JobSpecError):
            JobSpec("airfoil", **kwargs)

    def test_unknown_names_rejected_at_boundary(self):
        for bad in (
            dict(case="nosuch"),
            dict(case="airfoil", machine="cray-3"),
            dict(case="airfoil", backend="gpu"),
        ):
            with pytest.raises(JobSpecError, match="unknown"):
                JobSpec.from_dict(bad)

    def test_unknown_inject_rejected(self):
        with pytest.raises(JobSpecError, match="inject"):
            JobSpec("airfoil", inject="explode")

    def test_inject_participates_in_sha(self):
        """An injected job must never alias its clean twin in the cache."""
        clean = tiny_spec()
        assert tiny_spec(inject="crash").sha() != clean.sha()
        assert tiny_spec(inject="crash:once").sha() != clean.sha()

    def test_deterministic_flag(self):
        assert tiny_spec(backend="sim").deterministic
        assert not tiny_spec(backend="mp").deterministic


class TestRunJob:
    def test_payload_shape(self):
        payload = run_job(tiny_spec())
        assert payload["schema"] == "repro-serve-result/1"
        assert payload["deterministic"] is True
        assert payload["job_sha"] == tiny_spec().sha()
        result = payload["result"]
        assert result["nranks"] == 3
        assert result["nsteps"] == 1
        assert result["elapsed_s"] > 0
        assert result["phases"]
        assert result["imbalance"]["f_max"] >= 1.0

    def test_bytes_are_reproducible(self):
        a = run_job_bytes(tiny_spec())
        b = run_job_bytes(tiny_spec())
        assert a == b

    def test_bytes_are_canonical_json(self):
        payload = run_job_bytes(tiny_spec())
        assert payload.endswith(b"\n")
        assert canonical_json(json.loads(payload)).encode() == payload

    def test_error_inject_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_job(tiny_spec(inject="error:boom"))

    def test_rankfail_inject_raises_typed(self):
        from repro.machine.faults import RankFailure

        with pytest.raises(RankFailure):
            run_job(tiny_spec(inject="rankfail"))


# ----------------------------------------------------------------------
# config_sha property battery (Hypothesis)

_KNOBS = st.fixed_dictionaries(
    {
        "case": st.sampled_from(["airfoil", "x38", "store", "deltawing"]),
        "machine": st.sampled_from(["sp2", "ymp"]),
        "nodes": st.integers(min_value=1, max_value=512),
        "scale": st.floats(
            min_value=1e-3, max_value=10.0,
            allow_nan=False, allow_infinity=False,
        ),
        "nsteps": st.integers(min_value=1, max_value=1000),
        "backend": st.sampled_from(["sim", "mp"]),
    }
)


class TestConfigShaProperties:
    @given(cfg=_KNOBS, seed=st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_invariant_under_key_order(self, cfg, seed):
        keys = list(cfg)
        seed.shuffle(keys)
        shuffled = {k: cfg[k] for k in keys}
        assert config_sha(shuffled) == config_sha(cfg)

    @given(cfg=_KNOBS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_distinguishes_any_single_knob_change(self, cfg, data):
        knob = data.draw(st.sampled_from(sorted(cfg)), label="knob")
        mutated = dict(cfg)
        if isinstance(cfg[knob], str):
            mutated[knob] = cfg[knob] + "~"
        elif isinstance(cfg[knob], int):
            mutated[knob] = cfg[knob] + 1
        else:
            mutated[knob] = cfg[knob] * 2.0 + 1.0
        assert config_sha(mutated) != config_sha(cfg)

    @given(cfg=_KNOBS)
    @settings(max_examples=30, deadline=None)
    def test_jobspec_sha_matches_raw_config_sha(self, cfg):
        """JobSpec adds no hidden knobs: its sha IS config_sha(config)."""
        spec = JobSpec(f0=float("inf"), **cfg)
        expected = dict(cfg)
        expected["f0"] = float("inf")
        expected["scale"] = float(expected["scale"])
        assert spec.sha() == config_sha(expected)

    @given(cfg=_KNOBS)
    @settings(max_examples=30, deadline=None)
    def test_sha_survives_wire_round_trip(self, cfg):
        spec = JobSpec(f0=float("inf"), **cfg)
        wire = json.loads(json.dumps(spec.to_wire(), allow_nan=False))
        assert (
            JobSpec.from_dict(wire, check_runnable=False).sha() == spec.sha()
        )


class TestWarmBackends:
    def test_close_warm_backends_drains_and_tolerates_errors(self):
        from repro.serve import jobs

        closed = []

        class Good:
            def close(self):
                closed.append("good")

        class Bad:
            def close(self):
                raise RuntimeError("boom")

        jobs._WARM_BACKENDS.update({"a": Good(), "b": Bad()})
        try:
            jobs.close_warm_backends()
            assert closed == ["good"]
            assert jobs._WARM_BACKENDS == {}
        finally:
            jobs._WARM_BACKENDS.clear()

    def test_job_backend_caches_only_cluster(self):
        from repro.serve.jobs import _WARM_BACKENDS, _job_backend

        assert _WARM_BACKENDS == {}
        eng = _job_backend("sim")
        assert eng.name == "sim"
        assert _WARM_BACKENDS == {}  # sim engines are throwaways
        assert _job_backend("sim") is not eng
