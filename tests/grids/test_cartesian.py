"""Tests for seven-parameter Cartesian grids and closed-form donor lookup."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grids import CartesianGrid


class TestConstruction:
    def test_basic(self):
        g = CartesianGrid("bg", (0.0, 0.0, 0.0), 0.5, (5, 9, 3))
        assert g.ndim == 3
        assert g.npoints == 135

    def test_seven_parameters_in_3d(self):
        g = CartesianGrid("bg", (0.0, 0.0, 0.0), 0.5, (5, 9, 3))
        assert g.nparams == 7  # the paper's "seven parameters per grid"

    def test_five_parameters_in_2d(self):
        assert CartesianGrid("bg", (0.0, 0.0), 1.0, (3, 3)).nparams == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="spacing"):
            CartesianGrid("bad", (0.0,), 0.0, (3,))
        with pytest.raises(ValueError, match="mismatch"):
            CartesianGrid("bad", (0.0, 0.0), 1.0, (3,))
        with pytest.raises(ValueError, match=">= 2 points"):
            CartesianGrid("bad", (0.0,), 1.0, (1,))

    def test_bounding_box(self):
        g = CartesianGrid("bg", (1.0, 2.0), 0.5, (5, 3))
        box = g.bounding_box()
        assert np.allclose(box.lo, [1.0, 2.0])
        assert np.allclose(box.hi, [3.0, 3.0])

    def test_coordinates(self):
        g = CartesianGrid("bg", (0.0, 0.0), 1.0, (3, 2))
        xyz = g.coordinates()
        assert xyz.shape == (3, 2, 2)
        assert np.allclose(xyz[2, 1], [2.0, 1.0])

    def test_as_curvilinear(self):
        g = CartesianGrid("bg", (0.0, 0.0), 1.0, (4, 4))
        cg = g.as_curvilinear()
        assert cg.npoints == g.npoints
        assert cg.bounding_box() == g.bounding_box()


class TestLocate:
    def test_interior_point(self):
        g = CartesianGrid("bg", (0.0, 0.0), 1.0, (5, 5))
        cell, frac, inside = g.locate([[1.5, 2.25]])
        assert inside[0]
        assert cell[0].tolist() == [1, 2]
        assert np.allclose(frac[0], [0.5, 0.25])

    def test_outside_point(self):
        g = CartesianGrid("bg", (0.0, 0.0), 1.0, (5, 5))
        _, _, inside = g.locate([[-0.1, 2.0], [4.1, 2.0], [2.0, 2.0]])
        assert inside.tolist() == [False, False, True]

    def test_upper_face_belongs_to_last_cell(self):
        g = CartesianGrid("bg", (0.0,), 1.0, (5,))
        cell, frac, inside = g.locate([[4.0]])
        assert inside[0]
        assert cell[0, 0] == 3
        assert frac[0, 0] == pytest.approx(1.0)

    def test_vectorised_many_points(self):
        g = CartesianGrid("bg", (0.0, 0.0, 0.0), 0.1, (11, 11, 11))
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(1000, 3))
        cell, frac, inside = g.locate(pts)
        assert inside.all()
        # Reconstruct: origin + (cell + frac) * h == point.
        recon = g.origin + (cell + frac) * g.spacing
        assert np.allclose(recon, pts)

    @given(st.floats(min_value=0.0, max_value=4.0),
           st.floats(min_value=0.0, max_value=4.0))
    def test_locate_reconstruction_property(self, x, y):
        g = CartesianGrid("bg", (0.0, 0.0), 0.5, (9, 9))
        cell, frac, inside = g.locate([[x, y]])
        assert inside[0]
        assert (frac >= 0).all() and (frac <= 1).all()
        recon = g.origin + (cell[0] + frac[0]) * g.spacing
        assert np.allclose(recon, [x, y], atol=1e-12)


class TestRefine:
    def test_refined_halves_spacing_same_box(self):
        g = CartesianGrid("bg", (0.0, 0.0), 1.0, (5, 3))
        r = g.refined()
        assert r.spacing == 0.5
        assert r.level == 1
        assert r.bounding_box() == g.bounding_box()

    def test_refined_point_count(self):
        g = CartesianGrid("bg", (0.0, 0.0, 0.0), 1.0, (3, 3, 3))
        assert g.refined().dims == (5, 5, 5)
