"""Tests for axis-aligned bounding boxes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.grids import AABB


class TestConstruction:
    def test_of_points(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        box = AABB.of_points(pts)
        assert np.allclose(box.lo, [0.0, -1.0])
        assert np.allclose(box.hi, [2.0, 1.0])

    def test_of_points_multi_dim_input(self):
        pts = np.zeros((4, 5, 3))
        pts[1, 2] = [1, 2, 3]
        box = AABB.of_points(pts)
        assert np.allclose(box.hi, [1, 2, 3])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            AABB([1.0], [0.0])
        with pytest.raises(ValueError):
            AABB.of_points(np.zeros((0, 2)))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(AABB([0.0], [1.0]))


class TestQueries:
    def test_contains_vectorised(self):
        box = AABB([0.0, 0.0], [1.0, 1.0])
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [0.0, 1.0]])
        assert box.contains(pts).tolist() == [True, False, True]

    def test_contains_single_point(self):
        box = AABB([0.0, 0.0], [1.0, 1.0])
        assert box.contains(np.array([0.5, 0.5])) is True
        assert box.contains(np.array([2.0, 0.5])) is False

    def test_boundary_inclusive(self):
        box = AABB([0.0], [1.0])
        assert box.contains(np.array([[0.0], [1.0]])).all()

    def test_intersects(self):
        a = AABB([0.0, 0.0], [1.0, 1.0])
        b = AABB([0.5, 0.5], [2.0, 2.0])
        c = AABB([1.1, 1.1], [2.0, 2.0])
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)

    def test_touching_boxes_intersect(self):
        a = AABB([0.0], [1.0])
        b = AABB([1.0], [2.0])
        assert a.intersects(b)

    def test_intersection(self):
        a = AABB([0.0, 0.0], [2.0, 2.0])
        b = AABB([1.0, -1.0], [3.0, 1.0])
        got = a.intersection(b)
        assert got == AABB([1.0, 0.0], [2.0, 1.0])
        assert a.intersection(AABB([5.0, 5.0], [6.0, 6.0])) is None

    def test_union(self):
        a = AABB([0.0], [1.0])
        b = AABB([2.0], [3.0])
        assert a.union(b) == AABB([0.0], [3.0])

    def test_inflated(self):
        box = AABB([0.0, 0.0], [1.0, 1.0]).inflated(0.25)
        assert np.allclose(box.lo, [-0.25, -0.25])
        assert np.allclose(box.hi, [1.25, 1.25])

    def test_volume_center_extent(self):
        box = AABB([0.0, 1.0], [2.0, 4.0])
        assert box.volume() == pytest.approx(6.0)
        assert np.allclose(box.center, [1.0, 2.5])
        assert np.allclose(box.extent, [2.0, 3.0])


finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestProperties:
    @given(arrays(np.float64, (10, 3), elements=finite))
    def test_box_contains_its_points(self, pts):
        box = AABB.of_points(pts)
        assert box.contains(pts).all()

    @given(arrays(np.float64, (6, 2), elements=finite),
           arrays(np.float64, (6, 2), elements=finite))
    def test_union_contains_both(self, a, b):
        ba, bb = AABB.of_points(a), AABB.of_points(b)
        u = ba.union(bb)
        assert u.contains(a).all() and u.contains(b).all()

    @given(arrays(np.float64, (6, 2), elements=finite),
           st.floats(min_value=0, max_value=100))
    def test_inflation_preserves_containment(self, pts, margin):
        box = AABB.of_points(pts).inflated(margin)
        assert box.contains(pts).all()

    @given(arrays(np.float64, (5, 2), elements=finite),
           arrays(np.float64, (5, 2), elements=finite))
    def test_intersection_symmetric(self, a, b):
        ba, bb = AABB.of_points(a), AABB.of_points(b)
        assert ba.intersects(bb) == bb.intersects(ba)
        i1, i2 = ba.intersection(bb), bb.intersection(ba)
        assert (i1 is None) == (i2 is None)
        if i1 is not None:
            assert i1 == i2
