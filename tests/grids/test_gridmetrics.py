"""Tests for 2-D metric computation."""

import numpy as np
import pytest

from repro.grids.gridmetrics import metrics2d


def uniform_grid(ni=6, nj=5, dx=1.0, dy=1.0):
    x, y = np.meshgrid(dx * np.arange(ni), dy * np.arange(nj), indexing="ij")
    return np.ascontiguousarray(np.stack([x, y], axis=-1), dtype=float)


class TestUniform:
    def test_jacobian_is_cell_area(self):
        m = metrics2d(uniform_grid(dx=2.0, dy=3.0))
        assert np.allclose(m.jac, 6.0)

    def test_inverse_metrics(self):
        m = metrics2d(uniform_grid(dx=2.0, dy=3.0))
        assert np.allclose(m.xi_x, 0.5)
        assert np.allclose(m.eta_y, 1.0 / 3.0)
        assert np.allclose(m.xi_y, 0.0)
        assert np.allclose(m.eta_x, 0.0)


class TestRotatedGrid:
    def test_rotation_invariance_of_jacobian(self):
        xyz = uniform_grid(dx=1.5, dy=0.5)
        a = 0.7
        R = np.array([[np.cos(a), -np.sin(a)], [np.sin(a), np.cos(a)]])
        rotated = xyz @ R.T
        m = metrics2d(np.ascontiguousarray(rotated))
        assert np.allclose(m.jac, 0.75)

    def test_metric_identity(self):
        """xi_x*x_xi + xi_y*y_xi == 1 by construction of the inverse."""
        rng = np.random.default_rng(3)
        xyz = uniform_grid(8, 8)
        xyz += 0.1 * rng.normal(size=xyz.shape)  # gentle perturbation
        m = metrics2d(xyz)
        # Recompute forward derivatives the same way metrics2d does and
        # verify the inverse relationship at interior points.
        x, y = xyz[..., 0], xyz[..., 1]
        x_xi = 0.5 * (x[2:, 1:-1] - x[:-2, 1:-1])
        y_xi = 0.5 * (y[2:, 1:-1] - y[:-2, 1:-1])
        ident = m.xi_x[1:-1, 1:-1] * x_xi + m.xi_y[1:-1, 1:-1] * y_xi
        assert np.allclose(ident, 1.0)


class TestDegenerate:
    def test_tangled_grid_raises(self):
        xyz = uniform_grid(5, 5)
        xyz[2, 2] = [10.0, 10.0]  # fold the grid
        with pytest.raises(ValueError, match="tangled"):
            metrics2d(xyz)

    def test_left_handed_grid_keeps_signed_jacobian(self):
        xyz = uniform_grid(5, 5)
        flipped = np.ascontiguousarray(xyz[::-1])  # reverse i: J < 0 everywhere
        m = metrics2d(flipped)
        assert m.jac.max() < 0
        assert np.allclose(m.jac_abs, 1.0)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError, match="expected"):
            metrics2d(np.zeros((4, 4, 3)))

    def test_nonfinite_raises(self):
        xyz = uniform_grid(5, 5)
        xyz[1, 1, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            metrics2d(xyz)


class TestPeriodic:
    def test_periodic_seam_consistent(self):
        """O-grid seam: metrics at i=0 and i=ni-1 must agree."""
        theta = np.linspace(0, 2 * np.pi, 41)
        r = np.linspace(1.0, 2.0, 9)
        xyz = np.ascontiguousarray(
            r[None, :, None]
            * np.stack([np.cos(theta), np.sin(theta)], axis=-1)[:, None, :]
        )
        m = metrics2d(xyz, i_periodic=True)
        assert np.allclose(m.jac[0], m.jac[-1])
        assert m.jac.min() > 0 or m.jac.max() < 0
