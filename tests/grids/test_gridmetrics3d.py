"""Tests for 3-D conservative metrics and the discrete GCL."""

import numpy as np
import pytest

from repro.grids.generators import (
    body_of_revolution_grid,
    cartesian_background,
    extruded_wing_grid,
    pipe_grid,
)
from repro.grids.gridmetrics3d import gcl_residual, metrics3d


class TestUniform:
    def test_jacobian_is_cell_volume(self):
        g = cartesian_background("bg", (0, 0, 0), (2, 3, 4), (5, 7, 9))
        m = metrics3d(g.xyz)
        assert np.allclose(m.jac, 0.5 * 0.5 * 0.5)

    def test_metric_coefficients(self):
        g = cartesian_background("bg", (0, 0, 0), (2, 2, 2), (5, 5, 5))
        m = metrics3d(g.xyz)
        # dx = 0.5: J xi_x = dy*dz = 0.25, cross terms 0.
        assert np.allclose(m.direction(0)[..., 0], 0.25)
        assert np.allclose(m.direction(0)[..., 1:], 0.0)
        assert np.allclose(m.direction(2)[..., 2], 0.25)

    def test_gcl_exact(self):
        g = cartesian_background("bg", (0, 0, 0), (1, 1, 1), (6, 6, 6))
        assert np.abs(gcl_residual(metrics3d(g.xyz))).max() < 1e-15


class TestCurvilinear:
    @pytest.mark.parametrize("maker", [
        lambda: body_of_revolution_grid("s", ni=21, nj=17, nk=9),
        lambda: pipe_grid("p", ni=17, nj=13, nk=15),
        lambda: extruded_wing_grid("w", ni=41, nj=11, nk=7, taper=0.4,
                                   sweep=0.5),
    ])
    def test_gcl_to_roundoff(self, maker):
        """The Thomas-Lombard symmetric form satisfies the discrete
        geometric conservation law everywhere, including boundaries."""
        g = maker()
        m = metrics3d(g.xyz)
        scale = np.abs(m.coeffs).max()
        assert np.abs(gcl_residual(m)).max() < 1e-12 * max(scale, 1.0)

    def test_single_signed_jacobian(self):
        g = body_of_revolution_grid("s", ni=21, nj=17, nk=9)
        m = metrics3d(g.xyz)
        assert (m.jac > 0).all() or (m.jac < 0).all()

    def test_rotation_invariance(self):
        """Rigidly rotating the grid leaves |J| unchanged."""
        from repro.grids.motion import RigidMotion

        g = body_of_revolution_grid("s", ni=15, nj=13, nk=7)
        m1 = metrics3d(g.xyz)
        rot = RigidMotion.rotation3d((1, 1, 0), 0.7)
        m2 = metrics3d(np.ascontiguousarray(rot.apply(g.xyz)))
        assert np.allclose(m2.jac_abs, m1.jac_abs, rtol=1e-10)


class TestValidation:
    def test_bad_shape(self):
        with pytest.raises(ValueError, match="expected"):
            metrics3d(np.zeros((4, 4, 3)))

    def test_tangled_raises(self):
        g = cartesian_background("bg", (0, 0, 0), (1, 1, 1), (5, 5, 5))
        xyz = g.xyz.copy()
        xyz[2, 2, 2] = [5.0, 5.0, 5.0]
        with pytest.raises(ValueError, match="tangled"):
            metrics3d(xyz)

    def test_nonfinite_raises(self):
        g = cartesian_background("bg", (0, 0, 0), (1, 1, 1), (5, 5, 5))
        xyz = g.xyz.copy()
        xyz[1, 1, 1, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            metrics3d(xyz)
