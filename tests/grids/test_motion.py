"""Tests for rigid-body grid motion."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grids import RigidMotion

angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestConstruction:
    def test_identity(self):
        m = RigidMotion.identity(3)
        pts = np.random.default_rng(0).normal(size=(5, 3))
        assert np.allclose(m.apply(pts), pts)
        assert m.is_identity()

    def test_rejects_non_orthonormal(self):
        with pytest.raises(ValueError, match="orthonormal"):
            RigidMotion(np.array([[1.0, 0.0], [0.5, 1.0]]), np.zeros(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent"):
            RigidMotion(np.eye(3), np.zeros(2))

    def test_zero_axis_raises(self):
        with pytest.raises(ValueError, match="nonzero"):
            RigidMotion.rotation3d((0, 0, 0), 1.0)


class TestApply:
    def test_translation(self):
        m = RigidMotion.translation_of([1.0, -2.0])
        assert np.allclose(m.apply(np.array([0.0, 0.0])), [1.0, -2.0])

    def test_rotation2d_quarter_turn(self):
        m = RigidMotion.rotation2d(np.pi / 2)
        assert np.allclose(m.apply(np.array([1.0, 0.0])), [0.0, 1.0])

    def test_rotation2d_about_center(self):
        m = RigidMotion.rotation2d(np.pi, center=(1.0, 0.0))
        assert np.allclose(m.apply(np.array([2.0, 0.0])), [0.0, 0.0], atol=1e-12)
        # Center is a fixed point.
        assert np.allclose(m.apply(np.array([1.0, 0.0])), [1.0, 0.0], atol=1e-12)

    def test_rotation3d_z_matches_2d(self):
        m3 = RigidMotion.rotation3d((0, 0, 1), 0.3)
        m2 = RigidMotion.rotation2d(0.3)
        p = np.array([0.7, -0.2])
        got3 = m3.apply(np.array([p[0], p[1], 5.0]))
        assert np.allclose(got3[:2], m2.apply(p))
        assert got3[2] == pytest.approx(5.0)

    def test_grid_shaped_points(self):
        m = RigidMotion.rotation2d(0.1)
        pts = np.random.default_rng(1).normal(size=(4, 5, 2))
        out = m.apply(pts)
        assert out.shape == pts.shape


class TestAlgebra:
    @given(angles, coords, coords)
    def test_inverse_roundtrip(self, a, tx, ty):
        m = RigidMotion.rotation2d(a, center=(0.3, -0.7)).then(
            RigidMotion.translation_of([tx, ty])
        )
        pts = np.array([[1.0, 2.0], [-3.0, 0.5]])
        back = m.inverse().apply(m.apply(pts))
        assert np.allclose(back, pts, atol=1e-8)

    @given(angles, angles)
    def test_composition_matches_sequential(self, a1, a2):
        m1 = RigidMotion.rotation2d(a1, center=(1.0, 0.0))
        m2 = RigidMotion.rotation2d(a2, center=(-1.0, 2.0))
        pts = np.array([[0.2, 0.4]])
        assert np.allclose(m1.then(m2).apply(pts), m2.apply(m1.apply(pts)),
                           atol=1e-9)

    @given(angles)
    def test_rotation_preserves_distances(self, a):
        m = RigidMotion.rotation3d((1, 2, 3), a, center=(0.5, 0.5, 0.5))
        pts = np.random.default_rng(2).normal(size=(6, 3))
        out = m.apply(pts)
        d_in = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        d_out = np.linalg.norm(out[:, None] - out[None, :], axis=-1)
        assert np.allclose(d_in, d_out, atol=1e-9)
