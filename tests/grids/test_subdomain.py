"""Tests for index-space boxes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grids import Box, Subdomain, interior_face_points


class TestBox:
    def test_whole(self):
        b = Box.whole((5, 7))
        assert b.shape == (5, 7)
        assert b.npoints == 35

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Box((0, 0), (0, 5))

    def test_slices(self):
        arr = np.arange(20).reshape(4, 5)
        b = Box((1, 2), (3, 5))
        assert arr[b.slices()].shape == (2, 3)

    def test_contains_index(self):
        b = Box((1, 1), (3, 3))
        assert b.contains_index((1, 2))
        assert not b.contains_index((3, 2))  # hi exclusive

    def test_split_even(self):
        parts = Box.whole((12, 4)).split(0, 3)
        assert [p.shape for p in parts] == [(4, 4)] * 3
        assert parts[0].lo == (0, 0) and parts[2].hi == (12, 4)

    def test_split_remainder_spread(self):
        parts = Box.whole((10,)).split(0, 3)
        assert sorted(p.shape[0] for p in parts) == [3, 3, 4]
        # Partition is exact and contiguous.
        assert parts[0].lo[0] == 0
        for a, b in zip(parts, parts[1:]):
            assert a.hi[0] == b.lo[0]
        assert parts[-1].hi[0] == 10

    def test_split_too_many_raises(self):
        with pytest.raises(ValueError, match="cannot split"):
            Box.whole((3,)).split(0, 4)

    @given(st.integers(2, 50), st.integers(1, 10))
    def test_split_conserves_points(self, n, k):
        if k > n:
            k = n
        parts = Box.whole((n, 3)).split(0, k)
        assert sum(p.npoints for p in parts) == 3 * n

    def test_surface_points(self):
        assert Box.whole((4, 4)).surface_points() == 16 - 4
        assert Box.whole((2, 2)).surface_points() == 4
        assert Box.whole((4, 4, 4)).surface_points() == 64 - 8


class TestInteriorFacePoints:
    def test_whole_grid_has_no_interior_faces(self):
        b = Box.whole((8, 8))
        assert interior_face_points(b, (8, 8)) == 0

    def test_half_split(self):
        parts = Box.whole((8, 6)).split(0, 2)
        # Each half exposes one 6-point face to the other.
        for p in parts:
            assert interior_face_points(p, (8, 6)) == 6

    def test_middle_box_has_two_faces(self):
        parts = Box.whole((9, 5)).split(0, 3)
        assert interior_face_points(parts[1], (9, 5)) == 10

    def test_3d(self):
        parts = Box.whole((4, 4, 4)).split(2, 2)
        assert interior_face_points(parts[0], (4, 4, 4)) == 16


class TestSubdomain:
    def test_npoints(self):
        sd = Subdomain(grid_index=1, rank=3, box=Box((0, 0), (4, 5)))
        assert sd.npoints == 20
