"""3-D cell-volume (untangledness) checks for every 3-D generator."""

import numpy as np
import pytest

from repro.grids import generators as gen
from repro.grids.gridmetrics import cell_volumes3d


def single_signed(vol, tol_frac=0.0):
    """All volumes share one sign (allowing a tiny fraction of zeros)."""
    pos = (vol > 0).sum()
    neg = (vol < 0).sum()
    return min(pos, neg) <= tol_frac * vol.size


class TestCellVolumes:
    def test_uniform_box(self):
        g = gen.cartesian_background("bg", (0, 0, 0), (2, 3, 4), (3, 4, 5))
        vol = cell_volumes3d(g.xyz)
        assert np.allclose(vol, 1.0 * 1.0 * 1.0)

    def test_scaled_box(self):
        g = gen.cartesian_background("bg", (0, 0, 0), (2, 2, 2), (3, 3, 3))
        assert np.allclose(cell_volumes3d(g.xyz), 1.0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            cell_volumes3d(np.zeros((4, 4, 3)))

    def test_total_volume_of_box(self):
        g = gen.cartesian_background("bg", (0, 0, 0), (1, 1, 1), (6, 6, 6))
        assert cell_volumes3d(g.xyz).sum() == pytest.approx(1.0)


class TestGeneratorsUntangled3D:
    def test_wing_grid(self):
        g = gen.extruded_wing_grid("w", ni=41, nj=11, nk=9, taper=0.3,
                                   sweep=0.5)
        vol = cell_volumes3d(g.xyz)
        assert single_signed(vol)

    def test_body_of_revolution(self):
        g = gen.body_of_revolution_grid("s", ni=31, nj=17, nk=9)
        vol = cell_volumes3d(g.xyz)
        assert single_signed(vol)

    def test_fin_grid(self):
        g = gen.fin_grid("f")
        vol = cell_volumes3d(g.xyz)
        assert single_signed(vol)
        assert np.abs(vol).min() > 0

    def test_pipe_grid(self):
        g = gen.pipe_grid("p", ni=25, nj=17, nk=21)
        vol = cell_volumes3d(g.xyz)
        assert single_signed(vol)

    @pytest.mark.parametrize("case_grids", ["store", "deltawing"])
    def test_case_grids_untangled(self, case_grids):
        from repro.cases import deltawing_grids, store_grids

        grids = (store_grids if case_grids == "store" else deltawing_grids)(
            scale=0.02
        )
        for g in grids:
            vol = cell_volumes3d(g.xyz)
            # The parallelepiped volume proxy miscounts a few strongly
            # sheared cells of the swept/tapered wing at tiny scales;
            # allow a 1% tail, reject genuine folding.
            assert single_signed(vol, tol_frac=0.01), g.name
