"""Additional structured-grid coverage: 3-D faces and flag plumbing."""

import numpy as np
import pytest

from repro.grids import BoundaryFace, CurvilinearGrid
from repro.grids.generators import cartesian_background


def grid3(ni=4, nj=5, nk=6):
    return cartesian_background("g", (0, 0, 0), (ni - 1, nj - 1, nk - 1),
                                (ni, nj, nk))


class TestFaces3D:
    def test_face_index_matches_points(self):
        g = grid3()
        for face in ("imin", "imax", "jmin", "jmax", "kmin", "kmax"):
            idx = g.face_index(face)
            pts = g.points_flat()[idx]
            want = g.face_points(face).reshape(-1, 3)
            assert np.allclose(pts, want), face

    def test_face_counts(self):
        g = grid3(4, 5, 6)
        assert g.face_index("imin").size == 5 * 6
        assert g.face_index("kmax").size == 4 * 5

    def test_refine_3d_counts(self):
        g = grid3(3, 3, 3)
        r = g.refined()
        assert r.dims == (5, 5, 5)
        assert np.allclose(r.xyz[::2, ::2, ::2], g.xyz)

    def test_coarsen_3d_keeps_ends(self):
        g = grid3(7, 7, 7)
        c = g.coarsened()
        assert c.bounding_box() == g.bounding_box()

    def test_wall_faces_3d(self):
        g = CurvilinearGrid(
            "w", grid3().xyz,
            (BoundaryFace("kmin", "wall"), BoundaryFace("kmax", "overset")),
        )
        assert [b.face for b in g.wall_faces()] == ["kmin"]

    def test_repr_mentions_flags(self):
        g = CurvilinearGrid("v", grid3().xyz, viscous=True, turbulence=True)
        assert "viscous" in repr(g) and "turb" in repr(g)
