"""Tests for synthetic grid generators: non-degeneracy and structure."""

import numpy as np
import pytest

from repro.grids import generators as gen
from repro.grids.gridmetrics import metrics2d


class TestProfiles:
    def test_naca0012_zero_at_ends(self):
        assert gen.naca0012_thickness(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gen.naca0012_thickness(np.array([1.0]))[0] == pytest.approx(
            0.0, abs=1e-3
        )

    def test_naca0012_max_thickness(self):
        x = np.linspace(0, 1, 2001)
        t = gen.naca0012_thickness(x)
        # 12% thick: half-thickness peaks near 0.06 around x = 0.30.
        assert t.max() == pytest.approx(0.06, abs=0.002)
        assert abs(x[np.argmax(t)] - 0.30) < 0.02

    def test_naca0012_scales_with_chord(self):
        t1 = gen.naca0012_thickness(np.array([0.6]))
        t2 = gen.naca0012_thickness(np.array([1.2]), chord=2.0)
        assert t2[0] == pytest.approx(2.0 * t1[0])

    def test_ogive_radius_positive(self):
        s = np.linspace(0, 1, 100)
        r = gen.ogive_cylinder_radius(s)
        assert (r > 0).all()
        assert r.max() == pytest.approx(0.08)


class TestAirfoilOGrid:
    def test_shape_and_boundaries(self):
        g = gen.airfoil_ogrid("near", ni=61, nj=21)
        assert g.dims == (61, 21)
        kinds = {b.face: b.kind for b in g.boundaries}
        assert kinds["jmin"] == "wall"
        assert kinds["jmax"] == "overset"

    def test_seam_closed(self):
        g = gen.airfoil_ogrid("near", ni=61, nj=21)
        assert np.allclose(g.xyz[0], g.xyz[-1], atol=1e-12)

    def test_wall_is_on_airfoil(self):
        g = gen.airfoil_ogrid("near", ni=121, nj=21, chord=1.0)
        wall = g.face_points("jmin")
        assert wall[:, 0].min() >= -1e-9
        assert wall[:, 0].max() <= 1.0 + 1e-9
        assert np.abs(wall[:, 1]).max() == pytest.approx(0.06, abs=0.005)

    def test_not_tangled(self):
        g = gen.airfoil_ogrid("near", ni=121, nj=41)
        m = metrics2d(g.xyz, i_periodic=True)
        assert m.jac.min() > 0 or m.jac.max() < 0  # single orientation

    def test_wall_clustering(self):
        g = gen.airfoil_ogrid("near", ni=61, nj=31, cluster_beta=4.0)
        # First off-wall spacing much smaller than last.
        d_first = np.linalg.norm(g.xyz[:, 1] - g.xyz[:, 0], axis=-1).mean()
        d_last = np.linalg.norm(g.xyz[:, -1] - g.xyz[:, -2], axis=-1).mean()
        assert d_first < 0.2 * d_last


class TestAnnulus:
    def test_radii(self):
        g = gen.annulus_grid("mid", ni=61, nj=11, r_inner=1.0, r_outer=3.0,
                             center=(0.0, 0.0))
        r = np.linalg.norm(g.xyz, axis=-1)
        assert r.min() == pytest.approx(1.0)
        assert r.max() == pytest.approx(3.0)

    def test_rejects_inverted_radii(self):
        with pytest.raises(ValueError):
            gen.annulus_grid("bad", r_inner=3.0, r_outer=1.0)

    def test_not_tangled(self):
        g = gen.annulus_grid("mid", ni=91, nj=21)
        m = metrics2d(g.xyz, i_periodic=True)
        assert m.jac.min() > 0 or m.jac.max() < 0


class TestBackground:
    def test_uniform_spacing(self):
        g = gen.cartesian_background("bg", (-1, -2), (3, 2), (9, 5))
        dx = np.diff(g.xyz[:, 0, 0])
        assert np.allclose(dx, 0.5)

    def test_3d_background(self):
        g = gen.cartesian_background("bg", (0, 0, 0), (1, 1, 1), (5, 5, 5))
        assert g.ndim == 3
        assert g.npoints == 125


class TestWing:
    def test_extruded_wing_shape(self):
        g = gen.extruded_wing_grid("wing", ni=41, nj=11, nk=7, span=2.0)
        assert g.dims == (41, 11, 7)
        assert g.xyz[..., 2].max() == pytest.approx(2.0)

    def test_taper_shrinks_tip(self):
        g = gen.extruded_wing_grid("wing", ni=41, nj=11, nk=5, taper=0.3)
        root_extent = np.ptp(g.xyz[:, 0, 0, 0])
        tip_extent = np.ptp(g.xyz[:, 0, -1, 0])
        assert tip_extent < 0.5 * root_extent

    def test_sweep_shifts_tip_aft(self):
        g = gen.extruded_wing_grid("wing", ni=41, nj=11, nk=5, sweep=1.0)
        assert g.xyz[:, 0, -1, 0].mean() > g.xyz[:, 0, 0, 0].mean() + 0.5

    def test_sections_not_tangled(self):
        g = gen.extruded_wing_grid("wing", ni=61, nj=15, nk=5, taper=0.4)
        for k in range(g.dims[2]):
            m = metrics2d(np.ascontiguousarray(g.xyz[:, :, k, :2]),
                          i_periodic=True)
            assert m.jac.min() > 0 or m.jac.max() < 0


class TestStore:
    def test_body_of_revolution_shape(self):
        g = gen.body_of_revolution_grid("store", ni=31, nj=17, nk=9)
        assert g.dims == (31, 17, 9)

    def test_wall_on_body_surface(self):
        g = gen.body_of_revolution_grid(
            "store", ni=31, nj=17, nk=9, length=2.0, body_radius=0.1
        )
        wall = g.face_points("kmin")
        r = np.linalg.norm(wall[..., 1:], axis=-1)
        assert r.max() <= 0.1 + 1e-9

    def test_outer_at_outer_radius(self):
        g = gen.body_of_revolution_grid(
            "store", ni=31, nj=17, nk=9, outer_radius=0.5
        )
        outer = g.face_points("kmax")
        r = np.linalg.norm(outer[..., 1:], axis=-1)
        assert np.allclose(r, 0.5)

    def test_circumferential_seam_closed(self):
        g = gen.body_of_revolution_grid("store", ni=21, nj=17, nk=9)
        assert np.allclose(g.xyz[:, 0], g.xyz[:, -1], atol=1e-12)


class TestFinAndPipe:
    def test_fin_grid_spans_from_root(self):
        g = gen.fin_grid("fin", root=(0.8, 0.1, 0.0), span=0.2,
                         direction=(0, 1, 0))
        assert g.xyz[..., 1].min() >= 0.1 - 0.1  # normal extent small
        assert g.xyz[..., 1].max() <= 0.1 + 0.2 + 0.1

    def test_pipe_grid_points_down(self):
        g = gen.pipe_grid("pipe", origin=(0.0, 0.0, 0.0), length=2.0)
        assert g.xyz[..., 1].min() == pytest.approx(-2.0)

    def test_cartesian_grid_3d_covers_box(self):
        g = gen.cartesian_grid_3d("bg", (0, 0, 0), (1.0, 2.0, 0.5), 0.3)
        box = g.bounding_box()
        assert (box.hi >= [1.0, 2.0, 0.5]).all()
