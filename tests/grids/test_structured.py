"""Tests for curvilinear grids: construction, faces, coarsen/refine."""

import numpy as np
import pytest

from repro.grids import BoundaryFace, CurvilinearGrid
from repro.grids.generators import cartesian_background


def simple_grid(ni=5, nj=4):
    x, y = np.meshgrid(np.arange(ni, dtype=float), np.arange(nj, dtype=float),
                       indexing="ij")
    return CurvilinearGrid("g", np.stack([x, y], axis=-1))


def simple_grid_3d(ni=4, nj=3, nk=5):
    ax = [np.arange(n, dtype=float) for n in (ni, nj, nk)]
    mesh = np.meshgrid(*ax, indexing="ij")
    return CurvilinearGrid("g3", np.stack(mesh, axis=-1))


class TestConstruction:
    def test_dims_and_counts(self):
        g = simple_grid(5, 4)
        assert g.ndim == 2
        assert g.dims == (5, 4)
        assert g.npoints == 20
        assert g.ncells == 12

    def test_3d(self):
        g = simple_grid_3d()
        assert g.ndim == 3
        assert g.npoints == 60
        assert g.ncells == 3 * 2 * 4

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="xyz must be"):
            CurvilinearGrid("bad", np.zeros((5, 4, 3)))  # 2-D grid, 3 coords
        with pytest.raises(ValueError, match="xyz must be"):
            CurvilinearGrid("bad", np.zeros((5, 2)))

    def test_rejects_single_point_direction(self):
        with pytest.raises(ValueError, match=">= 2 points"):
            CurvilinearGrid("bad", np.zeros((1, 4, 2)))

    def test_rejects_k_face_on_2d(self):
        with pytest.raises(ValueError, match="invalid on a 2-D"):
            CurvilinearGrid(
                "bad", np.zeros((3, 3, 2)), (BoundaryFace("kmin", "wall"),)
            )

    def test_boundary_face_validation(self):
        with pytest.raises(ValueError, match="unknown face"):
            BoundaryFace("top", "wall")
        with pytest.raises(ValueError, match="unknown boundary kind"):
            BoundaryFace("imin", "slippery")

    def test_coordinates_are_contiguous_float64(self):
        g = simple_grid()
        assert g.xyz.flags["C_CONTIGUOUS"]
        assert g.xyz.dtype == np.float64


class TestFaces:
    def test_face_points_shape(self):
        g = simple_grid(5, 4)
        assert g.face_points("imin").shape == (4, 2)
        assert g.face_points("jmax").shape == (5, 2)

    def test_face_points_values(self):
        g = simple_grid(5, 4)
        assert np.allclose(g.face_points("imin")[:, 0], 0.0)
        assert np.allclose(g.face_points("imax")[:, 0], 4.0)

    def test_face_index_roundtrip(self):
        g = simple_grid(5, 4)
        idx = g.face_index("jmin")
        pts = g.points_flat()[idx]
        assert np.allclose(pts, g.face_points("jmin").reshape(-1, 2))

    def test_3d_face(self):
        g = simple_grid_3d(4, 3, 5)
        assert g.face_points("kmax").shape == (4, 3, 3)
        assert np.allclose(g.face_points("kmax")[..., 2], 4.0)

    def test_invalid_face_raises(self):
        with pytest.raises(ValueError, match="invalid"):
            simple_grid().face_points("kmin")

    def test_wall_faces_filter(self):
        g = CurvilinearGrid(
            "g",
            simple_grid().xyz,
            (BoundaryFace("jmin", "wall"), BoundaryFace("jmax", "overset")),
        )
        assert [b.face for b in g.wall_faces()] == ["jmin"]


class TestScaleUp:
    """The paper's scale-up construction (section 4.1): coarsen by
    removing every other point (~4x fewer in 2-D), refine by inserting
    midpoints (~4x more)."""

    def test_coarsen_point_count(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (41, 41))
        c = g.coarsened()
        assert c.dims == (21, 21)
        # ~4x reduction, as in the paper.
        assert g.npoints / c.npoints == pytest.approx(4.0, rel=0.1)

    def test_coarsen_preserves_extent(self):
        g = cartesian_background("bg", (0, 0), (3, 7), (40, 40))  # even dims
        c = g.coarsened()
        assert c.bounding_box() == g.bounding_box()

    def test_refine_point_count(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (21, 21))
        r = g.refined()
        assert r.dims == (41, 41)
        assert r.npoints / g.npoints == pytest.approx(4.0, rel=0.1)

    def test_refine_preserves_extent_and_points(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (5, 5))
        r = g.refined()
        assert r.bounding_box() == g.bounding_box()
        # Original points survive at even indices.
        assert np.allclose(r.xyz[::2, ::2], g.xyz)

    def test_refine_midpoints_are_averages(self):
        g = simple_grid(4, 3)
        r = g.refined()
        assert np.allclose(
            r.xyz[1::2, ::2], 0.5 * (g.xyz[:-1] + g.xyz[1:])
        )

    def test_coarsen_then_refine_roundtrip_extent(self):
        g = cartesian_background("bg", (0, 0), (1, 1), (17, 17))
        assert g.coarsened().refined().dims == g.dims

    def test_flags_preserved(self):
        g = CurvilinearGrid(
            "v", simple_grid().xyz, (BoundaryFace("jmin", "wall"),),
            viscous=True, turbulence=True,
        )
        for derived in (g.coarsened(), g.refined(), g.with_coordinates(g.xyz)):
            assert derived.viscous and derived.turbulence
            assert derived.boundaries == g.boundaries
            assert derived.name == g.name

    def test_3d_coarsen_factor_8(self):
        g = simple_grid_3d(17, 17, 17)
        c = g.coarsened()
        assert g.npoints / c.npoints == pytest.approx(8.0, rel=0.2)
