"""Tests for prime-factor subdomain decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    prime_factor_decompose,
    prime_factors,
    strip_decompose,
    total_halo_points,
)


class TestPrimeFactors:
    def test_paper_example(self):
        """np(n)=12 -> prime factors 3, 2, 2 (paper section 3.0)."""
        assert prime_factors(12) == [3, 2, 2]

    def test_one(self):
        assert prime_factors(1) == []

    def test_prime(self):
        assert prime_factors(13) == [13]

    def test_descending_order(self):
        assert prime_factors(60) == [5, 3, 2, 2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            prime_factors(0)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_product_recovers_n(self, n):
        out = prime_factors(n)
        assert int(np.prod(out)) if out else 1 == n


class TestPrimeFactorDecompose:
    def test_single_part_is_whole(self):
        boxes = prime_factor_decompose((10, 20), 1)
        assert len(boxes) == 1
        assert boxes[0].shape == (10, 20)

    def test_part_count_and_conservation(self):
        boxes = prime_factor_decompose((30, 20, 10), 12)
        assert len(boxes) == 12
        assert sum(b.npoints for b in boxes) == 6000

    def test_no_overlap(self):
        boxes = prime_factor_decompose((16, 12), 8)
        seen = np.zeros((16, 12), dtype=int)
        for b in boxes:
            seen[b.slices()] += 1
        assert (seen == 1).all()

    def test_largest_dimension_split_first(self):
        """Paper Fig. 4: with np=12 = 3*2*2, the largest dimension is cut
        by 3 first."""
        boxes = prime_factor_decompose((90, 30), 3)
        # Split along i (length 90), giving 30x30 squares.
        assert all(b.shape == (30, 30) for b in boxes)

    def test_near_cubic_subdomains(self):
        boxes = prime_factor_decompose((64, 64), 16)
        for b in boxes:
            ratio = max(b.shape) / min(b.shape)
            assert ratio <= 2.0

    def test_too_small_grid_raises(self):
        with pytest.raises(ValueError, match="cannot be split"):
            prime_factor_decompose((2, 2), 16)

    def test_falls_back_to_other_axis(self):
        # Largest dim is 3 < factor 5, but second axis can take it.
        # dims sorted by size: axis1=5 is splittable by 5.
        boxes = prime_factor_decompose((3, 5), 5)
        assert len(boxes) == 5

    @settings(max_examples=100, deadline=None)
    @given(
        st.tuples(st.integers(33, 64), st.integers(33, 64), st.integers(33, 64)),
        st.integers(1, 32),
    )
    def test_conservation_property(self, dims, nparts):
        boxes = prime_factor_decompose(dims, nparts)
        assert len(boxes) == nparts
        assert sum(b.npoints for b in boxes) == int(np.prod(dims))


class TestStripVsPrimeFactor:
    def test_prime_factor_has_less_halo(self):
        """The design-choice ablation: near-cubic subdomains generate
        less halo traffic than 1-D slabs for 2-D+ decompositions."""
        dims = (128, 128)
        pf = prime_factor_decompose(dims, 16)
        strips = strip_decompose(dims, 16)
        assert total_halo_points(pf, dims) < total_halo_points(strips, dims)

    def test_strip_decompose_is_slabs(self):
        boxes = strip_decompose((100, 10), 4)
        assert len(boxes) == 4
        assert all(b.shape[1] == 10 for b in boxes)

    def test_equal_for_one_part(self):
        dims = (64, 64)
        assert total_halo_points(prime_factor_decompose(dims, 1), dims) == 0
        assert total_halo_points(strip_decompose(dims, 1), dims) == 0

    def test_3d_advantage_grows(self):
        dims = (64, 64, 64)
        pf = total_halo_points(prime_factor_decompose(dims, 64), dims)
        st_ = total_halo_points(strip_decompose(dims, 64), dims)
        assert pf < 0.5 * st_
