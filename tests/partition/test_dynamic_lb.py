"""Tests for Algorithm 2 (dynamic load balance)."""

import math

import numpy as np
import pytest

from repro.partition import DynamicRebalancer, build_partition, dynamic_rebalance


def two_grid_partition(nprocs=6):
    return build_partition([(60, 60), (60, 60)], nprocs)


class TestDynamicRebalance:
    def test_f0_infinity_is_noop(self):
        part = two_grid_partition()
        igbp = np.array([100.0, 0, 0, 0, 0, 0])
        assert dynamic_rebalance(part, igbp, math.inf) is None

    def test_no_overload_is_noop(self):
        part = two_grid_partition()
        igbp = np.full(6, 50.0)  # perfectly balanced
        assert dynamic_rebalance(part, igbp, 2.0) is None

    def test_zero_igbps_is_noop(self):
        part = two_grid_partition()
        assert dynamic_rebalance(part, np.zeros(6), 2.0) is None

    def test_overloaded_grid_gains_processor(self):
        part = two_grid_partition(6)
        assert part.procs_per_grid == (3, 3)
        # Rank 0 (grid 0) receives nearly all search requests.
        igbp = np.array([600.0, 10, 10, 10, 10, 10])
        new = dynamic_rebalance(part, igbp, f0=2.0)
        assert new is not None
        assert new.procs_per_grid[0] >= 4
        assert new.nprocs == 6

    def test_multiple_overloads_same_grid_accumulate(self):
        part = two_grid_partition(8)
        igbp = np.zeros(8)
        ranks0 = part.ranks_of_grid(0)
        igbp[ranks0[0]] = 500.0
        igbp[ranks0[1]] = 500.0
        new = dynamic_rebalance(part, igbp, f0=1.5)
        assert new is not None
        assert new.procs_per_grid[0] >= part.procs_per_grid[0] + 2

    def test_rebalance_preserves_total_processors(self):
        part = build_partition([(50, 50), (50, 50), (50, 50)], 9)
        igbp = np.zeros(9)
        igbp[part.ranks_of_grid(2)] = 300.0
        new = dynamic_rebalance(part, igbp, f0=1.2)
        assert new is not None
        assert new.nprocs == 9
        assert all(c >= 1 for c in new.procs_per_grid)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError, match="one entry per rank"):
            dynamic_rebalance(two_grid_partition(), np.zeros(3), 2.0)

    def test_nonpositive_f0_raises(self):
        with pytest.raises(ValueError, match="positive"):
            dynamic_rebalance(two_grid_partition(), np.ones(6), 0.0)

    def test_cannot_exceed_machine(self):
        """All processors overloaded on every grid: minimums are scaled
        back to what the machine can hold (or the call is a no-op)."""
        part = two_grid_partition(6)
        igbp = np.array([1000.0, 1, 1, 1000.0, 1, 1])
        new = dynamic_rebalance(part, igbp, f0=1.5)
        if new is not None:
            assert new.nprocs == 6


class TestDynamicRebalancer:
    def test_waits_for_check_interval(self):
        part = two_grid_partition()
        rb = DynamicRebalancer(f0=1.5, check_interval=3)
        hot = np.array([600.0, 1, 1, 1, 1, 1])
        rb.record(hot)
        assert rb.maybe_rebalance(part, step=1) is None
        rb.record(hot)
        assert rb.maybe_rebalance(part, step=2) is None
        rb.record(hot)
        new = rb.maybe_rebalance(part, step=3)
        assert new is not None
        assert rb.history == [(3, new.procs_per_grid)]

    def test_accumulation_resets_after_check(self):
        part = two_grid_partition()
        rb = DynamicRebalancer(f0=1.5, check_interval=1)
        rb.record(np.array([600.0, 1, 1, 1, 1, 1]))
        first = rb.maybe_rebalance(part, step=1)
        assert first is not None
        # No new records: next check has nothing to act on.
        assert rb.maybe_rebalance(first, step=2) is None

    def test_max_rebalances_cap(self):
        part = two_grid_partition()
        rb = DynamicRebalancer(f0=1.01, check_interval=1, max_rebalances=1)
        rb.record(np.array([600.0, 1, 1, 1, 1, 1]))
        first = rb.maybe_rebalance(part, step=1)
        assert first is not None
        rb.record(np.array([600.0, 1, 1, 1, 1, 1]))
        assert rb.maybe_rebalance(first, step=2) is None

    def test_partition_size_change_resets_accumulator(self):
        rb = DynamicRebalancer(f0=2.0, check_interval=2)
        rb.record(np.ones(6))
        rb.record(np.ones(8))  # partition grew: restart accumulation
        assert rb.window.nranks == 8
        assert rb.window.nsteps == 1  # window restarted, not appended

    def test_infinite_f0_never_rebalances(self):
        part = two_grid_partition()
        rb = DynamicRebalancer(f0=math.inf, check_interval=1)
        rb.record(np.array([1e9, 0, 0, 0, 0, 0]))
        assert rb.maybe_rebalance(part, step=1) is None

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            DynamicRebalancer(f0=2.0, check_interval=0)
