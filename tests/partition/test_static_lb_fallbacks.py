"""Tests for Algorithm 1's fallback paths (perturbation exhausted)."""

import pytest

from repro.partition import static_balance


class TestGreedyRepair:
    def test_repair_engages_when_perturbation_disabled(self):
        """With the paper's perturbation fallback disabled, the
        deterministic greedy repair still yields a valid partition."""
        r = static_balance([1000, 1000], 3, max_perturbations=0)
        assert r.used_repair
        assert sum(r.procs_per_grid) == 3
        assert sorted(r.procs_per_grid) == [1, 2]

    def test_repair_respects_constraints(self):
        r = static_balance(
            [1000, 1000], 5,
            max_perturbations=0,
            min_points_constraints=[3, 1],
        )
        assert sum(r.procs_per_grid) == 5
        assert r.procs_per_grid[0] >= 3

    def test_repair_tau_reported(self):
        r = static_balance([1000, 1000], 3, max_perturbations=0)
        assert r.tau >= 0.0

    def test_normal_path_does_not_repair(self):
        r = static_balance([300, 100], 4)
        assert not r.used_repair

    def test_repair_prefers_loaded_grid(self):
        """The repair hands extra processors to the grid with the most
        points per processor."""
        r = static_balance([900, 100, 100], 11, max_perturbations=0,
                           max_tolerance_iters=1)
        assert sum(r.procs_per_grid) == 11
        assert r.procs_per_grid[0] >= 8


class TestOvershootDirection:
    def test_many_tiny_grids_overshoot(self):
        """The np>=1 clamp can make the initial total exceed NP; the
        printed (growing-eps) direction of the paper then applies."""
        grids = [10_000] + [10] * 5
        r = static_balance(grids, 6)
        assert r.procs_per_grid == (1, 1, 1, 1, 1, 1)

    def test_overshoot_with_room(self):
        grids = [10_000] + [10] * 5
        r = static_balance(grids, 8)
        assert sum(r.procs_per_grid) == 8
        assert r.procs_per_grid[0] == 3
