"""Tests for Algorithm 3 (grouping strategy, paper section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import group_grids


class TestBasics:
    def test_single_group_takes_all(self):
        r = group_grids([10, 20, 30], set(), 1)
        assert r.group_of == (0, 0, 0)
        assert r.group_points == (60,)

    def test_grids_spread_without_connectivity(self):
        """Disconnected grids round-robin into the smallest groups."""
        r = group_grids([100, 100, 100, 100], set(), 2)
        assert r.imbalance() == pytest.approx(1.0)
        assert sorted(r.group_points) == [200, 200]

    def test_connected_grids_colocate(self):
        # Chain 0-1, separate pair 2-3; two groups.
        sizes = [50, 40, 50, 40]
        conn = {(0, 1), (2, 3)}
        r = group_grids(sizes, conn, 2)
        assert r.group_of[0] == r.group_of[1]
        assert r.group_of[2] == r.group_of[3]
        assert r.group_of[0] != r.group_of[2]
        assert r.intra_group_edges(conn) == 2

    def test_largest_grid_placed_first(self):
        sizes = [10, 1000, 10]
        r = group_grids(sizes, set(), 3)
        # Every grid alone in a group: all groups non-empty.
        assert sorted(r.group_points) == [10, 10, 1000]

    def test_unconnected_grid_goes_to_smallest_group(self):
        # One isolated grid after two groups are seeded and connected.
        sizes = [100, 90, 5]
        conn = {(0, 1)}
        r = group_grids(sizes, conn, 2)
        # Grid 2 is isolated: must land in the smaller group (group of 1).
        assert r.group_points[r.group_of[2]] <= 100 + 5

    def test_paper_example_shape(self):
        """The Algorithm-3 sketch: 8 grids, 2 groups; connected chains
        stay together while work stays roughly even."""
        sizes = [80, 70, 60, 50, 40, 30, 20, 10]
        conn = {(0, 2), (2, 4), (4, 6), (1, 3), (3, 5), (5, 7)}
        r = group_grids(sizes, conn, 2)
        assert r.ngroups == 2
        assert r.imbalance() < 1.5
        # Most connectivity preserved within groups.
        assert r.intra_group_edges(conn) >= 4


class TestValidation:
    def test_zero_groups(self):
        with pytest.raises(ValueError):
            group_grids([10], set(), 0)

    def test_nonpositive_size(self):
        with pytest.raises(ValueError, match="positive"):
            group_grids([10, 0], set(), 2)

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            group_grids([10, 10], {(0, 5)}, 2)

    def test_self_edge_ignored(self):
        r = group_grids([10, 10], {(0, 0)}, 2)
        assert len(set(r.group_of)) == 2


class TestMembersAndMetrics:
    def test_members(self):
        r = group_grids([10, 20, 30], set(), 2)
        all_members = sorted(sum((r.members(g) for g in range(2)), []))
        assert all_members == [0, 1, 2]

    def test_group_points_consistent(self):
        sizes = [13, 7, 22, 4]
        r = group_grids(sizes, {(0, 1)}, 2)
        for g in range(2):
            assert r.group_points[g] == sum(sizes[m] for m in r.members(g))


sizes_strategy = st.lists(st.integers(1, 1000), min_size=1, max_size=30)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(sizes_strategy, st.integers(1, 8), st.data())
    def test_every_grid_assigned_once(self, sizes, ngroups, data):
        n = len(sizes)
        nedges = data.draw(st.integers(0, min(20, n * n)))
        edges = set()
        for _ in range(nedges):
            a = data.draw(st.integers(0, n - 1))
            b = data.draw(st.integers(0, n - 1))
            edges.add((a, b))
        r = group_grids(sizes, edges, ngroups)
        assert len(r.group_of) == n
        assert all(0 <= g < ngroups for g in r.group_of)
        assert sum(r.group_points) == sum(sizes)

    @settings(max_examples=50, deadline=None)
    @given(sizes_strategy)
    def test_no_connectivity_is_well_balanced(self, sizes):
        """Greedy largest-first into smallest group: classic LPT bound
        keeps imbalance modest when there are enough grids."""
        ngroups = 2
        r = group_grids(sizes, set(), ngroups)
        if len(sizes) >= 2 * ngroups:
            biggest = max(sizes)
            total = sum(sizes)
            # LPT guarantee: max group <= total/m + biggest.
            assert max(r.group_points) <= total / ngroups + biggest
