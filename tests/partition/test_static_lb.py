"""Tests for Algorithm 1 (static load balance)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import static_balance


class TestPerfectBalance:
    def test_evenly_divisible(self):
        """Three equal grids on six processors: tau stays 0."""
        r = static_balance([100, 100, 100], 6)
        assert r.procs_per_grid == (2, 2, 2)
        assert r.tau == 0.0
        assert r.perturbations == 0

    def test_proportional_split(self):
        r = static_balance([300, 100], 4)
        assert r.procs_per_grid == (3, 1)
        assert r.tau == 0.0

    def test_one_grid_gets_everything(self):
        r = static_balance([1000], 7)
        assert r.procs_per_grid == (7,)

    def test_one_proc_per_grid(self):
        r = static_balance([5, 50, 500], 3)
        assert r.procs_per_grid == (1, 1, 1)


class TestToleranceLoop:
    def test_uneven_grids_converge(self):
        r = static_balance([130, 70, 55], 8)
        assert sum(r.procs_per_grid) == 8
        assert all(c >= 1 for c in r.procs_per_grid)
        # The biggest grid gets the most processors.
        assert r.procs_per_grid[0] == max(r.procs_per_grid)

    def test_tau_measures_imbalance(self):
        """Perfectly divisible -> tau 0; awkward ratios -> tau > 0."""
        perfect = static_balance([64, 64], 4)
        awkward = static_balance([100, 47, 13], 7)
        assert perfect.tau == 0.0
        assert awkward.tau >= 0.0
        assert sum(awkward.procs_per_grid) == 7

    def test_paper_pathological_case_converges_by_perturbation(self):
        """Two equal grids, three processors: the paper's example of an
        'infinite solutions' case fixed by adding the grid index to g(n)."""
        r = static_balance([1000, 1000], 3)
        assert sum(r.procs_per_grid) == 3
        assert sorted(r.procs_per_grid) == [1, 2]
        assert r.perturbations >= 1 or r.used_repair

    def test_perturbation_prefers_later_grid(self):
        """g(n) += n gives later grids slightly more weight, so the tie
        breaks deterministically."""
        r1 = static_balance([1000, 1000], 3)
        r2 = static_balance([1000, 1000], 3)
        assert r1 == r2


class TestConstraints:
    def test_minimum_counts_enforced(self):
        r = static_balance([100, 100], 6, min_points_constraints=[4, 1])
        assert r.procs_per_grid[0] >= 4
        assert sum(r.procs_per_grid) == 6

    def test_constraints_sum_too_large(self):
        with pytest.raises(ValueError, match="exceed NP"):
            static_balance([10, 10], 3, min_points_constraints=[2, 2])

    def test_constraint_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            static_balance([10, 10], 4, min_points_constraints=[1])


class TestValidation:
    def test_no_grids(self):
        with pytest.raises(ValueError, match="no grids"):
            static_balance([], 4)

    def test_nonpositive_points(self):
        with pytest.raises(ValueError, match="positive"):
            static_balance([10, 0], 4)

    def test_fewer_procs_than_grids(self):
        with pytest.raises(ValueError, match="cannot cover"):
            static_balance([10, 10, 10], 2)


class TestResultHelpers:
    def test_points_per_proc(self):
        r = static_balance([300, 100], 4)
        assert r.points_per_proc([300, 100]) == [100.0, 100.0]

    def test_imbalance_perfect_is_one(self):
        r = static_balance([300, 100], 4)
        assert r.imbalance([300, 100]) == pytest.approx(1.0)

    def test_imbalance_reflects_overload(self):
        r = static_balance([100, 100, 100], 3)
        assert r.imbalance([100, 100, 100]) == pytest.approx(1.0)


# The paper's perturbation fallback ("the value of the grid index n is
# added to g(n) ... n is generally very small relative to g(n)") assumes
# realistic gridpoint counts; degenerate grids of a handful of points
# would let repeated perturbations distort the ratios.
grid_lists = st.lists(st.integers(min_value=100, max_value=200_000),
                      min_size=1, max_size=10)


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(grid_lists, st.integers(min_value=1, max_value=64))
    def test_always_valid_partition(self, grids, extra):
        nprocs = len(grids) + extra - 1
        r = static_balance(grids, nprocs)
        assert sum(r.procs_per_grid) == nprocs
        assert all(c >= 1 for c in r.procs_per_grid)

    @settings(max_examples=100, deadline=None)
    @given(grid_lists, st.integers(min_value=0, max_value=32))
    def test_bigger_grid_never_fewer_procs_when_much_bigger(self, grids, extra):
        """A grid at least 2x larger than another never receives fewer
        processors (monotone fairness up to integer effects)."""
        nprocs = len(grids) + extra
        r = static_balance(grids, nprocs)
        for i, gi in enumerate(grids):
            for j, gj in enumerate(grids):
                if gi >= 2 * gj and gj > 0:
                    assert r.procs_per_grid[i] >= r.procs_per_grid[j] - 1

    @settings(max_examples=100, deadline=None)
    @given(grid_lists)
    def test_equal_procs_and_grids(self, grids):
        r = static_balance(grids, len(grids))
        assert r.procs_per_grid == tuple([1] * len(grids))
