"""Edge-case battery for Algorithms 1 and 2 (ISSUE satellite).

Covers the pathological shapes the paper's schemes must survive:
fewer processors than grids, one giant grid amid many tiny ones,
f0 = infinity as the "never rebalance" switch, and the integer
tolerance-relaxation loop's termination + processor conservation over
adversarial random inputs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.rollup import IgbpRollup
from repro.partition.assignment import build_partition
from repro.partition.dynamic_lb import DynamicRebalancer, dynamic_rebalance
from repro.partition.static_lb import static_balance


class TestFewerProcsThanGrids:
    """P < number of grids: each grid needs a whole processor, so this
    must fail loudly at every entry point, never mis-partition."""

    def test_static_balance_raises(self):
        with pytest.raises(ValueError, match="cannot cover"):
            static_balance([100, 100, 100, 100], 3)

    def test_build_partition_raises(self):
        with pytest.raises(ValueError, match="cannot cover"):
            build_partition([(10, 10), (10, 10), (10, 10)], 2)

    def test_exactly_one_proc_per_grid_is_fine(self):
        res = static_balance([5, 500, 50_000], 3)
        assert res.procs_per_grid == (1, 1, 1)

    @settings(max_examples=30, deadline=None)
    @given(
        ngrids=st.integers(2, 12),
        deficit=st.integers(1, 5),
        seed=st.integers(0, 1_000),
    )
    def test_any_deficit_raises(self, ngrids, deficit, seed):
        rng = np.random.default_rng(seed)
        grids = rng.integers(1, 10_000, size=ngrids).tolist()
        with pytest.raises(ValueError):
            static_balance(grids, max(1, ngrids - deficit))


class TestGiantPlusTinyGrids:
    """One giant grid + many tiny grids: the np >= 1 clamp over-counts,
    the relaxation loop must still converge and hand the giant grid all
    spare processors."""

    def test_giant_gets_the_surplus(self):
        grids = [1_000_000] + [10] * 30
        res = static_balance(grids, 40)
        assert sum(res.procs_per_grid) == 40
        assert all(c == 1 for c in res.procs_per_grid[1:])
        assert res.procs_per_grid[0] == 10

    def test_barely_enough_processors(self):
        grids = [1_000_000] + [10] * 30
        res = static_balance(grids, 31)  # exactly one each
        assert res.procs_per_grid == (1,) + (1,) * 30

    def test_many_tiny_overcount_converges(self):
        """Tiny grids clamp to 1 proc each: initial counts exceed NP and
        the printed growing-eps branch must shrink them back."""
        grids = [50] * 20 + [100_000]
        res = static_balance(grids, 22)
        assert sum(res.procs_per_grid) == 22
        assert res.procs_per_grid[-1] >= 2

    def test_dynamic_rebalance_conserves_on_skewed_partition(self):
        part = build_partition([(100, 100), (4, 4), (4, 4)], 8)
        igbp = np.zeros(8)
        # Overload one tiny grid's single processor.
        tiny_rank = next(
            r for r in range(8) if part.grid_of_rank(r) == 1
        )
        igbp[tiny_rank] = 1_000.0
        new = dynamic_rebalance(part, igbp, f0=2.0)
        if new is not None:
            assert new.nprocs == part.nprocs
            assert all(c >= 1 for c in new.procs_per_grid)
            assert new.procs_per_grid[1] >= part.procs_per_grid[1]


class TestF0Infinity:
    """f0 = inf is the paper's "leave the flow solver optimal" switch:
    no amount of imbalance may trigger a repartition."""

    def test_direct_call_is_noop(self):
        part = build_partition([(30, 30), (10, 10)], 6)
        worst = np.array([1e9, 0, 0, 0, 0, 0])
        assert dynamic_rebalance(part, worst, math.inf) is None

    def test_rebalancer_never_fires_over_many_windows(self):
        part = build_partition([(30, 30), (10, 10)], 6)
        rb = DynamicRebalancer(f0=math.inf, check_interval=2)
        for step in range(1, 21):
            rb.record(np.array([1e9, 0, 0, 0, 0, 0]))
            assert rb.maybe_rebalance(part, step) is None
        assert rb.history == []

    def test_rollup_input_is_noop_too(self):
        part = build_partition([(30, 30), (10, 10)], 6)
        roll = IgbpRollup()
        roll.record(np.array([1e9, 0, 0, 0, 0, 0]))
        assert dynamic_rebalance(part, roll, math.inf) is None


class TestToleranceLoopTermination:
    """Algorithm 1's tolerance relaxation always terminates and returns
    counts that conserve NP exactly — over adversarial random inputs
    with up to 10^9:1 size ratios."""

    @settings(max_examples=60, deadline=None)
    @given(
        grids=st.lists(st.integers(1, 1_000_000_000), min_size=1,
                       max_size=16),
        extra=st.integers(0, 50),
    )
    def test_terminates_and_conserves_processors(self, grids, extra):
        nprocs = len(grids) + extra
        res = static_balance(grids, nprocs)
        assert sum(res.procs_per_grid) == nprocs
        assert all(c >= 1 for c in res.procs_per_grid)
        assert res.iterations >= 0 and res.tau >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        grids=st.lists(st.integers(1, 10_000), min_size=2, max_size=8),
        extra=st.integers(0, 20),
        seed=st.integers(0, 1_000),
    )
    def test_minimum_constraints_respected_and_conserved(
        self, grids, extra, seed
    ):
        nprocs = len(grids) + extra
        rng = np.random.default_rng(seed)
        # Random feasible minimums (sum <= nprocs, each >= 1).
        mins = [1] * len(grids)
        for _ in range(nprocs - len(grids)):
            if rng.random() < 0.4:
                mins[int(rng.integers(0, len(grids)))] += 1
        res = static_balance(grids, nprocs, min_points_constraints=mins)
        assert sum(res.procs_per_grid) == nprocs
        assert all(c >= m for c, m in zip(res.procs_per_grid, mins))

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        f0=st.floats(1.1, 10.0),
    )
    def test_dynamic_rebalance_always_conserves(self, seed, f0):
        """Whatever I(p) looks like, Algorithm 2 either declines or
        returns a partition over exactly the same processor count."""
        rng = np.random.default_rng(seed)
        dims = [(int(rng.integers(4, 40)), int(rng.integers(4, 40)))
                for _ in range(int(rng.integers(2, 5)))]
        nprocs = len(dims) + int(rng.integers(0, 10))
        part = build_partition(dims, nprocs)
        igbp = rng.integers(0, 1000, size=nprocs).astype(float)
        new = dynamic_rebalance(part, igbp, f0)
        if new is not None:
            assert new.nprocs == part.nprocs
            assert all(c >= 1 for c in new.procs_per_grid)

    def test_identical_grids_tie_break_terminates(self):
        """The paper's two-equal-grids / odd-processors pathology."""
        res = static_balance([1000, 1000], 3)
        assert sum(res.procs_per_grid) == 3
        assert sorted(res.procs_per_grid) == [1, 2]
