"""Tests for Partition construction."""

import numpy as np
import pytest

from repro.partition import Partition, build_partition
from repro.grids.subdomain import Box, Subdomain


class TestBuildPartition:
    def test_end_to_end(self):
        part = build_partition([(40, 40), (40, 40), (40, 40)], 9)
        assert part.nprocs == 9
        assert part.procs_per_grid == (3, 3, 3)
        assert part.load_imbalance() < 1.2

    def test_rank_numbering_contiguous_by_grid(self):
        part = build_partition([(20, 20), (20, 20)], 4)
        assert part.grid_of_rank(0) == 0
        assert part.grid_of_rank(3) == 1
        assert part.ranks_of_grid(0) == [0, 1]
        assert part.ranks_of_grid(1) == [2, 3]

    def test_subdomain_rank_fields_match_position(self):
        part = build_partition([(30, 30), (10, 50)], 6)
        for r in range(part.nprocs):
            assert part.subdomain_of(r).rank == r

    def test_points_per_rank_conserved(self):
        dims = [(37, 23), (41, 19), (13, 61)]
        part = build_partition(dims, 7)
        assert part.points_per_rank().sum() == sum(
            int(np.prod(d)) for d in dims
        )

    def test_explicit_counts_override(self):
        part = build_partition([(40, 40), (40, 40)], 6, procs_per_grid=[5, 1])
        assert part.procs_per_grid == (5, 1)
        assert part.balance is None

    def test_explicit_counts_must_sum(self):
        with pytest.raises(ValueError, match="sums to"):
            build_partition([(40, 40)], 6, procs_per_grid=[5])

    def test_min_constraints_forwarded(self):
        part = build_partition(
            [(40, 40), (40, 40)], 6, min_procs_constraints=[4, 1]
        )
        assert part.procs_per_grid[0] >= 4

    def test_oscillating_airfoil_shape(self):
        """Paper Fig. 2: three roughly equal grids on nine processors
        get three processors each."""
        part = build_partition([(147, 49), (147, 49), (85, 85)], 9)
        assert part.procs_per_grid == (3, 3, 3)


class TestPartitionValidation:
    def test_inconsistent_counts_raise(self):
        sd = Subdomain(0, 0, Box((0, 0), (4, 4)))
        with pytest.raises(ValueError, match="inconsistent"):
            Partition(((4, 4),), (2,), (sd,))
