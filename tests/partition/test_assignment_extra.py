"""Extra Partition coverage: imbalance metrics and repr."""

import numpy as np
import pytest

from repro.partition import build_partition


class TestImbalanceMetrics:
    def test_perfectly_divisible(self):
        part = build_partition([(32, 32), (32, 32)], 8)
        assert part.load_imbalance() == pytest.approx(1.0)

    def test_awkward_ratio_bounded(self):
        part = build_partition([(37, 23), (29, 31)], 7)
        assert 1.0 <= part.load_imbalance() < 2.0

    def test_points_conserved_across_many_configs(self):
        dims = [(41, 29), (23, 53), (31, 31)]
        total = sum(int(np.prod(d)) for d in dims)
        for nprocs in (3, 5, 8, 13, 21):
            part = build_partition(dims, nprocs)
            assert part.points_per_rank().sum() == total

    def test_repr_contains_summary(self):
        part = build_partition([(20, 20)], 4)
        r = repr(part)
        assert "4 ranks" in r and "imbalance" in r

    def test_grid_ranks_partition_everything(self):
        part = build_partition([(20, 20), (30, 10), (15, 15)], 9)
        all_ranks = sorted(
            sum((part.ranks_of_grid(g) for g in range(3)), [])
        )
        assert all_ranks == list(range(9))
