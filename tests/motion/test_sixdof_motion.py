"""Tests for the free-motion (6-DOF-integrated) adapter."""

import numpy as np
import pytest

from repro.motion import Loads, RigidBodyState, SixDof, SixDofMotion
from repro.motion.prescribed import StoreSeparation


def falling_body(mass=2.0):
    return SixDof(mass=mass, inertia=1.0)


class TestSixDofMotion:
    def test_matches_analytic_free_fall(self):
        g = -9.81

        def loads(state, t):
            return Loads(force=np.array([0.0, g * 2.0, 0.0]))

        m = SixDofMotion(falling_body(2.0), loads, internal_dt=0.01)
        p = m.at(1.0).apply(np.zeros(3))
        assert p[1] == pytest.approx(0.5 * g * 1.0**2, rel=1e-3)

    def test_identity_at_t0(self):
        m = SixDofMotion(falling_body(), lambda s, t: Loads(),
                         internal_dt=0.01)
        assert m.at(0.0).is_identity()

    def test_monotone_queries_cache(self):
        def loads(state, t):
            return Loads(force=np.array([1.0, 0.0, 0.0]))

        m = SixDofMotion(falling_body(1.0), loads, internal_dt=0.1)
        m.at(1.0)
        n_states = len(m._states)
        m.at(0.5)  # earlier query: no new integration
        assert len(m._states) == n_states

    def test_non_monotone_queries_consistent(self):
        def loads(state, t):
            return Loads(force=np.array([1.0, 0.0, 0.0]))

        m = SixDofMotion(falling_body(1.0), loads, internal_dt=0.1)
        late = m.at(2.0).apply(np.zeros(3))
        early = m.at(1.0).apply(np.zeros(3))
        again = m.at(2.0).apply(np.zeros(3))
        assert np.allclose(late, again)
        assert early[0] < late[0]

    def test_negative_time_rejected(self):
        m = SixDofMotion(falling_body(), lambda s, t: Loads(),
                         internal_dt=0.1)
        with pytest.raises(ValueError):
            m.at(-1.0)

    def test_bad_internal_dt(self):
        with pytest.raises(ValueError):
            SixDofMotion(falling_body(), lambda s, t: Loads(),
                         internal_dt=0.0)

    def test_2d_projection(self):
        def loads(state, t):
            return Loads(force=np.array([0.0, -1.0, 0.0]))

        m = SixDofMotion(falling_body(1.0), loads, internal_dt=0.05, ndim=2)
        motion = m.at(1.0)
        assert motion.ndim == 2


class TestFreeStoreMotion:
    def test_free_store_drops_like_prescribed(self):
        """The 6-DOF trajectory is qualitatively the prescribed one:
        accelerating drop with nose-down pitch."""
        from repro.cases.store import free_store_motion

        free = free_store_motion()
        prescribed = StoreSeparation(
            eject_velocity=0.08, gravity=0.04, pitch_rate=0.015,
            center=(0.5, 0.0, 0.0),
        )
        ref = np.array([0.5, 0.0, 0.0])
        for t in (1.0, 2.0, 4.0):
            yf = free.at(t).apply(ref)[1]
            yp = prescribed.at(t).apply(ref)[1]
            assert yf < 0 and yp < 0
            assert yf == pytest.approx(yp, abs=0.15)

    def test_parallel_performance_negligible_change(self):
        """Paper section 4.3: free motion changes the parallel
        performance negligibly."""
        from repro.cases import store_case
        from repro.core import OverflowD1
        from repro.machine import sp2

        times = {}
        for fm in (False, True):
            cfg = store_case(machine=sp2(nodes=20), scale=0.04,
                             nsteps=3, free_motion=fm)
            times[fm] = OverflowD1(cfg).run().time_per_step
        assert times[True] == pytest.approx(times[False], rel=0.05)
