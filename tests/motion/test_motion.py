"""Tests for rigid-body state, the 6-DOF integrator, and prescribed motions."""

import numpy as np
import pytest

from repro.grids.motion import RigidMotion
from repro.motion import (
    Loads,
    PitchOscillation,
    Quaternion,
    RigidBodyState,
    SixDof,
    SteadyDescent,
    StoreSeparation,
)


class TestQuaternion:
    def test_identity_rotation(self):
        assert np.allclose(Quaternion.identity().rotation_matrix(), np.eye(3))

    def test_axis_angle_matches_rodrigues(self):
        q = Quaternion.from_axis_angle((0, 0, 1), np.pi / 2)
        R = q.rotation_matrix()
        assert np.allclose(R @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_multiply_composes(self):
        qa = Quaternion.from_axis_angle((0, 0, 1), 0.3)
        qb = Quaternion.from_axis_angle((0, 1, 0), 0.4)
        Rab = qa.multiply(qb).rotation_matrix()
        assert np.allclose(Rab, qa.rotation_matrix() @ qb.rotation_matrix())

    def test_normalized(self):
        q = Quaternion(2.0, 0.0, 0.0, 0.0).normalized()
        assert np.allclose(q.q, [1, 0, 0, 0])

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValueError):
            Quaternion(0, 0, 0, 0).normalized()

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            Quaternion.from_axis_angle((0, 0, 0), 1.0)

    def test_derivative_magnitude(self):
        """|dq/dt| = |omega|/2 for a unit quaternion."""
        q = Quaternion.identity()
        dq = q.derivative(np.array([0.0, 0.0, 2.0]))
        assert np.linalg.norm(dq) == pytest.approx(1.0)


class TestRigidBodyState:
    def test_motion_from_reference_translation(self):
        s = RigidBodyState(position=np.array([1.0, 2.0, 3.0]))
        m = s.motion_from_reference()
        assert np.allclose(m.apply(np.zeros(3)), [1, 2, 3])

    def test_motion_2d_projection(self):
        s = RigidBodyState(
            position=np.array([1.0, 2.0, 0.0]),
            attitude=Quaternion.from_axis_angle((0, 0, 1), np.pi / 2),
        )
        m = s.motion_from_reference(ndim=2)
        assert m.ndim == 2
        assert np.allclose(m.apply(np.array([1.0, 0.0])), [1.0, 3.0])

    def test_copy_independent(self):
        s = RigidBodyState()
        c = s.copy()
        c.position[0] = 9.0
        assert s.position[0] == 0.0


class TestSixDof:
    def test_free_fall(self):
        """Constant force: analytic kinematics recovered by RK4."""
        body = SixDof(mass=2.0, inertia=1.0)
        g = np.array([0.0, -9.81 * 2.0, 0.0])  # force = m*g
        for _ in range(100):
            body.step(Loads(force=g), dt=0.01)
        t = 1.0
        assert body.state.position[1] == pytest.approx(-0.5 * 9.81 * t**2,
                                                       rel=1e-6)
        assert body.state.velocity[1] == pytest.approx(-9.81 * t, rel=1e-6)

    def test_constant_moment_spin_up(self):
        body = SixDof(mass=1.0, inertia=np.array([2.0, 2.0, 2.0]))
        for _ in range(100):
            body.step(Loads(moment=np.array([0.0, 0.0, 1.0])), dt=0.01)
        # omega = M t / I.
        assert body.state.omega_body[2] == pytest.approx(0.5, rel=1e-6)

    def test_attitude_integrates_rotation(self):
        body = SixDof(mass=1.0, inertia=1.0)
        body.state.omega_body = np.array([0.0, 0.0, np.pi])
        for _ in range(100):
            body.step(Loads(), dt=0.005)
        R = body.state.attitude.rotation_matrix()
        # Half a turn in 0.5 time units at omega = pi.
        want = Quaternion.from_axis_angle((0, 0, 1), np.pi * 0.5)
        assert np.allclose(R, want.rotation_matrix(), atol=1e-6)

    def test_quaternion_stays_unit(self):
        body = SixDof(mass=1.0, inertia=np.array([1.0, 2.0, 3.0]))
        body.state.omega_body = np.array([1.0, 2.0, 0.5])
        for _ in range(200):
            body.step(Loads(moment=np.array([0.1, -0.2, 0.05])), dt=0.01)
        assert np.linalg.norm(body.state.attitude.q) == pytest.approx(1.0)

    def test_torque_free_energy_conserved(self):
        """Rotational kinetic energy is conserved in torque-free motion."""
        body = SixDof(mass=1.0, inertia=np.array([1.0, 2.0, 3.0]))
        body.state.omega_body = np.array([0.3, 0.5, 0.2])

        def energy():
            om = body.state.omega_body
            return 0.5 * float(np.sum(body.inertia * om * om))

        e0 = energy()
        for _ in range(500):
            body.step(Loads(), dt=0.01)
        assert energy() == pytest.approx(e0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="mass"):
            SixDof(mass=0.0, inertia=1.0)
        with pytest.raises(ValueError, match="inertia"):
            SixDof(mass=1.0, inertia=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ValueError, match="dt"):
            SixDof(mass=1.0, inertia=1.0).step(Loads(), dt=0.0)

    def test_run_returns_trajectory(self):
        body = SixDof(mass=1.0, inertia=1.0)
        traj = body.run(lambda s, t: Loads(), dt=0.1, nsteps=5)
        assert len(traj) == 5


class TestPitchOscillation:
    def test_paper_parameters(self):
        m = PitchOscillation()
        assert m.alpha0 == pytest.approx(np.deg2rad(5.0))
        assert m.omega == pytest.approx(np.pi / 2)

    def test_alpha_at_quarter_period(self):
        m = PitchOscillation()
        assert m.alpha(1.0) == pytest.approx(np.deg2rad(5.0))

    def test_zero_at_t0(self):
        assert PitchOscillation().at(0.0).is_identity()

    def test_pitch_center_fixed(self):
        m = PitchOscillation(center=(0.25, 0.0))
        motion = m.at(0.7)
        assert np.allclose(motion.apply(np.array([0.25, 0.0])), [0.25, 0.0])


class TestSteadyDescent:
    def test_linear_in_time(self):
        m = SteadyDescent(velocity=(0.0, -0.064, 0.0))
        p = m.at(10.0).apply(np.zeros(3))
        assert np.allclose(p, [0.0, -0.64, 0.0])

    def test_displacement_rate_constant(self):
        m = SteadyDescent(velocity=(0.0, -0.064, 0.0))
        r1 = m.displacement_rate(0.0, 0.1)
        r2 = m.displacement_rate(5.0, 0.1)
        assert r1 == pytest.approx(r2)
        assert r1 == pytest.approx(0.0064)


class TestStoreSeparation:
    def test_store_drops_and_accelerates(self):
        m = StoreSeparation()
        y1 = m.at(1.0).apply(np.array([0.5, 0.0, 0.0]))[1]
        y2 = m.at(2.0).apply(np.array([0.5, 0.0, 0.0]))[1]
        assert y1 < 0
        assert (0 - y2) > 2 * (0 - y1)  # accelerating

    def test_nose_pitches_down(self):
        m = StoreSeparation(center=(0.5, 0.0, 0.0))
        nose = np.array([0.0, 0.0, 0.0])  # ahead of the pivot
        tail = np.array([1.0, 0.0, 0.0])
        n1 = m.at(2.0).apply(nose)
        t1 = m.at(2.0).apply(tail)
        assert n1[1] < t1[1]  # nose below tail

    def test_pitch_saturates(self):
        m = StoreSeparation(pitch_rate=1.0, max_pitch=np.deg2rad(20))
        a = m.at(10.0)
        b = m.at(20.0)
        # Rotation part identical once saturated.
        assert np.allclose(a.rotation, b.rotation)

    def test_identity_at_t0(self):
        assert StoreSeparation().at(0.0).is_identity()
