"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert out.returncode == 0, f"{name} failed:\n{out.stderr[-2000:]}"
    return out.stdout


class TestExamples:
    def test_quickstart(self):
        stdout = run_example("quickstart.py")
        assert "Initial connectivity" in stdout
        assert "surface forces" in stdout.lower()

    def test_parallel_speedup_small(self):
        stdout = run_example("parallel_speedup.py", "0.05")
        assert "IBM SP2" in stdout
        assert "IBM SP" in stdout
        assert "speedup" in stdout

    def test_store_separation_small(self):
        stdout = run_example("store_separation.py", "0.03", "20")
        assert "Store trajectory" in stdout
        assert "static" in stdout and "dynamic" in stdout

    def test_adaptive_cartesian(self):
        stdout = run_example("adaptive_cartesian.py")
        assert "Algorithm-3 grouping" in stdout
        assert "searches avoided" in stdout

    def test_store_drop_3d(self):
        stdout = run_example("store_drop_3d.py")
        assert "Initial connectivity" in stdout
        assert "restart hit rate" in stdout

    def test_plot_figures(self, tmp_path):
        # Build one figure CSV so the renderer has input.
        csv = (
            "nodes,gridpoints/node,mflops/node,speedup,speedup_overflow,"
            "speedup_dcf3d,%dcf3d,time/step(s)\n"
            "6,100,20,1.0,1.0,1.0,10,0.5\n"
            "12,50,20,1.9,2.0,1.4,12,0.26\n"
        )
        (tmp_path / "figure5_sp2.csv").write_text(csv)
        stdout = run_example("plot_figures.py", str(tmp_path))
        assert "Fig. 5" in stdout
        assert "processors" in stdout
