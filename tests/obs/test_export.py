"""Tests for the trace exporters (Chrome JSON, CSV, ASCII timeline)."""

import json

import pytest

from repro.obs import (
    PhaseRollup,
    SpanTracer,
    ascii_timeline,
    chrome_trace,
    rollup_csv,
    write_chrome_trace,
    write_rollup_csv,
)


def toy_tracer():
    t = SpanTracer()
    t.op(0, "flow", "compute", 0.0, 1.0, flops=100.0)
    t.op(0, "flow", "comm", 1.0, 1.1, nbytes=64)
    t.op(0, "dcf", "wait", 1.1, 1.5, nbytes=64)
    t.op(1, "flow", "compute", 0.0, 1.5, flops=150.0)
    t.phase(0, 0.0, "flow")
    t.mark(1.5, "epoch", first_step=0, nsteps=2)
    return t


class TestChromeTrace:
    def test_valid_json_object_format(self):
        doc = json.loads(chrome_trace(toy_tracer()))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_metadata_names_ranks(self):
        doc = json.loads(chrome_trace(toy_tracer()))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "rank 0" in names and "rank 1" in names

    def test_op_events_microseconds(self):
        doc = json.loads(chrome_trace(toy_tracer()))
        ops = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("pid") == 0
        ]
        compute = next(e for e in ops if e["name"] == "compute")
        assert compute["ts"] == pytest.approx(0.0)
        assert compute["dur"] == pytest.approx(1.0e6)  # 1 s -> 1e6 us
        assert compute["cat"] == "flow"
        assert compute["args"]["flops"] == 100.0
        comm = next(e for e in ops if e["name"] == "comm")
        assert comm["args"]["bytes"] == 64

    def test_phase_bands_on_separate_track(self):
        doc = json.loads(chrome_trace(toy_tracer()))
        bands = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("pid") == 1
        ]
        assert {e["name"] for e in bands} == {"flow", "dcf"}
        assert all(e["cat"] == "phase" for e in bands)

    def test_marks_are_global_instants(self):
        doc = json.loads(chrome_trace(toy_tracer()))
        inst = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(inst) == 1
        assert inst[0]["name"] == "epoch"
        assert inst[0]["s"] == "g"
        assert inst[0]["args"]["nsteps"] == 2

    def test_comm_counter_series_cumulative_per_phase(self):
        t = toy_tracer()
        t.send(0.5, 0, 1, 7, 64, "flow")
        t.send(1.0, 1, 0, 7, 32, "flow")
        t.send(1.2, 0, 1, 8, 16, "dcf")
        doc = json.loads(chrome_trace(t))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert all(e["pid"] == 2 and e["cat"] == "comm" for e in counters)
        flow = [e for e in counters if e["name"] == "comm flow"]
        assert [e["args"]["bytes"] for e in flow] == [64, 96]
        assert [e["args"]["msgs"] for e in flow] == [1, 2]
        dcf = [e for e in counters if e["name"] == "comm dcf"]
        assert [e["args"]["bytes"] for e in dcf] == [16]
        assert flow[0]["ts"] == pytest.approx(0.5e6)
        meta = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["pid"] == 2
        ]
        assert meta[0]["args"]["name"] == "comm counters"

    def test_no_counters_without_sends(self):
        doc = json.loads(chrome_trace(toy_tracer()))
        assert not [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert not [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["pid"] == 2
        ]

    def test_pretty_flag_indents(self):
        assert "\n" in chrome_trace(toy_tracer(), pretty=True)
        assert "\n" not in chrome_trace(toy_tracer(), pretty=False)

    def test_write_creates_parents(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "t.json"
        got = write_chrome_trace(toy_tracer(), out)
        assert got == out and out.exists()
        json.loads(out.read_text())


class TestRollupCsv:
    def test_header_and_rows(self):
        roll = PhaseRollup.from_tracer(toy_tracer())
        lines = rollup_csv(roll).splitlines()
        assert lines[0] == (
            "rank,phase,compute_s,comm_s,wait_s,total_s,flops,bytes,events"
        )
        # nranks * nphases data rows.
        assert len(lines) == 1 + roll.nranks * len(roll.phases())
        row0 = lines[1].split(",")
        assert row0[0] == "0" and row0[1] == "flow"
        assert float(row0[2]) == pytest.approx(1.0)  # compute_s
        assert int(row0[8]) == 2  # events

    def test_write_roundtrip(self, tmp_path):
        roll = PhaseRollup.from_tracer(toy_tracer())
        path = write_rollup_csv(roll, tmp_path / "r.csv")
        text = path.read_text()
        assert text.endswith("\n")
        assert len(text.splitlines()) == 1 + roll.nranks * 2


class TestAsciiTimeline:
    def test_renders_rows_and_legend(self):
        art = ascii_timeline(toy_tracer(), width=40)
        assert "rank   0" in art and "rank   1" in art
        assert "flow" in art and "dcf" in art

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            ascii_timeline(SpanTracer())

    def test_width_respected(self):
        art = ascii_timeline(toy_tracer(), width=24)
        row = next(
            ln for ln in art.splitlines() if ln.startswith("rank   0")
        )
        assert row.count("|") == 2
        body = row.split("|")[1]
        assert len(body) == 24
