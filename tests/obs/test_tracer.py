"""Unit tests for the span tracer and the scheduler's recording sites."""

import pytest

from repro.machine import (
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    Simulator,
)
from repro.obs import NullTracer, SpanTracer, Tracer


def make_machine(nodes=2, flops=1e6, latency=1e-4, bandwidth=1e6):
    return MachineSpec(
        "test", nodes, NodeSpec(flops), NetworkSpec(latency, bandwidth)
    )


def run(machine, program, tracer=None, *args):
    sim = Simulator(machine, tracer=tracer)
    sim.spawn_all(program, *args)
    return sim.run()


class TestTracerInterface:
    def test_base_tracer_is_disabled_noop(self):
        t = Tracer()
        assert t.enabled is False
        # All recording calls are silent no-ops.
        t.op(0, "p", "compute", 0.0, 1.0)
        t.phase(0, 0.0, "p")
        t.mark(0.0, "m", detail=1)
        t.advance(5.0)
        assert t.offset == 0.0

    def test_null_tracer_is_disabled(self):
        assert NullTracer().enabled is False

    def test_span_tracer_enabled(self):
        assert SpanTracer().enabled is True

    def test_empty_trace_views(self):
        t = SpanTracer()
        assert len(t) == 0
        assert t.nranks == 0
        assert t.t_end == 0.0
        assert t.phase_spans() == {}

    def test_offset_applied_at_record_time(self):
        t = SpanTracer()
        t.op(0, "a", "compute", 0.0, 1.0, flops=5.0)
        t.advance(10.0)
        t.op(0, "a", "compute", 0.0, 1.0)
        t.phase(1, 2.0, "b")
        t.mark(0.5, "epoch", k=3)
        assert t.ops[0][3:5] == (0.0, 1.0)
        assert t.ops[1][3:5] == (10.0, 11.0)
        assert t.phase_marks == [(1, 12.0, "b")]
        assert t.marks == [(10.5, "epoch", {"k": 3})]
        assert t.offset == 10.0
        assert t.t_end == 11.0

    def test_negative_advance_raises(self):
        with pytest.raises(ValueError, match="advance"):
            SpanTracer().advance(-1.0)

    def test_rank_ops_filters(self):
        t = SpanTracer()
        t.op(0, "a", "compute", 0.0, 1.0)
        t.op(1, "a", "compute", 0.0, 2.0)
        t.op(0, "a", "comm", 1.0, 1.5)
        assert len(t.rank_ops(0)) == 2
        assert len(t.rank_ops(1)) == 1
        assert t.nranks == 2

    def test_phase_spans_coalesce_contiguous(self):
        t = SpanTracer()
        t.op(0, "flow", "compute", 0.0, 1.0)
        t.op(0, "flow", "comm", 1.0, 1.2)
        t.op(0, "dcf", "compute", 1.2, 2.0)
        t.op(0, "flow", "compute", 2.0, 2.5)
        spans = t.phase_spans()[0]
        assert spans == [
            (0.0, 1.2, "flow"),
            (1.2, 2.0, "dcf"),
            (2.0, 2.5, "flow"),
        ]

    def test_phase_spans_keep_gaps_separate(self):
        t = SpanTracer()
        t.op(0, "flow", "compute", 0.0, 1.0)
        t.op(0, "flow", "compute", 3.0, 4.0)  # rank idle in between
        spans = t.phase_spans()[0]
        assert len(spans) == 2


class TestSchedulerEmission:
    def test_compute_span_recorded_with_flops(self):
        def program(comm):
            yield from comm.set_phase("solve")
            yield from comm.compute(flops=2e6)

        tracer = SpanTracer()
        r = run(make_machine(nodes=1), program, tracer)
        computes = [e for e in tracer.ops if e[2] == "compute"]
        assert len(computes) == 1
        rank, phase, kind, t0, t1, flops, nbytes = computes[0]
        assert (rank, phase) == (0, "solve")
        assert t1 - t0 == pytest.approx(2.0)
        assert flops == pytest.approx(2e6)
        assert r.elapsed == pytest.approx(2.0)

    def test_send_recv_spans(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(flops=1e6)
                yield from comm.send(1, tag=7, nbytes=4096)
            else:
                yield from comm.recv(src=0, tag=7)

        tracer = SpanTracer()
        run(make_machine(), program, tracer)
        comms = [e for e in tracer.ops if e[2] == "comm" and e[0] == 0]
        waits = [e for e in tracer.ops if e[2] == "wait" and e[0] == 1]
        assert comms and comms[-1][6] == 4096  # sender-side bytes
        assert len(waits) == 1
        # Rank 1 blocked from t=0 until the message landed.
        assert waits[0][3] == pytest.approx(0.0)
        assert waits[0][4] > 0.0
        assert waits[0][6] == 4096

    def test_phase_marks_recorded(self):
        def program(comm):
            yield from comm.set_phase("a")
            yield from comm.compute(flops=1e5)
            yield from comm.set_phase("b")
            yield from comm.compute(flops=1e5)

        tracer = SpanTracer()
        run(make_machine(nodes=2), program, tracer)
        names = [(r, n) for r, _t, n in tracer.phase_marks]
        assert names.count((0, "a")) == 1
        assert names.count((1, "b")) == 1

    def test_disabled_tracer_dropped_at_construction(self):
        sim = Simulator(make_machine(), tracer=NullTracer())
        assert sim._tracer is None

    def test_tracing_does_not_change_virtual_time(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(flops=3e6)
                yield from comm.send(1, tag=1, nbytes=1 << 16)
            else:
                yield from comm.recv(src=0, tag=1)
                yield from comm.compute(flops=1e6)

        plain = run(make_machine(), program)
        traced = run(make_machine(), program, SpanTracer())
        assert traced.elapsed == plain.elapsed  # bit-identical

    def test_trace_covers_scheduler_total(self):
        """Each rank's spans tile its own clock; the max equals elapsed."""

        def program(comm):
            yield from comm.set_phase("p")
            yield from comm.compute(flops=(comm.rank + 1) * 1e6)
            yield from comm.barrier()

        tracer = SpanTracer()
        r = run(make_machine(nodes=3), program, tracer)
        finals = []
        for rank in range(3):
            ops = tracer.rank_ops(rank)
            accounted = sum(e[4] - e[3] for e in ops)
            final = max(e[4] for e in ops)
            # Spans are gapless: summed durations equal the rank's own
            # final clock (the barrier release is staggered, so ranks
            # may retire at slightly different virtual times).
            assert accounted == pytest.approx(final, rel=1e-12)
            finals.append(final)
        assert max(finals) == pytest.approx(r.elapsed, rel=1e-12)
