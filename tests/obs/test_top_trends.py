"""Live tailing (`repro top`) and per-step trend analytics."""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cases import airfoil_case
from repro.core import OverflowD1
from repro.machine import sp2
from repro.obs.store import (
    KIND_OP,
    KIND_SEND,
    SegmentWriter,
    StoreTracer,
    TailReader,
    load_index,
)
from repro.obs.store.codec import encode_record
from repro.obs.store.segment import shard_segments
from repro.obs.store.top import TopAggregator, render_top, run_top
from repro.obs.perf.trends import (
    step_series,
    trend_block,
    trend_chart,
    trend_csv,
    write_trend_csv,
)


def op_rec(seq, rank, phase, kind, t0, t1, flops=0.0, nbytes=0):
    return (seq, KIND_OP, [rank, phase, kind, t0, t1, flops, nbytes])


class TestTailReader:
    def test_incremental_polls_see_only_new_records(self, tmp_path):
        store = StoreTracer(tmp_path, flush_bytes=1)
        store.op(0, "p", "compute", 0.0, 1.0)
        store.flush()
        tail = TailReader(tmp_path)
        first = tail.poll()
        assert [seq for seq, _, _ in first] == [0]
        assert tail.poll() == []
        store.op(1, "p", "compute", 1.0, 2.0)
        store.send(1.0, 0, 1, 5, 256, "p")
        store.flush()
        second = tail.poll()
        assert [seq for seq, _, _ in second] == [1, 2]
        store.close()

    def test_partial_frame_is_in_flight_not_an_error(self, tmp_path):
        w = SegmentWriter(tmp_path, "0", flush_bytes=1)
        w.append(KIND_OP, 0, (0, "p", "compute", 0.0, 1.0, 0.0, 0))
        w.close()
        tail = TailReader(tmp_path)
        assert len(tail.poll()) == 1
        # A writer mid-flush: half a frame on disk.
        frame = encode_record(KIND_OP, 1, (0, "p", "compute", 1.0, 2.0,
                                           0.0, 0))
        path = shard_segments(tmp_path)["0"][-1]
        with open(path, "ab") as f:
            f.write(frame[: len(frame) // 2])
        assert tail.poll() == []  # retried, not raised
        with open(path, "ab") as f:
            f.write(frame[len(frame) // 2:])
        assert [seq for seq, _, _ in tail.poll()] == [1]

    def test_follows_segment_rotation(self, tmp_path):
        store = StoreTracer(tmp_path, segment_bytes=256, flush_bytes=1)
        tail = TailReader(tmp_path)
        total = 0
        for i in range(60):
            store.op(0, "p", "compute", float(i), float(i) + 0.5)
            if i % 7 == 0:
                total += len(tail.poll())
        store.close()
        total += len(tail.poll())
        assert total == 60
        assert len(shard_segments(tmp_path)["0"]) > 1


class TestTopAggregator:
    def feed_basic(self):
        agg = TopAggregator()
        agg.feed([
            op_rec(0, 0, "overflow", "compute", 0.0, 3.0),
            op_rec(1, 0, "overflow", "wait", 3.0, 4.0),
            op_rec(2, 1, "overflow", "compute", 0.0, 1.0),
            (3, KIND_SEND, [0.5, 0, 1, 9, 4096, "overflow"]),
            (4, KIND_SEND, [0.6, 0, 1, 9, 1024, "overflow"]),
            (5, KIND_SEND, [0.7, 1, 0, 9, 512, "overflow"]),
        ])
        return agg

    def test_busy_wait_and_imbalance(self):
        agg = self.feed_basic()
        assert agg.ranks[0]["busy"] == pytest.approx(3.0)
        assert agg.ranks[0]["wait"] == pytest.approx(1.0)
        f = agg.imbalance()
        # mean busy = 2.0 -> f(0)=1.5, f(1)=0.5 (paper's f(p) shape).
        assert f[0] == pytest.approx(1.5)
        assert f[1] == pytest.approx(0.5)

    def test_hot_edges_sorted_by_bytes(self):
        agg = self.feed_basic()
        assert agg.hot_edges() == [(0, 1, 2, 5120), (1, 0, 1, 512)]
        assert agg.sends == 3


class TestRenderAndRunTop:
    def make_store(self, tmp_path, nranks=3, steps=2):
        store = StoreTracer(tmp_path)
        t = 0.0
        for step in range(steps):
            for r in range(nranks):
                store.phase(r, t, "overflow")
                store.op(r, "overflow", "compute", t, t + 1.0 + 0.2 * r)
                store.op(r, "overflow", "wait", t + 1.6, t + 1.8)
                store.send(t, r, (r + 1) % nranks, 3, 2048, "overflow")
            store.mark(t, "step", n=step)
            t += 2.0
        store.close()

    def test_snapshot_contents(self, tmp_path):
        self.make_store(tmp_path)
        frames = []
        rc = run_top(tmp_path, once=True, emit=frames.append)
        assert rc == 0 and len(frames) == 1
        frame = frames[0]
        assert str(tmp_path) in frame
        assert "complete" in frame
        assert "hot edges (by bytes):" in frame
        assert "recent marks:" in frame
        # One row per rank, with busy seconds and f(p).
        for rank in range(3):
            assert any(line.split()[:1] == [str(rank)]
                       for line in frame.splitlines())
        assert "f(p)" in frame

    def test_loop_mode_terminates_on_complete_store(self, tmp_path):
        self.make_store(tmp_path)
        frames = []
        rc = run_top(tmp_path, interval=0.0, emit=frames.append)
        assert rc == 0
        assert frames  # rendered at least once, then observed completion

    def test_loop_mode_bounded_on_live_store(self, tmp_path):
        store = StoreTracer(tmp_path, flush_bytes=1)
        store.op(0, "p", "compute", 0.0, 1.0)
        store.flush()  # live: index not yet complete
        frames = []
        rc = run_top(tmp_path, interval=0.0, emit=frames.append,
                     max_refreshes=3)
        assert rc == 0
        assert len(frames) == 3
        store.close()

    def test_cli_top_once(self, tmp_path, capsys):
        from repro.cli import main

        self.make_store(tmp_path)
        assert main(["top", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "complete" in out

    def test_cli_top_missing_store_errors(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no trace store"):
            main(["top", str(tmp_path / "nope"), "--once"])


def sim_steps(tmp_path, nsteps=4):
    store = StoreTracer(tmp_path)
    cfg = airfoil_case(machine=sp2(nodes=4), scale=0.1, nsteps=nsteps)
    OverflowD1(cfg, tracer=store).run()
    store.close()
    return load_index(tmp_path)["steps"]


class TestTrends:
    def test_step_series_shapes(self, tmp_path):
        steps = sim_steps(tmp_path, nsteps=4)
        series = step_series(steps)
        assert series["steps"] == 4
        assert "overflow" in series["phases"]
        for phase in series["phases"]:
            assert len(series["phase_total_s"][phase]) == 4
            assert len(series["phase_max_s"][phase]) == 4
        assert len(series["imbalance"]) == 4
        assert all(f >= 1.0 for f in series["imbalance"])
        assert all(b > 0 for b in series["busy_s"])

    def test_trend_block_is_json_safe_and_bounded(self, tmp_path):
        steps = sim_steps(tmp_path, nsteps=3)
        block = trend_block(steps)
        json.dumps(block, allow_nan=False)  # canonical-JSON compatible
        assert block["steps"] == 3
        assert block["imbalance_max"] == max(block["imbalance"])
        assert len(block["busy_s"]) == 3

    def test_trend_chart_renders_both_charts(self, tmp_path):
        steps = sim_steps(tmp_path, nsteps=3)
        chart = trend_chart(step_series(steps))
        assert "per-step phase time" in chart
        assert "per-step busy imbalance" in chart

    def test_trend_csv_roundtrips_through_csv_reader(self, tmp_path):
        import csv
        import io

        steps = sim_steps(tmp_path, nsteps=3)
        text = trend_csv(steps)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][:5] == ["step", "span_s", "busy_s", "wait_s",
                               "imbalance"]
        assert len(rows) == 4  # header + 3 steps
        assert [r[0] for r in rows[1:]] == ["0", "1", "2"]
        out = write_trend_csv(steps, tmp_path / "trends.csv")
        assert out.read_text() == text

    def test_empty_steps(self):
        series = step_series([])
        assert series["steps"] == 0
        assert series["imbalance"] == []
        assert trend_chart(series) == "(no steps recorded)"
        block = trend_block([])
        assert block["steps"] == 0 and block["imbalance_max"] == 1.0
        assert trend_csv([]).splitlines()[0].startswith("step,")


class TestBenchTrend:
    def test_bench_payload_carries_deterministic_trend(self, tmp_path):
        from repro.obs.perf.bench import bench_payload

        def simulated(store_dir):
            payload = bench_payload(
                "airfoil", quick=True, repeats=1, microbench=False,
                trace_store=str(store_dir),
            )
            return payload["simulated"]

        a = simulated(tmp_path / "a")
        b = simulated(tmp_path / "b")
        assert "trend" in a
        assert a["trend"]["steps"] > 0
        assert len(a["trend"]["imbalance"]) == a["trend"]["steps"]
        # Deterministic: same case, same knobs, byte-identical section.
        dump = lambda p: json.dumps(p, sort_keys=True, allow_nan=False)
        assert dump(a) == dump(b)
        # The store named in trace_store was actually used and sealed.
        assert load_index(tmp_path / "a")["complete"] is True


@pytest.mark.mp
class TestLiveTopOverMp:
    """Acceptance: `repro top --once` snapshots a live mp job."""

    def test_top_once_during_and_after_mp_run(self, tmp_path):
        from repro.backend.mp import mp_available

        if mp_available() is not None:
            pytest.skip(str(mp_available()))
        store = tmp_path / "store"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", "airfoil",
             "--backend", "mp", "--nodes", "4", "--scale", "0.25",
             "--steps", "6", "--trace-store", str(store)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        try:
            deadline = time.monotonic() + 120
            while not store.is_dir() or (
                load_index(store) is None
                and not any(store.glob("shard-*.seg"))
            ):
                if time.monotonic() >= deadline:
                    pytest.fail("trace store never appeared")
                if proc.poll() is not None and not store.is_dir():
                    pytest.fail("mp run exited without creating the store")
                time.sleep(0.1)
            # Snapshot while the job may still be running: must render
            # cleanly from whatever is durable.
            frames = []
            assert run_top(store, once=True, emit=frames.append) == 0
            assert "repro top" in frames[0]
            assert proc.wait(timeout=240) == 0
            # After completion the snapshot shows the sealed store.
            frames = []
            assert run_top(store, once=True, emit=frames.append) == 0
            final = frames[0]
            assert "complete" in final
            assert "wall clock" in final
            for rank in range(4):
                assert any(line.split()[:1] == [str(rank)]
                           for line in final.splitlines())
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
