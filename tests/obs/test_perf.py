"""Performance-observatory tests (critical path, comm matrix, bench,
trace-diff, hook batching).

The determinism claims are load-bearing: the CI perf gate compares
canonical BENCH JSON byte-for-byte (simulated section), so these tests
assert bit-identical re-emission, zero-diff on identical runs, and the
losslessness of the batched sanitizer hooks.
"""

import json
import math

import pytest

from repro.analysis import Sanitizer
from repro.core import OverflowD1
from repro.machine import sp2
from repro.machine.scheduler import Simulator
from repro.obs import SpanTracer
from repro.obs.perf import (
    BENCH_CASES,
    BENCH_SCHEMA,
    CommMatrix,
    analyze_critical_path,
    bench_payload,
    canonical_json,
    diff_bench,
    diff_files,
    hook_overhead_microbench,
    run_bench,
    write_bench,
)
from repro.obs.perf.bench import TAG_STORM, _run_storm, config_sha


def x38_quick_payload(**kw):
    kw.setdefault("quick", True)
    kw.setdefault("repeats", 1)
    kw.setdefault("microbench", False)
    return bench_payload("x38", **kw)


@pytest.fixture(scope="module")
def payload():
    return x38_quick_payload()


@pytest.fixture(scope="module")
def traced_x38():
    """One traced x38 quick run: (run, tracer)."""
    from repro.obs.perf.bench import BENCH_CASES, _build_config

    cfg, _ = _build_config(BENCH_CASES["x38"], quick=True)
    tracer = SpanTracer()
    run = OverflowD1(cfg, tracer=tracer).run()
    return run, tracer


# ----------------------------------------------------------------------
# canonical JSON


class TestCanonicalJson:
    def test_byte_stable_and_sorted(self):
        a = canonical_json({"b": 1, "a": [1, 2, (3, 4)]})
        b = canonical_json({"a": [1, 2, [3, 4]], "b": 1})
        assert a == b
        assert a.endswith("\n")
        assert json.loads(a) == {"a": [1, 2, [3, 4]], "b": 1}

    def test_non_finite_floats_stringed(self):
        blob = canonical_json({"x": math.inf, "y": -math.inf, "z": math.nan})
        assert json.loads(blob) == {"x": "inf", "y": "-inf", "z": "nan"}

    def test_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        blob = canonical_json({"i": np.int64(3), "f": np.float64(0.5)})
        assert json.loads(blob) == {"i": 3, "f": 0.5}

    def test_config_sha_is_stable(self):
        cfg = {"case": "x38", "nodes": 6}
        assert config_sha(cfg) == config_sha(dict(reversed(list(cfg.items()))))
        assert config_sha(cfg) != config_sha({"case": "x38", "nodes": 8})


# ----------------------------------------------------------------------
# comm matrix


class _FakeTracer:
    def __init__(self, nranks, sends):
        self.nranks = nranks
        self.sends = sends


class TestCommMatrix:
    def test_add_and_totals(self):
        m = CommMatrix(3)
        m.add(0, 1, 100, "overflow")
        m.add(0, 1, 100, "overflow")
        m.add(2, 0, 7, "dcf3d")
        assert m.total_bytes == 207
        assert m.total_messages == 3
        assert m.phases() == ["overflow", "dcf3d"]
        assert m.bytes_matrix("overflow")[0, 1] == 200
        assert m.msgs_matrix()[2, 0] == 1
        assert m.bytes_matrix("nope").sum() == 0

    def test_hot_edges_deterministic(self):
        m = CommMatrix(4)
        m.add(1, 2, 50, "p")
        m.add(0, 3, 50, "p")  # same bytes/msgs: ties break by (src, dst)
        m.add(2, 3, 900, "p")
        edges = m.hot_edges(k=3)
        assert [(e["src"], e["dst"]) for e in edges] == [(2, 3), (0, 3), (1, 2)]

    def test_from_tracer_and_to_dict(self):
        tr = _FakeTracer(2, [(0.0, 0, 1, 5, 64, "p"), (1.0, 1, 0, 5, 32, "p")])
        m = CommMatrix.from_tracer(tr)
        d = m.to_dict(top_k=1)
        assert d["nranks"] == 2
        assert d["total_bytes"] == 96
        assert d["phases"]["p"]["entries"] == [[0, 1, 1, 64], [1, 0, 1, 32]]
        assert len(d["hot_edges"]) == 1
        # to_dict is canonical-JSON clean.
        canonical_json(d)

    def test_format_small_matrix(self):
        m = CommMatrix(2)
        m.add(0, 1, 2048, "p")
        text = m.format()
        assert "comm matrix" in text and "hot edge" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CommMatrix(0)


# ----------------------------------------------------------------------
# critical path


class TestCriticalPath:
    def test_x38_chain_shape(self, traced_x38):
        run, tracer = traced_x38
        cp = analyze_critical_path(tracer, igbp=run.igbp_rollup())
        assert cp.nranks == run.nprocs
        assert cp.nsteps == run.nsteps
        assert cp.phase_order == ("overflow", "motion", "dcf3d")
        # Barrier-separated chain: every in-cycle step contributes one
        # link per phase it ran, ordered by (step, phase position).
        keys = [(c.step, c.phase) for c in cp.chain]
        assert keys == sorted(
            keys, key=lambda k: (k[0], cp.phase_order.index(k[1]))
        )
        assert cp.chain_seconds > 0
        # Every step contributes one link per cyclic phase.
        assert len(cp.chain) == run.nsteps * len(cp.phase_order)
        # Spans of adjacent links overlap across barrier skew, so the
        # chain is an upper bound on the run (never shorter than the
        # slowest single link).
        assert cp.chain_seconds >= max(c.span for c in cp.chain)
        for link in cp.chain:
            assert link.t1 >= link.t0
            assert link.imbalance >= 1.0 - 1e-12
            assert 0 <= link.critical_rank < cp.nranks

    def test_slack_accounting_closes(self, traced_x38):
        run, tracer = traced_x38
        cp = analyze_critical_path(tracer)
        # Per rank, compute+comm+wait+barrier sums to the rank's share
        # of the chain spans it participated in — all non-negative.
        for r, s in cp.rank_slack.items():
            assert 0 <= r < cp.nranks
            for v in s.values():
                assert v >= -1e-12
        total_slack = sum(
            s["wait_s"] + s["barrier_s"] for s in cp.rank_slack.values()
        )
        assert total_slack >= 0

    def test_igbp_block_matches_rollup(self, traced_x38):
        run, tracer = traced_x38
        igbp = run.igbp_rollup()
        cp = analyze_critical_path(tracer, igbp=igbp)
        assert cp.igbp is not None
        assert cp.igbp["I"] == [int(v) for v in igbp.accumulated()]
        assert cp.igbp["f_max"] == pytest.approx(float(igbp.f().max()))

    def test_wait_blame_names_real_ranks(self, traced_x38):
        _run, tracer = traced_x38
        cp = analyze_critical_path(tracer)
        for _phase, blames in cp.wait_blame.items():
            for rank, seconds in blames:
                assert 0 <= rank < cp.nranks
                assert seconds > 0

    def test_deterministic_across_runs(self, traced_x38):
        _run, tracer = traced_x38
        from repro.obs.perf.bench import BENCH_CASES, _build_config

        cfg, _ = _build_config(BENCH_CASES["x38"], quick=True)
        tracer2 = SpanTracer()
        OverflowD1(cfg, tracer=tracer2).run()
        a = analyze_critical_path(tracer).to_dict(include_steps=True)
        b = analyze_critical_path(tracer2).to_dict(include_steps=True)
        assert canonical_json(a) == canonical_json(b)

    def test_format_and_to_dict(self, traced_x38):
        run, tracer = traced_x38
        cp = analyze_critical_path(tracer, igbp=run.igbp_rollup())
        text = cp.format()
        assert "critical path" in text and "IGBP imbalance" in text
        d = cp.to_dict(include_steps=True)
        assert len(d["steps"]) == len(cp.chain)
        canonical_json(d)  # serialisable


# ----------------------------------------------------------------------
# hook batching


class TestHookBatching:
    def test_batched_run_bit_identical_to_eager(self):
        machine = sp2(nodes=4)
        results = {}
        traces = {}
        for mode, eager in (("eager", True), ("batched", False)):
            tracer = SpanTracer()
            san = Sanitizer()
            sim = Simulator(
                machine, tracer=tracer, sanitizer=san, eager_hooks=eager
            )
            from repro.obs.perf.bench import _storm_program

            for _ in range(4):
                sim.spawn(_storm_program, 20, 64)
            res = sim.run()
            results[mode] = (res.elapsed, san.messages_sent,
                             san.messages_received, san.report().ok)
            traces[mode] = (tracer.ops, tracer.sends, tracer.recvs)
        assert results["eager"] == results["batched"]
        assert traces["eager"] == traces["batched"]

    def test_batched_findings_match_eager_on_tag_collision(self):
        # Two subsystems sharing one tag in one phase: the finding (a
        # src/dst collision profile) must survive batching because the
        # full hook still runs for the first message of each key.
        def prog(comm):
            yield from comm.set_phase("p")
            if comm.rank == 0:
                yield from comm.send(2, TAG_STORM, None, nbytes=8)
            elif comm.rank == 1:
                yield from comm.send(2, TAG_STORM, None, nbytes=8)
            else:
                yield from comm.recv(0, TAG_STORM)
                yield from comm.recv(1, TAG_STORM)
            return None

        codes = {}
        for mode, eager in (("eager", True), ("batched", False)):
            san = Sanitizer()
            sim = Simulator(sp2(nodes=3), sanitizer=san, eager_hooks=eager)
            sim.spawn_all(prog)
            sim.run()
            codes[mode] = sorted(f.code for f in san.report().findings)
        assert codes["eager"] == codes["batched"]

    def test_microbench_counts_and_losslessness(self):
        out = hook_overhead_microbench(
            nranks=4, messages=50, rounds=2, direct_calls=2_000
        )
        total = out["total_sends"]
        assert total == 200
        # Eager: one hook call per send + per recv (plus collectives if
        # any); batched: one full on_send for the single (tag, phase)
        # key. The reduction is the tentpole's structural win.
        assert out["eager_hook_calls"] >= 2 * total
        assert out["batched_hook_calls"] == 1
        assert out["hook_call_reduction"] >= 2 * total
        assert out["eager_ns_per_send"] > 0
        assert out["batched_ns_per_send"] > 0


# ----------------------------------------------------------------------
# bench payloads


class TestBenchPayload:
    def test_schema_and_required_sections(self, payload):
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["case"] == "x38"
        assert payload["quick"] is True
        sim = payload["simulated"]
        for key in (
            "elapsed_s", "time_per_step_s", "mflops_per_node", "pct_dcf3d",
            "nsteps", "nranks", "phases", "imbalance", "critical_path",
            "comm", "sanitizer", "partition_history",
        ):
            assert key in sim, key
        # The paper's f(p) = I(p)/Ibar series is present and consistent.
        imb = sim["imbalance"]
        assert len(imb["f"]) == sim["nranks"]
        assert imb["f_max"] == pytest.approx(max(imb["f"]))
        assert sim["sanitizer"]["ok"] is True

    def test_simulated_section_bit_identical(self, payload):
        again = x38_quick_payload()
        assert canonical_json(payload["simulated"]) == canonical_json(
            again["simulated"]
        )
        assert payload["config_sha"] == again["config_sha"]

    def test_round_trip_re_emits_identical_bytes(self, payload, tmp_path):
        path = write_bench(payload, tmp_path)
        assert path.name == "BENCH_x38.json"
        text = path.read_text()
        assert canonical_json(json.loads(text)) == text

    def test_unknown_case_and_bad_repeats(self):
        with pytest.raises(ValueError, match="unknown bench case"):
            bench_payload("nonsense")
        with pytest.raises(ValueError, match="repeats"):
            bench_payload("x38", repeats=0)

    def test_run_bench_writes_file(self, tmp_path):
        payload, path = run_bench(
            "x38", tmp_path, quick=True, repeats=1, microbench=False
        )
        assert path.exists()
        assert json.loads(path.read_text())["case"] == "x38"

    def test_all_cases_have_specs(self):
        assert {"airfoil", "x38", "deltawing", "store"} <= set(BENCH_CASES)
        for spec in BENCH_CASES.values():
            assert spec.knobs(True)["nsteps"] <= spec.knobs(False)["nsteps"]


# ----------------------------------------------------------------------
# trace-diff


class TestTraceDiff:
    def test_identical_payloads_zero_deltas(self, payload):
        report = diff_bench(payload, payload)
        assert report.ok
        assert report.changed == []
        assert "zero deltas" in report.format()

    def test_identical_runs_zero_deltas(self, payload):
        report = diff_bench(payload, x38_quick_payload())
        assert report.ok and report.changed == []

    def test_regression_and_improvement_direction(self, payload):
        worse = json.loads(canonical_json(payload))
        worse["simulated"]["elapsed_s"] *= 1.10  # +10% elapsed: worse
        report = diff_bench(payload, worse, tolerance=0.02)
        assert not report.ok
        paths = [d.path for d in report.regressions]
        assert "simulated.elapsed_s" in paths

        better = json.loads(canonical_json(payload))
        better["simulated"]["elapsed_s"] *= 0.90
        report = diff_bench(payload, better, tolerance=0.02)
        assert report.ok
        assert any(
            d.path == "simulated.elapsed_s" for d in report.improvements
        )

    def test_higher_is_better_metrics_invert(self, payload):
        worse = json.loads(canonical_json(payload))
        worse["simulated"]["mflops_per_node"] *= 0.80  # throughput drop
        report = diff_bench(payload, worse)
        assert any(
            d.path == "simulated.mflops_per_node" for d in report.regressions
        )

    def test_structural_change_is_regression(self, payload):
        other = json.loads(canonical_json(payload))
        other["simulated"]["nranks"] += 1
        report = diff_bench(payload, other)
        assert not report.ok
        assert any(d.kind == "changed" for d in report.regressions)

    def test_within_tolerance_unchanged(self, payload):
        near = json.loads(canonical_json(payload))
        near["simulated"]["elapsed_s"] *= 1.001
        assert diff_bench(payload, near, tolerance=0.02).ok

    def test_schema_mismatch_raises(self, payload):
        other = json.loads(canonical_json(payload))
        other["schema"] = "repro-bench/0"
        with pytest.raises(ValueError, match="schema mismatch"):
            diff_bench(payload, other)

    def test_deltas_sorted_by_path(self, payload):
        other = json.loads(canonical_json(payload))
        other["simulated"]["elapsed_s"] *= 2
        other["simulated"]["extra_metric"] = 1.0
        report = diff_bench(payload, other)
        paths = [d.path for d in report.deltas]
        assert paths == sorted(paths)
        assert any(d.kind == "added" for d in report.deltas)

    def test_diff_files(self, payload, tmp_path):
        a = write_bench(payload, tmp_path / "a")
        b = write_bench(payload, tmp_path / "b")
        report = diff_files(a, b)
        assert report.ok
        blob = json.loads(report.to_json())
        assert blob["ok"] is True and blob["deltas"] == []


# ----------------------------------------------------------------------
# sanitizer coverage of the adaptive driver (ISSUE satellite c)


class TestAdaptiveDriverSanitized:
    def test_adaptive_run_is_sanitizer_clean(self):
        from repro.adapt import AdaptiveDriver, AdaptiveSystem
        from repro.grids.bbox import AABB

        system = AdaptiveSystem(
            AABB((0.0, 0.0, 0.0), (4.0, 2.0, 2.0)),
            brick_extent=1.0,
            max_level=1,
            points_per_brick=5,
        )
        system.adapt([AABB((0.4, 0.4, 0.4), (0.8, 0.8, 0.8))], margin=0.1)
        san = Sanitizer()
        drv = AdaptiveDriver(system, sp2(nodes=4), sanitizer=san)
        drv.run(
            nsteps=4,
            body_boxes_fn=lambda step: [
                AABB((0.4 + 0.2 * step, 0.4, 0.4), (0.8 + 0.2 * step, 0.8, 0.8))
            ],
            adapt_interval=2,
        )
        report = san.report()
        assert report.ok, report.format()
        assert report.messages_sent > 0
        assert report.messages_sent == report.messages_received
