"""Streaming segment store: codec, segments, writer, reader, recovery.

The contract under test: anything recorded through
:class:`repro.obs.store.StoreTracer` reads back as the **exact**
in-memory :class:`SpanTracer` view — same tuples, same global order,
same exported bytes — while the writer's memory stays bounded by one
flush buffer per shard, and a crash mid-write costs at most the
unflushed tail of each shard.
"""

import json
import threading

import pytest

from repro.cases import airfoil_case, x38_case
from repro.core import OverflowD1
from repro.machine import sp2
from repro.obs import SpanTracer, ascii_timeline, chrome_trace
from repro.obs.store import (
    KIND_OP,
    STORE_FORMAT,
    SegmentWriter,
    StoreCodecError,
    StoreCorruptionError,
    StoreReader,
    StoreTracer,
    iter_segment_records,
    load_index,
    load_store,
    shard_segments,
)
from repro.obs.store.codec import (
    decode_record,
    decode_value,
    encode_record,
    encode_value,
    read_frame,
)
from repro.obs.store.writer import INDEX_NAME


def roundtrip(value):
    buf = bytearray()
    encode_value(value, buf)
    decoded, off = decode_value(bytes(buf), 0)
    assert off == len(buf)
    return decoded


class TestCodec:
    def test_scalar_roundtrip_preserves_exact_types(self):
        for value in (None, True, False, 0, 1, -1, 2**70, -(2**70),
                      0.0, -0.0, 1.5, 1e300, "", "phase", "päöx", b"",
                      b"\x00\xff"):
            got = roundtrip(value)
            assert got == value
            assert type(got) is type(value)

    def test_int_float_distinction_survives(self):
        # json.dumps(100) != json.dumps(100.0): exporters depend on it.
        assert type(roundtrip(100)) is int
        assert type(roundtrip(100.0)) is float

    def test_float_bit_exact(self):
        import math
        for value in (math.pi, 1e-308, float("inf"), float("-inf")):
            assert roundtrip(value) == value

    def test_containers(self):
        value = {"a": [1, 2.5, "x"], "b": {"c": None, "d": [True]}}
        assert roundtrip(value) == value

    def test_tuples_become_lists(self):
        assert roundtrip((1, 2)) == [1, 2]

    def test_non_str_dict_key_rejected(self):
        with pytest.raises(StoreCodecError):
            roundtrip({1: "x"})

    def test_unstorable_type_rejected(self):
        with pytest.raises(StoreCodecError):
            roundtrip(object())

    def test_numpy_scalars_reduce_to_python(self):
        import numpy as np
        assert roundtrip(np.int64(7)) == 7
        assert type(roundtrip(np.int64(7))) is int
        assert type(roundtrip(np.float64(7.5))) is float

    def test_record_roundtrip(self):
        rec = encode_record(KIND_OP, 42, (3, "overflow", "compute",
                                          0.5, 1.5, 100.0, 2048))
        payload, off = read_frame(rec, 0)
        assert off == len(rec)
        kind, seq, fields = decode_record(payload)
        assert (kind, seq) == (KIND_OP, 42)
        assert fields == [3, "overflow", "compute", 0.5, 1.5, 100.0, 2048]

    def test_record_field_count_enforced(self):
        with pytest.raises(StoreCodecError):
            encode_record(KIND_OP, 0, (1, 2))
        with pytest.raises(StoreCodecError):
            encode_record(99, 0, ())

    def test_truncated_and_corrupt_frames_return_none(self):
        rec = encode_record(KIND_OP, 1, (0, "p", "compute", 0.0, 1.0,
                                         0.0, 0))
        # Short header, short payload, CRC flip: all (None, off).
        for cut in (1, 7, len(rec) - 1):
            assert read_frame(rec[:cut], 0) == (None, 0)
        bad = bytearray(rec)
        bad[-1] ^= 0xFF
        assert read_frame(bytes(bad), 0) == (None, 0)


class TestSegments:
    def test_rotation_and_discovery(self, tmp_path):
        w = SegmentWriter(tmp_path, "0", segment_bytes=200, flush_bytes=50)
        for i in range(40):
            w.append(KIND_OP, i, (0, "p", "compute", float(i),
                                  float(i + 1), 0.0, 0))
        w.close()
        segs = shard_segments(tmp_path)["0"]
        assert len(segs) > 1
        seqs = [seq for p in segs for _, seq, _ in
                iter_segment_records(p, last=False)]
        assert seqs == list(range(40))
        desc = w.describe()
        assert desc["records"] == 40
        assert desc["first_seq"] == 0 and desc["last_seq"] == 39

    def test_truncated_tail_dropped_only_on_last_segment(self, tmp_path):
        w = SegmentWriter(tmp_path, "0", segment_bytes=10**6,
                          flush_bytes=1)
        for i in range(5):
            w.append(KIND_OP, i, (0, "p", "compute", 0.0, 1.0, 0.0, 0))
        w.close()
        path = shard_segments(tmp_path)["0"][0]
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])  # crash mid-frame
        got = list(iter_segment_records(path, last=True))
        assert [seq for _, seq, _ in got] == [0, 1, 2, 3]
        with pytest.raises(StoreCorruptionError):
            list(iter_segment_records(path, last=False))


def record_script(tracer, nranks=3, steps=4):
    """Drive one tracer through a deterministic mixed-event script."""
    t = 0.0
    for step in range(steps):
        for phase in ("overflow", "motion", "dcf3d"):
            for r in range(nranks):
                tracer.phase(r, t, phase)
                tracer.op(r, phase, "compute", t, t + 0.5 + r * 0.1,
                          100.0, 64)
                tracer.send(t, r, (r + 1) % nranks, 7, 1024, phase)
                tracer.recv(t + 0.1, (r + 1) % nranks, r, 7, 1024, phase)
                tracer.op(r, phase, "wait", t + 0.6, t + 0.7, 0.0, 1024)
            t += 1.0
        tracer.mark(t, "epoch", step=step)
    tracer.advance(t)
    tracer.op(0, "restore", "compute", 0.0, 1.0, 0.0, 5)


class TestStoreTracerRoundTrip:
    def test_exact_spantracer_equality(self, tmp_path):
        span, store = SpanTracer(), StoreTracer(tmp_path, flush_bytes=64)
        record_script(span)
        record_script(store)
        store.close()
        got = load_store(tmp_path)
        assert got.ops == span.ops
        assert got.phase_marks == span.phase_marks
        assert got.marks == span.marks
        assert got.sends == span.sends
        assert got.recvs == span.recvs
        assert got.offset == span.offset
        assert got.nranks == span.nranks

    def test_reader_works_without_index(self, tmp_path):
        span, store = SpanTracer(), StoreTracer(tmp_path)
        record_script(span)
        record_script(store)
        store.close()
        (tmp_path / INDEX_NAME).unlink()
        got = load_store(tmp_path)
        assert got.ops == span.ops
        assert got.sends == span.sends

    def test_crash_loses_only_unflushed_tail(self, tmp_path):
        span, store = SpanTracer(), StoreTracer(tmp_path, flush_bytes=64)
        record_script(span)
        record_script(store)
        store.flush()
        # Crash: never close(); additionally truncate one shard's last
        # segment mid-frame and tear the index.
        shard0 = shard_segments(tmp_path)["0"][-1]
        blob = shard0.read_bytes()
        shard0.write_bytes(blob[:-2])
        (tmp_path / INDEX_NAME).write_text("{ torn")
        got = load_store(tmp_path)
        # Everything recovered is a prefix of the true per-shard streams.
        assert got.ops == [e for e in span.ops if tuple(e) in
                           {tuple(x) for x in span.ops}][: len(got.ops)]
        assert 0 < len(got.ops) <= len(span.ops)
        assert all(e in span.ops for e in got.ops)
        assert all(e in span.sends for e in got.sends)

    def test_refuses_reuse_without_fresh(self, tmp_path):
        StoreTracer(tmp_path).close()
        with pytest.raises(FileExistsError):
            StoreTracer(tmp_path)
        StoreTracer(tmp_path, fresh=True).close()

    def test_index_format_mismatch_raises(self, tmp_path):
        StoreTracer(tmp_path).close()
        payload = json.loads((tmp_path / INDEX_NAME).read_text())
        payload["format"] = "repro-trace-store/999"
        (tmp_path / INDEX_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreCorruptionError):
            load_index(tmp_path)

    def test_thread_safety_under_concurrent_ops(self, tmp_path):
        # serve's dispatcher threads record concurrently.
        store = StoreTracer(tmp_path, flush_every=17)
        def work(worker):
            for i in range(200):
                store.op(worker, f"job:{i}", "compute", float(i),
                         float(i) + 0.5, 0.0, 100)
        threads = [threading.Thread(target=work, args=(w,))
                   for w in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        store.close()
        got = load_store(tmp_path)
        assert len(got.ops) == 800
        seqs = sorted(s for s, _, _ in StoreReader(tmp_path).iter_records())
        assert seqs == list(range(800))


class TestBoundedMemory:
    def test_long_run_bounds_buffer_and_open_segments(self, tmp_path):
        flush_bytes = 512
        store = StoreTracer(tmp_path, segment_bytes=4096,
                            flush_bytes=flush_bytes)
        cfg = airfoil_case(machine=sp2(nodes=4), scale=0.1, nsteps=5)
        OverflowD1(cfg, tracer=store).run()
        # At most one open segment per shard, ever.
        assert store.open_segments <= len(store._writers)
        # The flush buffer never grew past threshold + one record.
        assert store.max_buffered_bytes < flush_bytes + 512
        # Rotation actually happened: the trace spans many segments.
        store.close()
        assert store.open_segments == 0
        segs = shard_segments(tmp_path)
        assert max(len(paths) for paths in segs.values()) > 3
        # And the data is still exact: spot-check via a fresh run.
        span = SpanTracer()
        cfg = airfoil_case(machine=sp2(nodes=4), scale=0.1, nsteps=5)
        OverflowD1(cfg, tracer=span).run()
        assert load_store(tmp_path).ops == span.ops


@pytest.mark.parametrize("case_builder,name", [
    (airfoil_case, "airfoil"),
    (x38_case, "x38"),
])
class TestBitIdentity:
    """Store-reconstructed exporter output == in-memory, byte for byte."""

    def _pair(self, case_builder, tmp_path):
        def run(tracer):
            cfg = case_builder(machine=sp2(nodes=4), scale=0.1, nsteps=3)
            OverflowD1(cfg, tracer=tracer).run()
        span = SpanTracer()
        run(span)
        store = StoreTracer(tmp_path)
        run(store)
        store.close()
        return span, load_store(tmp_path)

    def test_chrome_trace_and_timeline_bytes(self, case_builder, name,
                                             tmp_path):
        span, stored = self._pair(case_builder, tmp_path)
        assert chrome_trace(stored) == chrome_trace(span)
        assert ascii_timeline(stored) == ascii_timeline(span)

    def test_critical_path_and_comm_matrix(self, case_builder, name,
                                           tmp_path):
        from repro.obs.perf.comm_matrix import CommMatrix
        from repro.obs.perf.critical_path import analyze_critical_path

        span, stored = self._pair(case_builder, tmp_path)
        assert (analyze_critical_path(stored).to_dict()
                == analyze_critical_path(span).to_dict())
        a = CommMatrix.from_tracer(stored, nranks=stored.nranks)
        b = CommMatrix.from_tracer(span, nranks=span.nranks)
        assert a.to_dict(top_k=5) == b.to_dict(top_k=5)


class TestNranksAllStreams:
    """Regression: ranks visible only in sends/recvs count toward nranks."""

    def test_send_only_rank_counts(self):
        t = SpanTracer()
        t.op(0, "p", "compute", 0.0, 1.0)
        # Rank 5 was black-holed before its first op: it only appears
        # as a send destination and a recv source.
        t.send(0.5, 0, 5, 1, 64, "p")
        assert t.nranks == 6

    def test_recv_streams_count(self):
        t = SpanTracer()
        t.recv(0.5, 3, 7, 1, 64, "p")
        assert t.nranks == 8

    def test_empty_is_zero(self):
        assert SpanTracer().nranks == 0

    def test_store_tracer_matches(self, tmp_path):
        store = StoreTracer(tmp_path)
        store.op(0, "p", "compute", 0.0, 1.0)
        store.send(0.5, 0, 5, 1, 64, "p")
        assert store.nranks == 6
        store.close()
        assert load_store(tmp_path).nranks == 6


class TestIndex:
    def test_index_contents(self, tmp_path):
        store = StoreTracer(tmp_path)
        record_script(store, nranks=2, steps=3)
        store.close()
        index = load_index(tmp_path)
        assert index is not None
        assert index["format"] == STORE_FORMAT
        assert index["complete"] is True
        assert index["nranks"] == 2
        assert len(index["steps"]) == 3
        assert index["advances"]  # one advance in the script
        step0 = index["steps"][0]
        assert set(step0["starts"]) == {"0", "1"}
        assert "overflow" in step0["phase_time"]
        assert "compute" in step0["kind_time"]

    def test_step_start_offsets_point_at_step_phase_mark(self, tmp_path):
        from pathlib import Path

        from repro.obs.store.codec import KIND_PHASE
        from repro.obs.store.segment import segment_path

        store = StoreTracer(tmp_path)
        record_script(store, nranks=2, steps=3)
        store.close()
        index = load_index(tmp_path)
        for entry in index["steps"]:
            for shard, (seg, off) in entry["starts"].items():
                path = segment_path(Path(tmp_path), shard, seg)
                kind, _seq, fields = next(
                    iter_segment_records(path, last=True, start=off)
                )
                assert kind == KIND_PHASE
                assert fields[2] == "overflow"
