"""Unit tests for PhaseRollup and IgbpRollup."""

import numpy as np
import pytest

from repro.machine import MachineSpec, NetworkSpec, NodeSpec, Simulator
from repro.obs import IgbpRollup, PhaseRollup, SpanTracer


def make_machine(nodes=2, flops=1e6, latency=1e-4, bandwidth=1e6):
    return MachineSpec(
        "test", nodes, NodeSpec(flops), NetworkSpec(latency, bandwidth)
    )


def traced_run(nodes, program):
    tracer = SpanTracer()
    sim = Simulator(make_machine(nodes=nodes), tracer=tracer)
    sim.spawn_all(program)
    return sim.run(), tracer


def sample_program(comm):
    yield from comm.set_phase("flow")
    yield from comm.compute(flops=(comm.rank + 1) * 1e6)
    yield from comm.set_phase("dcf")
    if comm.rank == 0:
        yield from comm.send(1, tag=3, nbytes=8000)
    elif comm.rank == 1:
        yield from comm.recv(src=0, tag=3)
    yield from comm.compute(flops=5e5)


class TestPhaseRollup:
    def test_needs_one_rank(self):
        with pytest.raises(ValueError, match="rank"):
            PhaseRollup(0)

    def test_empty_cell_is_zero(self):
        roll = PhaseRollup(2)
        c = roll.cell(1, "nope")
        assert c.total == 0.0 and c.events == 0
        assert roll.phases() == []
        assert roll.total_seconds() == 0.0
        assert roll.phase_fraction("nope") == 0.0
        assert roll.imbalance("nope") == 1.0

    def test_from_tracer_accumulates(self):
        t = SpanTracer()
        t.op(0, "flow", "compute", 0.0, 2.0, flops=10.0)
        t.op(0, "flow", "comm", 2.0, 2.5, nbytes=100)
        t.op(0, "dcf", "wait", 2.5, 3.0)
        t.op(1, "flow", "compute", 0.0, 1.0, flops=4.0)
        roll = PhaseRollup.from_tracer(t)
        assert roll.nranks == 2
        c = roll.cell(0, "flow")
        assert c.compute == pytest.approx(2.0)
        assert c.comm == pytest.approx(0.5)
        assert c.flops == pytest.approx(10.0)
        assert c.nbytes == 100
        assert c.events == 2
        assert roll.cell(0, "dcf").wait == pytest.approx(0.5)
        assert roll.phases() == ["flow", "dcf"]  # first-seen order
        assert roll.elapsed == pytest.approx(3.0)

    def test_from_tracer_rejects_unknown_kind(self):
        t = SpanTracer()
        t.op(0, "flow", "teleport", 0.0, 1.0)
        with pytest.raises(ValueError, match="unknown span kind"):
            PhaseRollup.from_tracer(t)

    def test_metrics_and_tracer_agree(self):
        """The two constructions agree exactly on shared fields."""
        out, tracer = traced_run(3, sample_program)
        from_m = PhaseRollup.from_metrics(out.metrics)
        from_t = PhaseRollup.from_tracer(tracer)
        assert from_m.nranks == from_t.nranks
        assert from_m.phases() == from_t.phases()
        for phase in from_m.phases():
            for rank in range(from_m.nranks):
                cm, ct = from_m.cell(rank, phase), from_t.cell(rank, phase)
                assert cm.compute == pytest.approx(ct.compute, abs=1e-15)
                assert cm.comm == pytest.approx(ct.comm, abs=1e-15)
                assert cm.wait == pytest.approx(ct.wait, abs=1e-15)
                assert cm.flops == pytest.approx(ct.flops)

    def test_phase_statistics(self):
        t = SpanTracer()
        t.op(0, "flow", "compute", 0.0, 1.0)
        t.op(1, "flow", "compute", 0.0, 3.0)
        roll = PhaseRollup.from_tracer(t)
        np.testing.assert_allclose(roll.phase_seconds("flow"), [1.0, 3.0])
        assert roll.phase_total("flow") == pytest.approx(4.0)
        assert roll.phase_max("flow") == pytest.approx(3.0)
        assert roll.phase_avg("flow") == pytest.approx(2.0)
        assert roll.imbalance("flow") == pytest.approx(1.5)
        assert roll.phase_fraction("flow") == pytest.approx(1.0)
        assert roll.rank_total(1) == pytest.approx(3.0)

    def test_merge_adds_epochs(self):
        a, b = PhaseRollup(2), PhaseRollup(3)
        a.elapsed, b.elapsed = 1.0, 2.0
        a._cell(0, "flow").compute = 1.0
        b._cell(0, "flow").compute = 2.0
        b._cell(2, "dcf").wait = 0.5
        a.merge(b)
        assert a.nranks == 3  # repartition grew the rank count
        assert a.elapsed == pytest.approx(3.0)
        assert a.cell(0, "flow").compute == pytest.approx(3.0)
        assert a.cell(2, "dcf").wait == pytest.approx(0.5)
        assert a.phases() == ["flow", "dcf"]

    def test_breakdown_rows_and_format(self):
        out, tracer = traced_run(2, sample_program)
        roll = PhaseRollup.from_tracer(tracer)
        rows = roll.breakdown()
        assert [r["phase"] for r in rows] == ["flow", "dcf"]
        assert sum(r["fraction"] for r in rows) == pytest.approx(1.0)
        text = roll.format_breakdown()
        assert "flow" in text and "dcf" in text and "imbal" in text

    def test_summary_is_json_serialisable(self):
        import json

        _, tracer = traced_run(2, sample_program)
        roll = PhaseRollup.from_tracer(tracer)
        s = json.loads(json.dumps(roll.summary()))
        assert s["nranks"] == 2
        assert set(s["phases"]) == {"flow", "dcf"}
        for ph in s["phases"].values():
            assert ph["events"] >= 1


class TestIgbpRollup:
    def test_empty(self):
        ig = IgbpRollup()
        assert ig.nsteps == 0 and ig.nranks == 0
        assert ig.per_step().shape == (0, 0)
        assert ig.accumulated().size == 0
        assert ig.ibar() == 0.0
        assert ig.f().size == 0
        assert ig.summary()["f_max"] == 0.0

    def test_record_and_accumulate(self):
        ig = IgbpRollup()
        ig.record([10, 0, 2])
        ig.record([5, 5, 3])
        assert ig.nsteps == 2 and ig.nranks == 3
        np.testing.assert_array_equal(ig.accumulated(), [15, 5, 5])
        assert ig.ibar() == pytest.approx(25 / 3)
        np.testing.assert_allclose(ig.f(), np.array([15, 5, 5]) / (25 / 3))

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            IgbpRollup().record([])

    def test_size_change_restarts_window(self):
        ig = IgbpRollup()
        ig.record([1, 2, 3])
        ig.record([1, 2, 3, 4])  # repartition
        assert ig.nsteps == 1
        assert ig.nranks == 4

    def test_zero_ibar_gives_unit_factors(self):
        ig = IgbpRollup()
        ig.record([0, 0])
        np.testing.assert_array_equal(ig.f(), [1.0, 1.0])

    def test_merge_and_reset(self):
        a, b = IgbpRollup(), IgbpRollup()
        a.record([1, 1])
        b.record([2, 2])
        b.record([3, 3])
        a.merge(b)
        assert a.nsteps == 3
        np.testing.assert_array_equal(a.accumulated(), [6, 6])
        a.reset()
        assert a.nsteps == 0

    def test_record_copies_input(self):
        ig = IgbpRollup()
        arr = np.array([5, 5])
        ig.record(arr)
        arr[:] = 0  # caller mutation must not leak in
        np.testing.assert_array_equal(ig.accumulated(), [5, 5])

    def test_summary_fields(self):
        ig = IgbpRollup()
        ig.record([9, 3])
        s = ig.summary()
        assert s == {
            "nsteps": 1,
            "nranks": 2,
            "I": [9, 3],
            "ibar": 6.0,
            "f_max": 1.5,
        }
