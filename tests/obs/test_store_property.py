"""Property tests: the segment store is a faithful, crash-tolerant log.

Hypothesis drives arbitrary interleavings of the five event kinds plus
multi-epoch ``advance`` through a :class:`SpanTracer` and a
:class:`StoreTracer` side by side, then asserts the store reads back the
*exact* in-memory view — and that a crash (buffered tail lost, final
segment truncated mid-frame, index torn) loses at most a per-shard
suffix while keeping every surviving record intact and ordered.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.obs import SpanTracer  # noqa: E402
from repro.obs.store import (  # noqa: E402
    StoreTracer,
    load_store,
    shard_segments,
)
from repro.obs.store.writer import DRIVER_SHARD, INDEX_NAME  # noqa: E402

PHASES = ("overflow", "motion", "dcf3d", "solver")
KINDS = ("compute", "comm", "wait")

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
ranks = st.integers(min_value=0, max_value=3)
small_int = st.integers(min_value=0, max_value=2**20)
# Codec normalizes tuples to lists, so mark args stick to list-free
# JSON-ish values for exact round-trip equality.
arg_value = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-(2**40), max_value=2**40),
    finite, st.text(max_size=8),
)

op_ev = st.tuples(
    st.just("op"), ranks, st.sampled_from(PHASES), st.sampled_from(KINDS),
    finite, finite, finite, small_int,
)
phase_ev = st.tuples(st.just("phase"), ranks, finite, st.sampled_from(PHASES))
arg_key = st.text(min_size=1, max_size=4).filter(
    lambda k: k not in ("t", "name")  # mark()'s positional params
)
mark_ev = st.tuples(
    st.just("mark"), finite, st.text(min_size=1, max_size=8),
    st.dictionaries(arg_key, arg_value, max_size=3),
)
send_ev = st.tuples(
    st.just("send"), finite, ranks, ranks, small_int, small_int,
    st.sampled_from(PHASES),
)
recv_ev = st.tuples(
    st.just("recv"), finite, ranks, ranks, small_int, small_int,
    st.sampled_from(PHASES),
)
advance_ev = st.tuples(st.just("advance"), finite)

events = st.lists(
    st.one_of(op_ev, phase_ev, mark_ev, send_ev, recv_ev, advance_ev),
    max_size=120,
)

# Epoch bodies without interior advances, so the expected cumulative
# offset is just the sum of the per-epoch dt values.
events_no_advance = st.lists(
    st.one_of(op_ev, phase_ev, mark_ev, send_ev, recv_ev), max_size=60
)


def apply(tracer, event):
    kind, *rest = event
    if kind == "op":
        rank, phase, op_kind, t0, dur, flops, nbytes = rest
        tracer.op(rank, phase, op_kind, t0, t0 + dur, flops, nbytes)
    elif kind == "phase":
        tracer.phase(*rest)
    elif kind == "mark":
        t, name, args = rest
        tracer.mark(t, name, **args)
    elif kind == "send":
        tracer.send(*rest)
    elif kind == "recv":
        tracer.recv(*rest)
    else:
        tracer.advance(rest[0])


def drive(tracer, sequence):
    for event in sequence:
        apply(tracer, event)
    return tracer


@settings(max_examples=40, deadline=None)
@given(sequence=events)
def test_store_reads_back_exact_tracer_view(tmp_path_factory, sequence):
    tmp = tmp_path_factory.mktemp("prop-store")
    span = drive(SpanTracer(), sequence)
    store = drive(StoreTracer(tmp, flush_bytes=96, segment_bytes=1024),
                  sequence)
    store.close()
    got = load_store(tmp)
    assert got.ops == span.ops
    assert got.phase_marks == span.phase_marks
    assert got.marks == span.marks
    assert got.sends == span.sends
    assert got.recvs == span.recvs
    assert got.offset == span.offset
    assert got.nranks == span.nranks
    assert got.clock == span.clock


@settings(max_examples=25, deadline=None)
@given(
    sequence=events,
    chop=st.integers(min_value=1, max_value=64),
    tear_index=st.booleans(),
)
def test_crash_recovery_keeps_per_shard_prefixes(
    tmp_path_factory, sequence, chop, tear_index
):
    tmp = tmp_path_factory.mktemp("prop-crash")
    span = drive(SpanTracer(), sequence)
    store = drive(StoreTracer(tmp, flush_bytes=64, segment_bytes=512),
                  sequence)
    # Crash: flush but never close, truncate the largest shard's final
    # segment mid-frame, optionally tear the index too.
    store.flush()
    shards = shard_segments(tmp)
    if shards:
        victim = max(shards, key=lambda s: shards[s][-1].stat().st_size)
        tail = shards[victim][-1]
        blob = tail.read_bytes()
        tail.write_bytes(blob[: max(0, len(blob) - chop)])
    if tear_index:
        (tmp / INDEX_NAME).write_text("{ not json")
    if not shards and tear_index:
        # Nothing durable survived this crash at all; the reader says so.
        with pytest.raises(FileNotFoundError):
            load_store(tmp)
        return
    got = load_store(tmp)

    # Each shard's recovered stream is an exact prefix of what was
    # recorded for that shard.
    def ops_of(t, rank):
        return [e for e in t.ops if e[0] == rank]

    def pm_of(t, rank):
        return [e for e in t.phase_marks if e[0] == rank]

    for rank in range(max(span.nranks, got.nranks)):
        assert ops_of(got, rank) == ops_of(span, rank)[: len(ops_of(got, rank))]
        assert pm_of(got, rank) == pm_of(span, rank)[: len(pm_of(got, rank))]
        got_sends = [e for e in got.sends if e[1] == rank]
        all_sends = [e for e in span.sends if e[1] == rank]
        assert got_sends == all_sends[: len(got_sends)]
        got_recvs = [e for e in got.recvs if e[1] == rank]
        all_recvs = [e for e in span.recvs if e[1] == rank]
        assert got_recvs == all_recvs[: len(got_recvs)]
    assert got.marks == span.marks[: len(got.marks)]  # driver shard


@settings(max_examples=20, deadline=None)
@given(
    epochs=st.lists(
        st.tuples(events_no_advance,
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False)),
        min_size=1, max_size=4,
    )
)
def test_multi_epoch_advance_offsets_match(tmp_path_factory, epochs):
    """advance() between epochs shifts both tracers identically, and the
    store's index records every epoch boundary."""
    tmp = tmp_path_factory.mktemp("prop-epoch")
    span = SpanTracer()
    store = StoreTracer(tmp, flush_bytes=128)
    for sequence, dt in epochs:
        drive(span, sequence)
        drive(store, sequence)
        span.advance(dt)
        store.advance(dt)
    store.close()
    got = load_store(tmp)
    assert got.ops == span.ops
    assert got.sends == span.sends
    assert got.offset == span.offset == pytest.approx(
        sum(dt for _, dt in epochs)
    )


def test_driver_shard_holds_marks_only(tmp_path):
    store = StoreTracer(tmp_path, flush_bytes=1)
    store.mark(0.0, "start", run=1)
    store.op(0, "p", "compute", 0.0, 1.0)
    store.close()
    shards = shard_segments(tmp_path)
    assert DRIVER_SHARD in shards and "0" in shards
