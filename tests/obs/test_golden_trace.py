"""Golden-trace regression test (ISSUE satellite d).

A small 2-grid oscillating-airfoil configuration runs on a fixed
machine spec with tracing enabled; the per-rank/per-phase rollup
summary is compared against a checked-in golden JSON.  The driver and
scheduler are fully deterministic (no RNG anywhere in ``repro``), so
any drift here means the simulated cost model, scheduler dispatch
order or phase accounting changed — which must be a conscious decision
(regenerate with ``python tests/obs/test_golden_trace.py``).

A second test asserts the zero-cost-when-disabled contract: running
the same configuration without a tracer yields bit-identical simulated
timings.
"""

import json
import math
from pathlib import Path

import pytest

from repro.cases.airfoil import airfoil_grids
from repro.core import OverflowD1
from repro.core.config import CaseConfig
from repro.machine import MachineSpec, NetworkSpec, NodeSpec
from repro.motion import PitchOscillation
from repro.obs import PhaseRollup, SpanTracer

GOLDEN_PATH = Path(__file__).parent / "golden_airfoil_trace.json"

#: Frozen machine so preset tweaks never invalidate the golden file.
GOLDEN_MACHINE = MachineSpec(
    "golden-sp", 3, NodeSpec(flops=125e6),
    NetworkSpec(latency=40e-6, bandwidth=1.0 / 0.11e-6),
)


def golden_config() -> CaseConfig:
    grids = airfoil_grids(scale=0.05)[:2]  # airfoil + near-field only
    return CaseConfig(
        name="golden 2-grid airfoil",
        grids=grids,
        machine=GOLDEN_MACHINE,
        search_lists={0: [1], 1: [0]},
        motions={0: PitchOscillation()},
        nsteps=3,
        dt=0.05,
        f0=math.inf,
        fringe_layers=1,
    )


def run_traced():
    tracer = SpanTracer()
    run = OverflowD1(golden_config(), tracer=tracer).run()
    return run, tracer


class TestGoldenTrace:
    def test_rollup_matches_golden(self):
        run, _ = run_traced()
        got = run.rollup().summary()
        want = json.loads(GOLDEN_PATH.read_text())
        assert got["nranks"] == want["nranks"]
        assert sorted(got["phases"]) == sorted(want["phases"])
        assert got["elapsed"] == pytest.approx(want["elapsed"], rel=1e-9)
        assert got["total_flops"] == pytest.approx(
            want["total_flops"], rel=1e-9
        )
        for name, w in want["phases"].items():
            g = got["phases"][name]
            assert g["events"] == w["events"], f"event count drift in {name}"
            for key in ("total_s", "max_s", "wait_s"):
                assert g[key] == pytest.approx(w[key], rel=1e-9, abs=1e-12), (
                    f"{name}.{key} drifted"
                )

    def test_span_event_counts_match_golden(self):
        """Exact per-phase span counts — scheduler dispatch is frozen."""
        _, tracer = run_traced()
        want = json.loads(GOLDEN_PATH.read_text())["span_events"]
        got = PhaseRollup.from_tracer(tracer).summary()
        assert {
            p: v["events"] for p, v in got["phases"].items()
        } == want

    def test_igbp_matches_golden(self):
        run, _ = run_traced()
        want = json.loads(GOLDEN_PATH.read_text())["igbp"]
        got = run.igbp_rollup().summary()
        assert got["I"] == want["I"]
        assert got["nsteps"] == want["nsteps"]
        assert got["ibar"] == pytest.approx(want["ibar"], rel=1e-9)

    def test_tracer_rollup_agrees_with_metrics_rollup(self):
        """Full-fidelity and coarse-counter rollups agree exactly."""
        run, tracer = run_traced()
        from_metrics = run.rollup()
        from_tracer = PhaseRollup.from_tracer(tracer)
        assert from_tracer.nranks == from_metrics.nranks
        for phase in from_metrics.phases():
            assert from_tracer.phase_total(phase) == pytest.approx(
                from_metrics.phase_total(phase), rel=1e-12
            )
            assert from_tracer.phase_wait(phase) == pytest.approx(
                from_metrics.phase_wait(phase), rel=1e-12
            )

    def test_phase_totals_cover_elapsed(self):
        """Per-rank accounted seconds tile the run's elapsed time."""
        run, tracer = run_traced()
        roll = run.rollup()
        for rank in range(roll.nranks):
            ops = tracer.rank_ops(rank)
            accounted = sum(e[4] - e[3] for e in ops)
            final = max(e[4] for e in ops)
            assert accounted == pytest.approx(final, rel=1e-12)
        assert tracer.t_end == pytest.approx(run.elapsed, rel=1e-12)

    def test_disabled_tracing_is_bit_identical(self):
        traced, _ = run_traced()
        plain = OverflowD1(golden_config()).run()
        assert plain.elapsed == traced.elapsed  # exact, not approx
        assert plain.time_per_step == traced.time_per_step
        assert plain.mflops_per_node == traced.mflops_per_node
        for pe, te in zip(plain.epochs, traced.epochs):
            assert pe.elapsed == te.elapsed
            for phase in pe.rollup.phases():
                assert pe.rollup.phase_seconds(phase).tolist() == (
                    te.rollup.phase_seconds(phase).tolist()
                )

    def test_run_is_deterministic(self):
        a, _ = run_traced()
        b, _ = run_traced()
        assert a.elapsed == b.elapsed
        assert a.rollup().summary() == b.rollup().summary()


def regenerate() -> None:  # pragma: no cover - manual tool
    run, tracer = run_traced()
    doc = run.rollup().summary()
    doc["igbp"] = run.igbp_rollup().summary()
    traced = PhaseRollup.from_tracer(tracer).summary()
    doc["span_events"] = {
        p: v["events"] for p, v in traced["phases"].items()
    }
    GOLDEN_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
