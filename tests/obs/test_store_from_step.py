"""Partial replay: ``StoreReader.iter_records(from_step=N)``.

The index records, per step, each rank shard's (segment, byte) start
offset.  Partial replay seeds every offset-carrying shard at its own
step boundary — a per-shard *tail*, not a global sequence cut — and
filters offset-less shards (the rank-less driver stream) to sequence
numbers at or after the earliest seeded record.  The contract: the
merged result is a seq-sorted sub-stream of the full replay, every
seeded shard opens on the step-phase record, and ``from_step=0``
reproduces the full replay exactly.
"""

import pytest

from repro.obs.store import StoreReader, StoreTracer, load_store
from repro.obs.store.codec import KIND_PHASE
from repro.obs.store.writer import INDEX_NAME

NRANKS = 3
STEPS = 5
PHASES = ("overflow", "motion", "dcf3d")


def build_store(directory):
    """A deterministic multi-rank store with one mark per step."""
    store = StoreTracer(directory, flush_bytes=64)
    t = 0.0
    for step in range(STEPS):
        for phase in PHASES:
            # Every rank enters the phase before any cross-rank record
            # is emitted — mirroring the drivers, where the step-phase
            # mark is each rank's first record of the step.
            for r in range(NRANKS):
                store.phase(r, t, phase)
            for r in range(NRANKS):
                store.op(r, phase, "compute", t, t + 0.4 + r * 0.1,
                         50.0, 8)
                store.send(t, r, (r + 1) % NRANKS, 9, 256, phase)
                store.recv(t + 0.1, (r + 1) % NRANKS, r, 9, 256, phase)
            t += 1.0
        store.mark(t, "step-done", step=step)
    store.advance(t)
    store.close()


@pytest.fixture()
def reader(tmp_path):
    build_store(tmp_path)
    return StoreReader(tmp_path)


class TestFromStep:
    def test_from_step_zero_is_full_replay(self, reader):
        assert list(reader.iter_records(from_step=0)) == list(
            reader.iter_records()
        )

    def test_tail_is_sorted_subset_of_full(self, reader):
        full = list(reader.iter_records())
        seqs_full = [seq for seq, _, _ in full]
        prev_len = len(full) + 1
        for k in range(STEPS):
            tail = list(reader.iter_records(from_step=k))
            seqs = [seq for seq, _, _ in tail]
            assert seqs == sorted(seqs)
            assert set(seqs) <= set(seqs_full)
            # Strictly shrinking: each later step drops a step's worth.
            assert len(tail) < prev_len
            prev_len = len(tail)
            # The tail is suffix-closed: every record at or after the
            # smallest surviving seq of an offset shard survives.
            assert tail == [rec for rec in full if rec[0] >= seqs[0]]

    def test_each_seeded_shard_opens_on_step_phase(self, reader):
        for k in range(STEPS):
            starts = reader._step_starts(k)
            assert set(starts) == {str(r) for r in range(NRANKS)}
            for shard in starts:
                seg, byte = starts[shard]
                _seq, kind, fields = next(
                    reader._iter_shard_from(shard, seg, byte)
                )
                assert kind == KIND_PHASE
                assert fields[2] == "overflow"

    def test_to_tracer_partial_view(self, reader):
        full = reader.to_tracer()
        part = reader.to_tracer(from_step=3)
        assert part.phase_marks[0] == (0, 3.0 * len(PHASES), "overflow")
        assert 0 < len(part.ops) < len(full.ops)
        # Only the step-3 and step-4 marks survive.
        assert [m[2]["step"] for m in part.marks] == [3, 4]
        assert part.ops == full.ops[-len(part.ops):]

    def test_load_store_passthrough(self, tmp_path):
        build_store(tmp_path)
        direct = StoreReader(tmp_path).to_tracer(from_step=2)
        via = load_store(tmp_path, from_step=2)
        assert via.ops == direct.ops
        assert via.marks == direct.marks

    def test_out_of_range_raises(self, reader):
        with pytest.raises(ValueError, match="out of range"):
            reader.to_tracer(from_step=STEPS)
        with pytest.raises(ValueError, match="out of range"):
            reader.to_tracer(from_step=-1)

    def test_no_index_raises(self, tmp_path):
        build_store(tmp_path)
        (tmp_path / INDEX_NAME).unlink()
        reader = StoreReader(tmp_path)
        # Full replay still works without an index ...
        assert list(reader.iter_records())
        # ... but partial replay needs the per-step offsets.
        with pytest.raises(ValueError, match="index"):
            reader.to_tracer(from_step=1)
