"""SimMPI sanitizer tests: every finding kind, determinism, zero cost.

Unit tests drive the hooks directly; integration tests attach a
:class:`Sanitizer` to real scheduler runs (including the DCF protocol
and the fault battery) and assert the reports — plus the two headline
guarantees: the nondeterminism-witness report is itself deterministic,
and a sanitized run's trace is bit-identical to an unsanitized one.
"""

import json

import pytest

from repro.analysis import Sanitizer
from repro.machine import (
    ANY_SOURCE,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    Simulator,
)
from repro.machine.event import Mailbox
from repro.machine.simmpi import MAX_USER_TAG

TAG_A = 7
TAG_B = 8
TAG_DATA = 9


def make_machine(nodes=3, flops=1e6, latency=1e-4, bandwidth=1e6):
    return MachineSpec(
        "test", nodes, NodeSpec(flops), NetworkSpec(latency, bandwidth)
    )


def run_sanitized(program, nodes=3, san=None, tracer=None):
    san = Sanitizer(tracer=tracer) if san is None else san
    sim = Simulator(make_machine(nodes=nodes), tracer=tracer, sanitizer=san)
    sim.spawn_all(program)
    result = sim.run()
    return san.report(), result


class _StubState:
    """Minimal scheduler rank-state for unit-level end_run checks."""

    def __init__(self, rank, mailbox=None, failed=False):
        self.rank = rank
        self.mailbox = mailbox if mailbox is not None else Mailbox()
        self.failed = failed


# ----------------------------------------------------------------------
# message-race witnesses


def racy_program(comm):
    """Ranks 1, 2 send rank 0 the same tag; rank 0 wildcard-tryrecvs."""
    if comm.rank == 0:
        yield from comm.elapse(1.0)  # let both messages arrive
        got = []
        while len(got) < 2:
            msg = yield from comm._tryrecv(ANY_SOURCE, TAG_A)
            if msg is None:
                yield from comm.elapse(0.01)
            else:
                got.append(msg)
        return got
    yield from comm.send(0, TAG_A, f"from-{comm.rank}", nbytes=64)


def drained_program(comm):
    """Same traffic, consumed via the canonical-order drain."""
    if comm.rank == 0:
        yield from comm.elapse(1.0)
        got = []
        while len(got) < 2:
            for payload, status in (
                yield from comm.drain_recv(ANY_SOURCE, TAG_A)
            ):
                got.append((status.source, payload))
            if len(got) < 2:
                yield from comm.elapse(0.01)
        return got
    yield from comm.send(0, TAG_A, f"from-{comm.rank}", nbytes=64)


class TestMessageRace:
    def test_wildcard_tryrecv_with_two_sources_is_witnessed(self):
        report, _ = run_sanitized(racy_program)
        races = [f for f in report.findings if f.kind == "message-race"]
        assert len(races) == 1
        f = races[0]
        assert f.rank == 0 and f.tag == TAG_A
        assert f.detail["sources"] == [1, 2]
        assert len(f.detail["seqs"]) == 2
        assert f.detail["blocking"] is False

    def test_witness_report_is_deterministic(self):
        a, _ = run_sanitized(racy_program)
        b, _ = run_sanitized(racy_program)
        assert a.to_json() == b.to_json()
        assert not a.ok

    def test_drain_recv_is_race_free(self):
        report, result = run_sanitized(drained_program)
        assert report.ok, report.format()
        # ... and the payloads come back in canonical (src, seq) order.
        assert result.returns[0] == [(1, "from-1"), (2, "from-2")]

    def test_single_source_wildcard_is_clean(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(ANY_SOURCE, TAG_A)
            elif comm.rank == 1:
                yield from comm.send(0, TAG_A, None, nbytes=8)
            else:
                yield from comm.elapse(0.1)

        report, _ = run_sanitized(program)
        assert report.ok, report.format()


# ----------------------------------------------------------------------
# tag collisions


class TestTagCollision:
    def test_same_tag_from_two_phases(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.set_phase("subsys-a")
                yield from comm.send(2, TAG_B, None, nbytes=8)
            elif comm.rank == 1:
                yield from comm.set_phase("subsys-b")
                yield from comm.send(2, TAG_B, None, nbytes=8)
            else:
                yield from comm.recv(0, TAG_B)
                yield from comm.recv(1, TAG_B)

        report, _ = run_sanitized(program)
        hits = [f for f in report.findings if f.kind == "tag-collision"]
        assert len(hits) == 1  # deduplicated per tag
        assert hits[0].tag == TAG_B
        assert hits[0].detail["phases"] == ["subsys-a", "subsys-b"]

    def test_same_tag_same_phase_is_clean(self):
        def program(comm):
            yield from comm.set_phase("halo")
            if comm.rank == 0:
                yield from comm.send(2, TAG_B, None, nbytes=8)
            elif comm.rank == 1:
                yield from comm.send(2, TAG_B, None, nbytes=8)
            else:
                yield from comm.recv(0, TAG_B)
                yield from comm.recv(1, TAG_B)

        report, _ = run_sanitized(program)
        assert report.ok, report.format()


# ----------------------------------------------------------------------
# collective sequence cross-checking


class TestCollectiveMismatch:
    def test_matching_collectives_are_clean(self):
        def program(comm):
            yield from comm.barrier()
            yield from comm.bcast("x" if comm.rank == 1 else None, root=1)
            yield from comm.allreduce(comm.rank)

        report, _ = run_sanitized(program)
        assert report.ok, report.format()
        # Composite collectives (allreduce = reduce + bcast) record one
        # entry per constituent per rank — always a multiple of nranks.
        assert report.collectives >= 9 and report.collectives % 3 == 0

    def test_diverging_sequences_unit(self):
        san = Sanitizer()
        san.begin_run(2)
        san.on_collective(0, "world", "barrier", None)
        san.on_collective(0, "world", "bcast", 0)
        san.on_collective(1, "world", "barrier", None)
        san.on_collective(1, "world", "bcast", 1)  # different root
        san.end_run([_StubState(0), _StubState(1)], failed=False)
        hits = [
            f for f in san.findings if f.kind == "collective-mismatch"
        ]
        assert len(hits) == 1
        assert hits[0].detail["index"] == 1
        # Sequence entries are (name, root, payload_signature)
        # triples; root-only divergence leaves the signature slot None.
        assert hits[0].detail["ref_op"] == ["bcast", 0, None]
        assert hits[0].detail["got_op"] == ["bcast", 1, None]

    def test_missing_participant_unit(self):
        san = Sanitizer()
        san.begin_run(2)
        san.on_collective(0, "world", "barrier", None)
        san.end_run([_StubState(0), _StubState(1)], failed=False)
        hits = [
            f for f in san.findings if f.kind == "collective-mismatch"
        ]
        assert len(hits) == 1
        assert hits[0].detail["missing"] == [1]

    def test_failed_run_skips_checks(self):
        san = Sanitizer()
        san.begin_run(2)
        san.on_collective(0, "world", "barrier", None)
        san.end_run([_StubState(0), _StubState(1)], failed=True)
        assert san.findings == []

    def test_subcomm_collectives_tracked_per_group(self):
        def program(comm):
            if comm.rank in (0, 1):
                sub = comm.split([0, 1])
                yield from sub.barrier()
                yield from sub.allreduce(comm.rank)
            yield from comm.barrier()

        report, _ = run_sanitized(program)
        assert report.ok, report.format()


# ----------------------------------------------------------------------
# finalize leaks + reserved tags


class TestFinalizeLeak:
    def test_unconsumed_message_reported(self):
        def program(comm):
            if comm.rank == 1:
                yield from comm.send(0, TAG_DATA, "orphan", nbytes=32)
            yield from comm.elapse(0.5)

        report, _ = run_sanitized(program)
        hits = [f for f in report.findings if f.kind == "finalize-leak"]
        assert len(hits) == 1
        assert hits[0].rank == 0
        assert hits[0].detail["src"] == 1
        assert hits[0].detail["nbytes"] == 32

    def test_consumed_messages_are_clean(self):
        def program(comm):
            if comm.rank == 1:
                yield from comm.send(0, TAG_DATA, "ok", nbytes=32)
            elif comm.rank == 0:
                yield from comm.recv(1, TAG_DATA)
            yield from comm.elapse(0.1)

        report, _ = run_sanitized(program)
        assert report.ok, report.format()


class TestReservedTag:
    def test_unregistered_group_offset_unit(self):
        san = Sanitizer()
        san.begin_run(2)
        forged = 3 * MAX_USER_TAG + 5
        san.on_send(0.0, 0, 1, forged, 8, "phase", dropped=False)
        hits = [f for f in san.findings if f.kind == "reserved-tag"]
        assert len(hits) == 1
        assert hits[0].detail["offset"] == 3 * MAX_USER_TAG

    def test_registered_subcomm_offset_is_clean(self):
        san = Sanitizer()
        san.begin_run(2)
        san.register_group((0, 1), 3 * MAX_USER_TAG, rank=0)
        san.on_send(
            0.0, 0, 1, 3 * MAX_USER_TAG + 5, 8, "phase", dropped=False
        )
        assert san.findings == []

    def test_subcomm_traffic_is_clean_end_to_end(self):
        def program(comm):
            if comm.rank in (0, 2):
                sub = comm.split([0, 2])
                if sub.rank == 0:
                    yield from sub.send(1, TAG_A, "hi", nbytes=8)
                else:
                    yield from sub.recv(0, TAG_A)
            yield from comm.barrier()

        report, _ = run_sanitized(program)
        assert report.ok, report.format()


# ----------------------------------------------------------------------
# zero-perturbation guarantee + report plumbing


class TestZeroPerturbation:
    def test_sanitizer_does_not_change_virtual_time(self):
        _, clean = run_sanitized(drained_program)
        sim = Simulator(make_machine(nodes=3))
        sim.spawn_all(drained_program)
        bare = sim.run()
        assert clean.elapsed == bare.elapsed
        assert clean.returns == bare.returns

    def test_traces_bit_identical_when_no_findings(self):
        from repro.obs import SpanTracer

        t_bare = SpanTracer()
        sim = Simulator(make_machine(nodes=3), tracer=t_bare)
        sim.spawn_all(drained_program)
        sim.run()

        t_san = SpanTracer()
        report, _ = run_sanitized(drained_program, tracer=t_san)
        assert report.ok
        assert t_san.ops == t_bare.ops
        assert t_san.phase_marks == t_bare.phase_marks
        assert t_san.marks == t_bare.marks

    def test_findings_mirrored_to_tracer_marks(self):
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        report, _ = run_sanitized(racy_program, tracer=tracer)
        assert not report.ok
        kinds = [name for _, name, _ in tracer.marks]
        assert "sanitizer:message-race" in kinds


class TestReport:
    def test_counts_and_json_round_trip(self):
        report, _ = run_sanitized(racy_program)
        assert report.counts() == {"message-race": 1}
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["findings"][0]["kind"] == "message-race"
        assert data["runs"] == 1

    def test_format_mentions_verdict(self):
        clean, _ = run_sanitized(drained_program)
        assert "CLEAN" in clean.format()
        dirty, _ = run_sanitized(racy_program)
        assert "FINDINGS" in dirty.format()

    def test_finding_cap(self):
        san = Sanitizer(max_findings_per_kind=2)
        san.begin_run(2)
        for tag in range(5):
            san.on_send(0.0, 0, 1, tag, 8, "a", dropped=False)
            san.on_send(0.0, 1, 0, tag, 8, "b", dropped=False)
        assert len(san.findings) == 2


# ----------------------------------------------------------------------
# the DCF protocol + fault battery stay clean (regression for the
# canonical-drain rewrite of dcf.py step 3)


class TestIntegration:
    def test_dcf_case_is_race_free(self):
        from repro.cases import airfoil_case
        from repro.core import OverflowD1
        from repro.machine import sp2

        machine = sp2(nodes=6)
        cfg = airfoil_case(machine=machine, scale=0.05, nsteps=2)
        san = Sanitizer()
        OverflowD1(cfg, sanitizer=san).run()
        report = san.report()
        assert report.ok, report.format()
        # The DCF service loop did exercise wildcard channels — the
        # clean verdict is meaningful, not vacuous.
        assert report.messages_sent > 0
        assert report.collectives > 0

    def test_fault_battery_is_clean(self):
        from repro.cases import airfoil_case
        from repro.core import OverflowD1
        from repro.machine import sp2

        machine = sp2(nodes=6)
        cfg = airfoil_case(machine=machine, scale=0.05, nsteps=6)
        san = Sanitizer()
        OverflowD1(
            cfg,
            sanitizer=san,
            fault_plan="rank=3@step=4",
            checkpoint_every=2,
        ).run()
        report = san.report()
        assert report.ok, report.format()
        assert report.runs > 2  # epochs + detection + recovery re-runs
