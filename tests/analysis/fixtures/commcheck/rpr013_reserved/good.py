"""RPR013 clean shapes: user-range tags only."""

TAG_HALO = 401
TAG_NEAR_LIMIT = 9_999_999


def exchange(comm):
    yield from comm.send(1, TAG_HALO, b"x")
    data, status = yield from comm.recv(0, TAG_HALO)
    yield from comm.isend(1, TAG_NEAR_LIMIT, b"y")
    more, status = yield from comm.recv(0, TAG_NEAR_LIMIT)
    return data, more
