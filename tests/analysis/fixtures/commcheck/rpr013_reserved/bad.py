"""RPR013 seeds: reserved-tag forgeries outside the authority."""

MAX_USER_TAG = 10_000_000
_COLL_TAG_BASE = 100_000_000_000
_TAG_BARRIER = _COLL_TAG_BASE + 1


def forge_symbol(comm):
    """sending on the barrier's reserved tag hijacks the collective."""
    yield from comm.send(1, _TAG_BARRIER, None)


def forge_literal(comm):
    """a literal at the reserved base is just as bad."""
    data, status = yield from comm.recv(0, 100_000_000_007)
    return data


def forge_offset(comm):
    """any value at or above MAX_USER_TAG is out of bounds."""
    yield from comm.send(1, MAX_USER_TAG + 42, b"x")
