"""RPR012 clean shapes: guarded or source-specific receives."""

ANY_SOURCE = -1
TAG_WORK = 3
TAG_MORE = 4


def source_keyed(comm, n):
    """the canonical guard: results keyed by status.source."""
    out = {}
    for _ in range(n):
        data, status = yield from comm.recv(ANY_SOURCE, TAG_WORK)
        out[status.source] = data
    return out


def specific_source(comm, peers):
    """deterministic order: receive from each peer explicitly."""
    out = []
    for peer in peers:
        data, status = yield from comm.recv(peer, TAG_MORE)
        out.append(data)
    return out


def single_shot(comm):
    """a lone wildcard recv outside any loop can't reorder anything."""
    data, status = yield from comm.recv(ANY_SOURCE, TAG_WORK)
    return data


def producer(comm, dst):
    """peer side: the sends that satisfy the receives above."""
    yield from comm.send(dst, TAG_WORK, b"w")
    yield from comm.send(dst, TAG_MORE, b"m")
