"""RPR012 seeds: blocking wildcard receives in loops, unguarded."""

ANY_SOURCE = -1
TAG_WORK = 3
TAG_MORE = 4


def lexical_loop(comm, n):
    """wildcard recv in a loop, results order-dependent."""
    out = []
    for _ in range(n):
        data, status = yield from comm.recv(ANY_SOURCE, TAG_WORK)
        out.append(data)
    return out


def _helper(comm):
    data, status = yield from comm.recv(ANY_SOURCE, TAG_MORE)
    return data


def interprocedural_loop(comm, n):
    """the loop is in the caller; the wildcard recv is in a helper."""
    out = []
    for _ in range(n):
        item = yield from _helper(comm)
        out.append(item)
    return out
