"""RPR011 seeds: tags with only one side of the protocol present."""

TAG_ORPHAN_SEND = 7
TAG_ORPHAN_RECV = 9


def producer(comm):
    yield from comm.set_phase("exchange")
    yield from comm.send(1, TAG_ORPHAN_SEND, b"payload")


def consumer(comm):
    data, status = yield from comm.recv(0, TAG_ORPHAN_RECV)
    return data
