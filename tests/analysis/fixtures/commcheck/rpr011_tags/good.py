"""RPR011 clean shapes: every tag has both a sender and a receiver."""

TAG_PAIRED = 7
TAG_ALIASED = 11
RENAMED_TAG = TAG_ALIASED


def producer(comm):
    yield from comm.send(1, TAG_PAIRED, b"payload")
    yield from comm.isend(1, RENAMED_TAG, b"more")


def consumer(comm):
    data, status = yield from comm.recv(0, TAG_PAIRED)
    more, status = yield from comm.recv(0, TAG_ALIASED)
    return data, more
