"""RPR015 clean shapes: I/O outside locks, cv.wait on the held cv."""

import threading


class Spooler:
    def __init__(self, conn):
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._conn = conn
        self.pending = []

    def push(self, frame):
        """stage under the lock, write after releasing it."""
        with self._lock:
            self.pending.append(frame)
        self._conn.send_bytes(frame)

    def drain(self):
        """waiting on the held condition releases the lock — exempt."""
        with self._cv:
            while self.pending:
                self._cv.wait(timeout=1.0)
            return list(self.pending)

    def flush(self, path, data):
        with self._lock:
            staged = bytes(self.pending[-1]) if self.pending else data
        path.write_bytes(staged)
