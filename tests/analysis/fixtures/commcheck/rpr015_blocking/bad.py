"""RPR015 seeds: blocking calls made while holding a lock."""

import threading
import time


class Spooler:
    def __init__(self, conn):
        self._lock = threading.Lock()
        self._conn = conn
        self.pending = []

    def push(self, frame):
        """pipe write under the lock: every producer stalls behind it."""
        with self._lock:
            self._conn.send_bytes(frame)

    def nap(self):
        """sleeping under a lock is a throughput cliff."""
        with self._lock:
            time.sleep(0.1)

    def _write_disk(self, path, data):
        path.write_bytes(data)

    def flush(self, path, data):
        """the I/O hides one call deep — caught interprocedurally."""
        with self._lock:
            self._write_disk(path, data)
