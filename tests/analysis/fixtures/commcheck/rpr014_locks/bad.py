"""RPR014 seeds: mixed locked/unlocked writes and an ABBA inversion."""

import threading


class Counter:
    """self.total written under _lock in one method, bare in another."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def safe_add(self, n):
        with self._lock:
            self.total += n

    def unsafe_add(self, n):
        self.total += n


class Transfer:
    """accounts locked in opposite orders on the two directions."""

    def __init__(self):
        self._src_lock = threading.Lock()
        self._dst_lock = threading.Lock()
        self.moved = 0

    def forward(self, n):
        with self._src_lock:
            with self._dst_lock:
                self.moved += n

    def backward(self, n):
        with self._dst_lock:
            with self._src_lock:
                self.moved -= n
