"""RPR014 clean shapes: consistent locking and lock order."""

import threading


class Counter:
    """every post-init write to total holds _lock; init is exempt."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n

    def reset(self):
        with self._lock:
            self.total = 0

    def _bump(self):
        # called only under _lock; lock-held propagation keeps this
        # write locked even though no `with` appears lexically here
        self.total += 1

    def tick(self):
        with self._lock:
            self._bump()


class Transfer:
    """both directions acquire src before dst — no inversion."""

    def __init__(self):
        self._src_lock = threading.Lock()
        self._dst_lock = threading.Lock()
        self.moved = 0

    def forward(self, n):
        with self._src_lock:
            with self._dst_lock:
                self.moved += n

    def backward(self, n):
        with self._src_lock:
            with self._dst_lock:
                self.moved -= n
