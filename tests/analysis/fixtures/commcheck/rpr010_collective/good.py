"""RPR010 clean shapes: collectives on every rank-dependent path."""

TAG_DATA = 5


def all_paths_join(comm):
    """rank-dependent p2p is fine; the barrier is outside the branch."""
    if comm.rank == 0:
        yield from comm.send(1, TAG_DATA, b"x")
    else:
        data, status = yield from comm.recv(0, TAG_DATA)
    yield from comm.barrier()


def both_arms_call(comm):
    """same collective in both arms — every rank joins it."""
    if comm.rank == 0:
        out = yield from comm.gather("root", root=0)
        return out
    else:
        yield from comm.gather("leaf", root=0)
        return None


def non_rank_branch(comm):
    """data-dependent branches over collectives are not rank tests."""
    work = True
    if work:
        yield from comm.barrier()
    return None
