"""RPR010 seeds: collectives diverging across rank-dependent paths."""

TAG_DATA = 5


def branch_divergence(comm):
    """barrier only on rank 0 — every other rank hangs in nothing."""
    if comm.rank == 0:
        yield from comm.barrier()
    yield from comm.send(1, TAG_DATA, b"x")


def else_divergence(comm):
    """allreduce only on the else path."""
    if comm.rank == 0:
        yield from comm.send(1, TAG_DATA, b"x")
    else:
        total = yield from comm.allreduce(1)
        return total


def early_return(comm):
    """rank 0 returns before the bcast the others wait in."""
    if comm.rank == 0:
        return None
    value = yield from comm.bcast(None, root=1)
    return value
