"""Fixture tests for ``repro lint --fix`` (RPR007 auto-rewrite)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis import fix_paths, fix_rpr007_source, lint_paths

#: Path that puts fixtures inside a deterministic package for scoping.
DET = "core/module.py"


def _fix(source: str, rel: str = DET) -> tuple[str, int]:
    return fix_rpr007_source(source, rel)


def test_simple_set_call_wrapped():
    src = "for g in set(grids):\n    handle(g)\n"
    out, n = _fix(src)
    assert n == 1
    assert out == "for g in sorted(set(grids)):\n    handle(g)\n"


def test_set_literal_and_comprehension_wrapped():
    src = (
        "for a in {1, 2, 3}:\n    pass\n"
        "for b in {x for x in items}:\n    pass\n"
    )
    out, n = _fix(src)
    assert n == 2
    assert "in sorted({1, 2, 3}):" in out
    assert "in sorted({x for x in items}):" in out


def test_set_algebra_wrapped_whole_expression():
    src = "for g in set(donors) | set(receivers):\n    pass\n"
    out, n = _fix(src)
    assert n == 1
    assert out.startswith("for g in sorted(set(donors) | set(receivers)):")


def test_fix_is_idempotent():
    src = "for g in set(grids):\n    handle(g)\n"
    once, n1 = _fix(src)
    twice, n2 = _fix(once)
    assert n1 == 1 and n2 == 0
    assert twice == once


def test_noqa_waiver_respected():
    src = "for g in set(grids):  # noqa: RPR007\n    handle(g)\n"
    out, n = _fix(src)
    assert n == 0
    assert out == src
    bare = "for g in set(grids):  # noqa\n    handle(g)\n"
    out, n = _fix(bare)
    assert n == 0


def test_scoping_outside_deterministic_packages_untouched():
    src = "for g in set(grids):\n    handle(g)\n"
    for rel in ("obs/report.py", "tests/core/test_x.py"):
        out, n = _fix(src, rel)
        assert n == 0
        assert out == src


def test_dict_views_left_for_rpr005():
    src = "for k in table.keys():\n    pass\n"
    out, n = _fix(src)
    assert n == 0


def test_multiline_and_unicode_safe():
    src = (
        "x = 'ééé'\n"
        "for g in set(\n"
        "    donors\n"
        "):\n"
        "    pass\n"
    )
    out, n = _fix(src)
    assert n == 1
    assert "sorted(set(\n    donors\n))" in out
    # Round-trips as valid python.
    compile(out, "<fixture>", "exec")


def test_two_loops_one_line_both_fixed():
    src = "for a in set(x): b = [c for c in a]\nfor d in set(y):\n    pass\n"
    out, n = _fix(src)
    assert n == 2
    compile(out, "<fixture>", "exec")


def test_fix_paths_rewrites_in_place_and_lints_clean(tmp_path: Path):
    pkg = tmp_path / "core"
    pkg.mkdir()
    target = pkg / "mod.py"
    target.write_text(
        "def f(grids):\n"
        "    out = []\n"
        "    for g in set(grids):\n"
        "        out.append(g)\n"
        "    return out\n"
    )
    clean = pkg / "clean.py"
    clean.write_text("def g():\n    return 1\n")

    before = lint_paths([tmp_path], select=["RPR007"], root=tmp_path)
    assert before.counts().get("RPR007") == 1

    result = fix_paths([tmp_path], root=tmp_path)
    assert result.fixes == 1
    assert list(result.changed) == ["core/mod.py"]
    assert result.files_checked == 2
    assert "sorted(set(grids))" in target.read_text()
    # The clean file was not rewritten.
    assert clean.read_text() == "def g():\n    return 1\n"

    after = lint_paths([tmp_path], select=["RPR007"], root=tmp_path)
    assert after.ok


def test_cli_lint_fix_end_to_end(tmp_path: Path):
    pkg = tmp_path / "machine"
    pkg.mkdir()
    target = pkg / "mod.py"
    target.write_text("for g in set(range(3)):\n    print(g)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--fix", str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=str(tmp_path),
        env={
            "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            "PATH": "/usr/bin:/bin",
        },
    )
    assert "fixed 1 RPR007 finding(s)" in proc.stdout, proc.stdout
    assert "sorted(set(range(3)))" in target.read_text()
    # Post-fix lint of the fixture tree is clean -> exit 0.
    assert proc.returncode == 0, proc.stdout + proc.stderr
