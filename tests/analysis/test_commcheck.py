"""Tests for the whole-program analyzer (``repro check``).

Fixture packages under ``fixtures/commcheck/`` seed one defect class
per rule: ``bad.py`` must fire the rule, ``good.py`` must stay clean.
On top of that: noqa waivers, baseline application + stale detection,
tag/constant resolution through import chains, and the interprocedural
refinements (lock-held propagation, caller-loop wildcard receives).
"""

from pathlib import Path

import pytest

from repro.analysis import iter_rules, rule_catalog
from repro.analysis.commcheck import (
    BaselineEntry,
    BaselineError,
    COMMCHECK_CODES,
    apply_baseline,
    extract_summary,
    load_baseline,
    load_program,
    run_check,
)

FIXTURES = Path(__file__).parent / "fixtures" / "commcheck"


def check_fixture(name: str, which: str, code: str):
    return run_check([FIXTURES / name / f"{which}.py"], select=[code])


class TestRegistry:
    def test_commcheck_codes_registered(self):
        codes = {r.code for r in iter_rules()}
        for code in COMMCHECK_CODES:
            assert code in codes

    def test_commcheck_rules_documented(self):
        by_code = {r["code"]: r for r in rule_catalog()}
        for code in COMMCHECK_CODES:
            entry = by_code[code]
            assert entry["name"] and entry["summary"] and entry["rationale"]

    def test_commcheck_rules_inert_under_lint(self, tmp_path):
        # whole-program rules never run in per-file lint mode
        from repro.analysis import lint_paths

        f = tmp_path / "x.py"
        f.write_text(
            "def p(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.barrier()\n"
        )
        report = lint_paths([f], root=tmp_path)
        assert not any(
            fi.code in COMMCHECK_CODES for fi in report.findings
        )


@pytest.mark.parametrize(
    "name,code",
    [
        ("rpr010_collective", "RPR010"),
        ("rpr011_tags", "RPR011"),
        ("rpr012_wildcard", "RPR012"),
        ("rpr013_reserved", "RPR013"),
        ("rpr014_locks", "RPR014"),
        ("rpr015_blocking", "RPR015"),
    ],
)
class TestFixtures:
    def test_bad_fires(self, name, code):
        report = check_fixture(name, "bad", code)
        assert not report.ok
        assert {f.code for f in report.findings} == {code}

    def test_good_is_clean(self, name, code):
        report = check_fixture(name, "good", code)
        assert report.ok, [f.format() for f in report.findings]


class TestRPR010:
    def test_three_divergence_shapes(self):
        report = check_fixture("rpr010_collective", "bad", "RPR010")
        msgs = " ".join(f.message for f in report.findings)
        assert len(report.findings) == 3
        assert "barrier" in msgs and "allreduce" in msgs and "bcast" in msgs
        assert "early" in msgs  # the early-return shape names itself


class TestRPR011:
    def test_both_directions_reported(self):
        report = check_fixture("rpr011_tags", "bad", "RPR011")
        msgs = [f.message for f in report.findings]
        assert any("never" in m and "consumed" in m for m in msgs)
        assert any("blocks forever" in m for m in msgs)

    def test_phase_is_named(self):
        report = check_fixture("rpr011_tags", "bad", "RPR011")
        send = [f for f in report.findings if "consumed" in f.message]
        assert "phase 'exchange'" in send[0].message

    def test_cross_module_import_chain(self, tmp_path):
        # tag defined in one module, imported and received in another
        (tmp_path / "tags.py").write_text("TAG_X = 77\n")
        (tmp_path / "a.py").write_text(
            "from tags import TAG_X\n"
            "def s(comm):\n"
            "    yield from comm.send(1, TAG_X, b'')\n"
        )
        (tmp_path / "b.py").write_text(
            "def r(comm):\n"
            "    data, st = yield from comm.recv(0, 77)\n"
            "    return data\n"
        )
        report = run_check([tmp_path], root=tmp_path, select=["RPR011"])
        assert report.ok, [f.format() for f in report.findings]


class TestRPR012:
    def test_interprocedural_names_caller(self):
        report = check_fixture("rpr012_wildcard", "bad", "RPR012")
        inter = [f for f in report.findings if "via" in f.message]
        assert len(inter) == 1
        assert "interprocedural_loop" in inter[0].message


class TestRPR013:
    def test_fallback_matches_simmpi(self):
        from repro.analysis.commcheck.protocol import MAX_USER_TAG_FALLBACK
        from repro.machine.simmpi import MAX_USER_TAG

        assert MAX_USER_TAG_FALLBACK == MAX_USER_TAG

    def test_authority_modules_exempt(self, tmp_path):
        # the same forged send inside machine/simmpi.py is the authority
        d = tmp_path / "machine"
        d.mkdir()
        src = (
            "_TAG_X = 100_000_000_001\n"
            "def p(self):\n"
            "    yield from self._send(1, _TAG_X, None)\n"
        )
        (d / "simmpi.py").write_text(src)
        (d / "other.py").write_text(src)
        report = run_check([tmp_path], root=tmp_path, select=["RPR013"])
        assert [f.path for f in report.findings] == ["machine/other.py"]


class TestRPR014:
    def test_lock_held_propagation(self):
        # good.py's Counter._bump writes total with no lexical lock but
        # is only ever called under _lock — must not be flagged
        report = check_fixture("rpr014_locks", "good", "RPR014")
        assert report.ok

    def test_init_writes_exempt(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
        )
        report = run_check([tmp_path], root=tmp_path, select=["RPR014"])
        assert report.ok


class TestRPR015:
    def test_condition_wait_exempt(self):
        report = check_fixture("rpr015_blocking", "good", "RPR015")
        assert report.ok, [f.format() for f in report.findings]

    def test_interprocedural_callee_named(self):
        report = check_fixture("rpr015_blocking", "bad", "RPR015")
        inter = [f for f in report.findings if "_write_disk" in f.message]
        assert inter and "write_bytes" in inter[0].message


class TestSummary:
    def test_extracts_tag_phase_and_loop(self):
        program = load_program(
            [FIXTURES / "rpr011_tags" / "bad.py"], root=FIXTURES
        )
        summary = extract_summary(program)
        sends = [s for s in summary.sites if s.kind == "send"]
        assert len(sends) == 1
        assert sends[0].tag.value == 7
        assert sends[0].tag.symbol == "TAG_ORPHAN_SEND"
        assert sends[0].phase == "exchange"
        assert not sends[0].in_loop

    def test_socket_calls_are_not_comm_sites(self, tmp_path):
        # plain .send()/.recv() (no yield from) is socket/pipe surface
        (tmp_path / "m.py").write_text(
            "def f(sock):\n"
            "    sock.send(b'x')\n"
            "    return sock.recv(4)\n"
        )
        program = load_program([tmp_path], root=tmp_path)
        assert extract_summary(program).sites == []

    def test_real_tree_has_comm_sites(self):
        repo = Path(__file__).resolve().parents[2]
        program = load_program([repo / "src" / "repro"])
        summary = extract_summary(program)
        ops = {s.op for s in summary.sites}
        # collectives called by drivers, primitives inside simmpi itself
        assert "barrier" in ops and "allreduce" in ops and "_send" in ops


class TestNoqa:
    def test_explicit_code_waives(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "def p(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.barrier()  # noqa: RPR010\n"
        )
        report = run_check([tmp_path], root=tmp_path)
        assert report.ok
        assert [f.code for f in report.suppressed] == ["RPR010"]

    def test_other_code_does_not_waive(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "def p(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.barrier()  # noqa: RPR001\n"
        )
        report = run_check([tmp_path], root=tmp_path)
        assert [f.code for f in report.findings] == ["RPR010"]


class TestBaseline:
    def entry(self, **kw):
        base = dict(
            code="RPR010",
            path="m.py",
            justification="documented",
        )
        base.update(kw)
        return BaselineEntry(**base)

    def run_bad(self, tmp_path, entries):
        (tmp_path / "m.py").write_text(
            "def p(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.barrier()\n"
        )
        return run_check([tmp_path], root=tmp_path, baseline=entries)

    def test_matching_entry_waives(self, tmp_path):
        report = self.run_bad(tmp_path, [self.entry()])
        assert report.ok
        assert len(report.waived) == 1
        assert not report.stale_baseline

    def test_stale_entry_detected(self, tmp_path):
        stale = self.entry(code="RPR015", path="nope.py")
        report = self.run_bad(tmp_path, [self.entry(), stale])
        assert report.ok
        assert report.stale_baseline == [stale]

    def test_function_and_contains_filters(self, tmp_path):
        wrong_fn = self.entry(function="m.other")
        report = self.run_bad(tmp_path, [wrong_fn])
        assert not report.ok  # entry does not match -> finding kept
        right = self.entry(function="m.p", contains="barrier")
        report = self.run_bad(tmp_path, [right])
        assert report.ok

    def test_loader_rejects_unjustified(self, tmp_path):
        f = tmp_path / "b.json"
        f.write_text(
            '{"entries": [{"code": "RPR015", "path": "x.py", '
            '"justification": "  "}]}'
        )
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(f)

    def test_loader_rejects_bad_json(self, tmp_path):
        f = tmp_path / "b.json"
        f.write_text("{nope")
        with pytest.raises(BaselineError, match="invalid JSON"):
            load_baseline(f)

    def test_apply_baseline_pure(self):
        from repro.analysis.commcheck import CheckFinding

        f = CheckFinding(
            path="x.py", line=1, col=0, code="RPR015",
            message="blocking 'sleep()'", function="x.f",
        )
        res = apply_baseline(
            [f], [BaselineEntry("RPR015", "x.py", "ok", contains="sleep")]
        )
        assert res.kept == [] and len(res.waived) == 1 and not res.stale


class TestEngine:
    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            run_check([FIXTURES], select=["RPR999"])

    def test_syntax_error_reported(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_check([tmp_path], root=tmp_path)
        assert [f.code for f in report.findings] == ["RPR000"]

    def test_json_report_round_trips(self, tmp_path):
        import json

        (tmp_path / "m.py").write_text(
            "def p(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.barrier()\n"
        )
        report = run_check([tmp_path], root=tmp_path)
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["counts"] == {"RPR010": 1}
        assert data["findings"][0]["function"] == "m.p"
