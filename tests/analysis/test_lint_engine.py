"""Tests for the lint engine itself (registry, noqa, select, output)."""

import json
import textwrap

import pytest

from repro.analysis import iter_rules, lint_paths, register, rule_catalog
from repro.analysis.lint import Rule, _noqa_codes, lint_file


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestRegistry:
    def test_rules_sorted_and_unique(self):
        codes = [r.code for r in iter_rules()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        assert "RPR001" in codes and "RPR007" in codes

    def test_catalog_is_documented(self):
        for entry in rule_catalog():
            assert entry["code"].startswith("RPR")
            assert entry["name"]
            assert entry["summary"]
            assert entry["rationale"]

    def test_register_rejects_bad_code(self):
        class Bad(Rule):
            code = "XXX1"

        with pytest.raises(ValueError, match="bad rule code"):
            register(Bad)

    def test_register_rejects_duplicate(self):
        class Dup(Rule):
            code = "RPR001"

        with pytest.raises(ValueError, match="duplicate"):
            register(Dup)


class TestNoqa:
    def test_no_comment(self):
        assert _noqa_codes("x = 1") is None

    def test_bare_noqa_waives_all(self):
        assert _noqa_codes("x = 1  # noqa") == set()

    def test_specific_codes(self):
        assert _noqa_codes("x  # noqa: RPR001") == {"RPR001"}
        assert _noqa_codes("x  # NOQA: rpr001, RPR005") == {
            "RPR001",
            "RPR005",
        }

    def test_suppression_counted_not_silent(self, tmp_path):
        path = write(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                yield from comm.send(1, 42, None)  # noqa: RPR001
            """,
        )
        findings, suppressed = lint_file(path, root=tmp_path)
        assert findings == []
        assert len(suppressed) == 1
        assert suppressed[0].code == "RPR001"

    def test_other_code_does_not_waive(self, tmp_path):
        path = write(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                yield from comm.send(1, 42, None)  # noqa: RPR005
            """,
        )
        findings, suppressed = lint_file(path, root=tmp_path)
        assert [f.code for f in findings] == ["RPR001"]
        assert suppressed == []


class TestEngine:
    def test_syntax_error_is_rpr000(self, tmp_path):
        path = write(tmp_path, "bad.py", "def broken(:\n")
        report = lint_paths([path], root=tmp_path)
        assert not report.ok
        assert report.findings[0].code == "RPR000"

    def test_select_restricts(self, tmp_path):
        write(
            tmp_path,
            "src/app.py",
            """\
            def f(x=[]):
                yield from comm.send(1, 42, None)
            """,
        )
        both = lint_paths([tmp_path], root=tmp_path)
        assert sorted(both.counts()) == ["RPR001", "RPR004"]
        only = lint_paths([tmp_path], select=["RPR004"], root=tmp_path)
        assert sorted(only.counts()) == ["RPR004"]

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule code"):
            lint_paths([tmp_path], select=["RPR999"], root=tmp_path)

    def test_json_output(self, tmp_path):
        write(tmp_path, "src/app.py", "def f(x=[]):\n    pass\n")
        report = lint_paths([tmp_path], root=tmp_path)
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["counts"] == {"RPR004": 1}
        assert data["findings"][0]["path"].endswith("app.py")

    def test_format_mentions_location_and_code(self, tmp_path):
        write(tmp_path, "src/app.py", "def f(x=[]):\n    pass\n")
        report = lint_paths([tmp_path], root=tmp_path)
        out = report.format()
        assert "src/app.py:1" in out
        assert "RPR004" in out
        assert "1 file(s) checked" in out

    def test_clean_tree_ok(self, tmp_path):
        write(tmp_path, "src/app.py", "X = 1\n")
        report = lint_paths([tmp_path], root=tmp_path)
        assert report.ok
        assert report.files_checked == 1
