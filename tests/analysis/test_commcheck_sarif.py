"""SARIF 2.1.0 round-trip + schema validation for ``repro check``.

The vendored subset schema (``fixtures/sarif-2.1.0-subset.schema.json``)
mirrors the published sarif-2.1.0 schema's constraints for every
construct the emitter produces; validation runs with ``jsonschema``.
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro.analysis import rule_catalog
from repro.analysis.commcheck import (
    BaselineEntry,
    CheckFinding,
    COMMCHECK_CODES,
    run_check,
    sarif_json,
    to_sarif,
)

FIXTURES = Path(__file__).parent / "fixtures"
SCHEMA = json.loads(
    (FIXTURES / "sarif-2.1.0-subset.schema.json").read_text()
)


def commcheck_rules():
    return [r for r in rule_catalog() if r["code"] in COMMCHECK_CODES]


def validate(doc: dict) -> None:
    jsonschema.validate(instance=doc, schema=SCHEMA)


class TestSarifEmitter:
    def finding(self, **kw):
        base = dict(
            path="src/x.py", line=3, col=4, code="RPR015",
            message="blocking 'sleep()' while holding lock [_lock]",
            function="x.C.f",
        )
        base.update(kw)
        return CheckFinding(**base)

    def test_empty_report_validates(self):
        doc = to_sarif([], rules=commcheck_rules())
        validate(doc)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"] == []
        ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == list(COMMCHECK_CODES)

    def test_findings_round_trip(self):
        doc = to_sarif([self.finding()], rules=commcheck_rules())
        validate(doc)
        res = doc["runs"][0]["results"][0]
        assert res["ruleId"] == "RPR015"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/x.py"
        assert loc["region"]["startLine"] == 3
        assert loc["region"]["startColumn"] == 5  # 0-based col -> 1-based

    def test_rule_index_points_at_rule(self):
        doc = to_sarif([self.finding()], rules=commcheck_rules())
        res = doc["runs"][0]["results"][0]
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules[res["ruleIndex"]]["id"] == "RPR015"

    def test_waived_and_suppressed_carry_suppressions(self):
        entry = BaselineEntry(
            code="RPR015", path="src/x.py",
            justification="by design: transport lock",
        )
        doc = to_sarif(
            [],
            waived=[(self.finding(), entry)],
            suppressed=[self.finding(line=9)],
            rules=commcheck_rules(),
        )
        validate(doc)
        kinds = sorted(
            r["suppressions"][0]["kind"]
            for r in doc["runs"][0]["results"]
        )
        assert kinds == ["external", "inSource"]
        ext = [
            r
            for r in doc["runs"][0]["results"]
            if r["suppressions"][0]["kind"] == "external"
        ][0]
        assert "by design" in ext["suppressions"][0]["justification"]

    def test_json_serializable_and_stable(self):
        text = sarif_json(to_sarif([self.finding()], rules=commcheck_rules()))
        doc = json.loads(text)
        validate(doc)
        assert text == sarif_json(doc)  # sorted keys -> idempotent dump

    def test_schema_rejects_bad_version(self):
        doc = to_sarif([], rules=commcheck_rules())
        doc["version"] = "1.0.0"
        with pytest.raises(jsonschema.ValidationError):
            validate(doc)

    def test_schema_rejects_zero_line(self):
        doc = to_sarif([], rules=commcheck_rules())
        doc["runs"][0]["results"] = [
            {
                "ruleId": "RPR015",
                "message": {"text": "x"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": "x.py"},
                            "region": {"startLine": 0},
                        }
                    }
                ],
            }
        ]
        with pytest.raises(jsonschema.ValidationError):
            validate(doc)


class TestSarifOnFixtures:
    def test_real_findings_validate(self):
        base = Path(__file__).parent / "fixtures" / "commcheck"
        report = run_check(
            [base / "rpr015_blocking" / "bad.py"], select=["RPR015"]
        )
        assert report.findings
        doc = to_sarif(report.findings, rules=commcheck_rules())
        validate(doc)
        assert len(doc["runs"][0]["results"]) == len(report.findings)
