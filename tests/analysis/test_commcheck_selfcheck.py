"""Self-check: ``repro check src/repro`` is clean against the baseline.

This is the same invariant CI enforces — the real tree must produce no
findings beyond the committed, justified baseline, the baseline must
contain no stale entries, and the defects the analyzer originally
surfaced (disk I/O under the result-cache lock) must stay fixed.
"""

from pathlib import Path

from repro.analysis.commcheck import (
    load_baseline,
    run_check,
    run_check_with_baseline_file,
)

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "analysis-baseline.json"


class TestSelfCheck:
    def test_src_repro_clean_against_baseline(self):
        report = run_check_with_baseline_file(
            [REPO / "src" / "repro"],
            root=REPO,
            baseline_path=BASELINE,
        )
        assert report.ok, "\n".join(f.format() for f in report.findings)

    def test_baseline_has_no_stale_entries(self):
        report = run_check_with_baseline_file(
            [REPO / "src" / "repro"],
            root=REPO,
            baseline_path=BASELINE,
        )
        stale = [e.describe() for e in report.stale_baseline]
        assert not stale, f"stale baseline entries: {stale}"

    def test_baseline_entries_are_justified(self):
        for entry in load_baseline(BASELINE):
            assert len(entry.justification) > 20, entry.describe()

    def test_summary_covers_known_protocols(self):
        report = run_check_with_baseline_file(
            [REPO / "src" / "repro"], root=REPO, baseline_path=BASELINE
        )
        rels = {s.func.module.rel for s in report.summary.sites}
        assert any("machine/simmpi" in r for r in rels)
        assert any("connectivity" in r for r in rels)
        assert any("solver" in r for r in rels)


class TestCacheRegression:
    """PR regression: ResultCache held its lock across disk I/O."""

    def test_cache_has_no_blocking_under_lock(self):
        report = run_check(
            [REPO / "src" / "repro" / "serve" / "cache.py"],
            root=REPO,
            select=["RPR015"],
        )
        assert report.ok, "\n".join(f.format() for f in report.findings)

    def test_cache_lock_discipline_still_consistent(self):
        # counters and the LRU map must stay consistently locked after
        # the fix (the _insert lock-held propagation keeps this green)
        report = run_check(
            [REPO / "src" / "repro" / "serve" / "cache.py"],
            root=REPO,
            select=["RPR014"],
        )
        assert report.ok, "\n".join(f.format() for f in report.findings)

    def test_spill_write_happens_outside_lock(self, tmp_path):
        # behavioral guard: a put() staged to disk must not leave temp
        # litter and must keep tiers consistent
        from repro.serve.cache import ResultCache

        cache = ResultCache(directory=tmp_path, max_entries=4)
        cache.put("a" * 8, b"payload-a")
        assert cache.get("a" * 8) == b"payload-a"
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_concurrent_puts_same_sha_agree(self, tmp_path):
        import threading

        from repro.serve.cache import ResultCache

        cache = ResultCache(directory=tmp_path, max_entries=8)
        start = threading.Barrier(4)

        def worker():
            start.wait()
            for _ in range(25):
                cache.put("s" * 8, b"identical-bytes")
                assert cache.get("s" * 8) == b"identical-bytes"

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.get("s" * 8) == b"identical-bytes"
        assert (tmp_path / ("s" * 8 + ".json")).read_bytes() == (
            b"identical-bytes"
        )
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_spilled_get_reads_outside_then_inserts(self, tmp_path):
        from repro.serve.cache import ResultCache

        warm = ResultCache(directory=tmp_path)
        warm.put("x" * 8, b"spilled")
        cold = ResultCache(directory=tmp_path)
        assert cold.get("x" * 8) == b"spilled"
        stats = cold.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
