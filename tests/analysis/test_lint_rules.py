"""One fixture battery per lint rule: positive, negative, noqa.

Fixture files are written under a temp root so the rules' path scoping
(tests exemption, deterministic packages, tag-authority modules) is
exercised exactly as it is on the real tree.
"""

import textwrap

from repro.analysis import lint_paths

#: A path inside a deterministic package (RPR002/003/007 apply).
DET = "src/repro/machine/mod.py"
#: A path outside every deterministic package.
NONDET = "src/repro/obs/mod.py"


def run_lint(tmp_path, rel, source, select=None):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], select=select, root=tmp_path)


def codes(report):
    return [f.code for f in report.findings]


class TestRPR001RawTagLiteral:
    def test_literal_tag_in_send(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                yield from comm.send(1, 42, None, nbytes=8)
            """,
        )
        assert codes(rep) == ["RPR001"]

    def test_literal_tag_keyword_and_sendrecv(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                yield from comm.recv(0, tag=3)
                yield from comm.sendrecv(1, 0, 7, None)
            """,
        )
        assert codes(rep) == ["RPR001", "RPR001"]

    def test_literal_tag_in_raw_primitive(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                msg = yield ("tryrecv", 0, 5)
            """,
        )
        assert codes(rep) == ["RPR001"]

    def test_named_constant_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            TAG_HALO = 11

            def p(comm):
                yield from comm.send(1, TAG_HALO, None)
            """,
        )
        assert rep.ok

    def test_tests_tree_exempt(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "tests/test_x.py",
            """\
            def p(comm):
                yield from comm.send(1, 42, None)
            """,
        )
        assert rep.ok

    def test_tag_authority_module_exempt(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/repro/machine/simmpi.py",
            """\
            def p(comm):
                yield from comm.send(1, 42, None)
            """,
        )
        assert "RPR001" not in codes(rep)

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                yield from comm.send(1, 42, None)  # noqa: RPR001
            """,
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR002WallClock:
    def test_time_time_in_deterministic_path(self, tmp_path):
        rep = run_lint(tmp_path, DET, "import time\nt = time.time()\n")
        assert codes(rep) == ["RPR002"]

    def test_datetime_now(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            "import datetime\nn = datetime.datetime.now()\n",
        )
        assert codes(rep) == ["RPR002"]

    def test_outside_deterministic_path_ok(self, tmp_path):
        rep = run_lint(tmp_path, NONDET, "import time\nt = time.time()\n")
        assert rep.ok

    def test_virtual_time_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def p(comm):
                t = yield from comm.now()
            """,
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path, DET, "import time\nt = time.time()  # noqa: RPR002\n"
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR003UnseededRng:
    def test_legacy_global_numpy(self, tmp_path):
        rep = run_lint(
            tmp_path, DET, "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert codes(rep) == ["RPR003"]

    def test_unseeded_default_rng(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert codes(rep) == ["RPR003"]

    def test_stdlib_random(self, tmp_path):
        rep = run_lint(
            tmp_path, DET, "import random\nx = random.random()\n"
        )
        assert codes(rep) == ["RPR003"]

    def test_seeded_default_rng_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            "import numpy as np\nrng = np.random.default_rng(42)\n",
        )
        assert rep.ok

    def test_outside_deterministic_path_ok(self, tmp_path):
        rep = run_lint(
            tmp_path, NONDET, "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            "import random\nx = random.random()  # noqa: RPR003\n",
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR004MutableDefault:
    def test_list_literal_default(self, tmp_path):
        rep = run_lint(tmp_path, "src/app.py", "def f(x=[]):\n    pass\n")
        assert codes(rep) == ["RPR004"]

    def test_dict_call_and_kwonly_default(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            "def f(a=dict(), *, b={}):\n    pass\n",
        )
        assert codes(rep) == ["RPR004", "RPR004"]

    def test_lambda_default(self, tmp_path):
        rep = run_lint(tmp_path, "src/app.py", "g = lambda x=[]: x\n")
        assert codes(rep) == ["RPR004"]

    def test_none_default_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            "def f(x=None, y=(), z=0):\n    pass\n",
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            "def f(x=[]):  # noqa: RPR004\n    pass\n",
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR005UnorderedSendLoop:
    def test_set_loop_with_send(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            TAG = 1

            def p(comm, dsts):
                for d in set(dsts):
                    yield from comm.send(d, TAG, None)
            """,
        )
        assert codes(rep) == ["RPR005"]

    def test_dict_view_loop_with_send(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            TAG = 1

            def p(comm, batches):
                for d, rows in batches.items():
                    yield from comm.send(d, TAG, rows)
            """,
        )
        assert codes(rep) == ["RPR005"]

    def test_raw_inject_primitive_counts_as_send(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            TAG = 1

            def p(comm, dsts):
                for d in {0, 1}:
                    yield ("inject", d, TAG, None, 8)
            """,
        )
        assert codes(rep) == ["RPR005"]

    def test_sorted_loop_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            TAG = 1

            def p(comm, batches):
                for d, rows in sorted(batches.items()):
                    yield from comm.send(d, TAG, rows)
            """,
        )
        assert rep.ok

    def test_loop_without_send_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def f(batches):
                out = 0
                for d, rows in batches.items():
                    out += len(rows)
                return out
            """,
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            TAG = 1

            def p(comm, dsts):
                for d in set(dsts):  # noqa: RPR005
                    yield from comm.send(d, TAG, None)
            """,
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR006SwallowedFailure:
    def test_bare_except(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def f():
                try:
                    g()
                except:
                    pass
            """,
        )
        assert codes(rep) == ["RPR006"]

    def test_broad_except_around_yield(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                try:
                    yield from comm.recv()
                except Exception:
                    pass
            """,
        )
        assert codes(rep) == ["RPR006"]

    def test_broad_except_with_reraise_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                try:
                    yield from comm.recv()
                except Exception:
                    log()
                    raise
            """,
        )
        assert rep.ok

    def test_broad_except_without_yield_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def f(x):
                try:
                    return int(x)
                except Exception:
                    return 0
            """,
        )
        assert rep.ok

    def test_specific_except_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm):
                try:
                    yield from comm.recv()
                except ValueError:
                    pass
            """,
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def f():
                try:
                    g()
                except:  # noqa: RPR006
                    pass
            """,
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR007HashOrderIteration:
    def test_set_call_loop(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                for x in set(xs):
                    print(x)
            """,
        )
        assert codes(rep) == ["RPR007"]

    def test_set_algebra_loop(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                for x in set(xs) - {-1}:
                    print(x)
            """,
        )
        assert codes(rep) == ["RPR007"]

    def test_sorted_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
            """,
        )
        assert rep.ok

    def test_dict_views_exempt(self, tmp_path):
        # Python dicts are insertion-ordered, hence deterministic; only
        # RPR005 (send loops) constrains them.
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(d):
                for k, v in d.items():
                    print(k, v)
            """,
        )
        assert rep.ok

    def test_outside_deterministic_path_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            NONDET,
            """\
            def f(xs):
                for x in set(xs):
                    print(x)
            """,
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                for x in set(xs):  # noqa: RPR007
                    print(x)
            """,
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR008WildcardBlockingRecv:
    def test_blocking_wildcard_recv(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            from repro.machine.event import ANY_SOURCE, ANY_TAG

            def p(comm):
                msg = yield from comm.recv(ANY_SOURCE, ANY_TAG)
            """,
        )
        assert codes(rep) == ["RPR008"]

    def test_dotted_any_source_and_irecv(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            from repro.machine import event

            def p(comm, TAG_X):
                req = yield from comm.irecv(src=event.ANY_SOURCE, tag=TAG_X)
            """,
        )
        assert codes(rep) == ["RPR008"]

    def test_drain_recv_is_canonical(self, tmp_path):
        # drain_recv(ANY_SOURCE, tag) batch-receives deterministically;
        # it is the recommended replacement, never flagged.
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            from repro.machine.event import ANY_SOURCE

            def p(comm, TAG_X):
                msgs = yield from comm.drain_recv(ANY_SOURCE, TAG_X)
            """,
        )
        assert rep.ok

    def test_explicit_source_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            def p(comm, TAG_X):
                msg = yield from comm.recv(0, TAG_X)
            """,
        )
        assert rep.ok

    def test_tests_tree_exempt(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "tests/test_x.py",
            """\
            from repro.machine.event import ANY_SOURCE, ANY_TAG

            def p(comm):
                msg = yield from comm.recv(ANY_SOURCE, ANY_TAG)
            """,
        )
        assert rep.ok

    def test_tag_module_exempt(self, tmp_path):
        # The tag-space authority modules implement the matching
        # machinery itself.
        rep = run_lint(
            tmp_path,
            "src/repro/machine/simmpi.py",
            """\
            ANY_SOURCE = -1

            def p(comm, TAG_X):
                msg = yield from comm.recv(ANY_SOURCE, TAG_X)
            """,
            select=["RPR008"],
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            "src/app.py",
            """\
            from repro.machine.event import ANY_SOURCE

            def p(comm, TAG_X):
                msg = yield from comm.recv(ANY_SOURCE, TAG_X)  # noqa: RPR008
            """,
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRPR009UnorderedFloatReduction:
    def test_sum_over_set_call(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                return sum(set(xs))
            """,
        )
        assert codes(rep) == ["RPR009"]

    def test_fsum_over_set_algebra(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            import math

            def f(a, b):
                return math.fsum(set(a) - set(b))
            """,
        )
        assert codes(rep) == ["RPR009"]

    def test_generator_over_set(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                return sum(x * x for x in set(xs))
            """,
        )
        assert codes(rep) == ["RPR009"]

    def test_sorted_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                return sum(sorted(set(xs)))
            """,
        )
        assert rep.ok

    def test_dict_views_exempt(self, tmp_path):
        # Insertion-ordered, hence deterministic (same carve-out as
        # RPR007).
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(d):
                return sum(d.values()) + sum(v for v in d.values())
            """,
        )
        assert rep.ok

    def test_outside_deterministic_path_ok(self, tmp_path):
        rep = run_lint(
            tmp_path,
            NONDET,
            """\
            def f(xs):
                return sum(set(xs))
            """,
        )
        assert rep.ok

    def test_noqa(self, tmp_path):
        rep = run_lint(
            tmp_path,
            DET,
            """\
            def f(xs):
                return sum(set(xs))  # noqa: RPR009
            """,
        )
        assert rep.ok and len(rep.suppressed) == 1


class TestRealTree:
    def test_src_lints_clean(self):
        # The repo's own source must stay lint-clean (CI runs this too).
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        report = lint_paths([root / "src"], root=root)
        assert report.ok, report.format()
