"""Collective payload-signature checking (size/shape/dtype agreement).

The sanitizer compares per-rank collective *sequences*; these tests pin
the extension of each sequence entry with an O(1) payload signature for
element-wise collectives (reduce/allreduce/alltoall), while
size-varying collectives (gather, bcast) stay exempt.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Sanitizer, payload_signature
from repro.machine import sp2
from repro.machine.scheduler import Simulator


def _run(program, nranks=3, sanitizer=None):
    sim = Simulator(sp2(nodes=nranks), sanitizer=sanitizer)
    for _ in range(nranks):
        sim.spawn(program)
    return sim.run()


def _findings(san, kind):
    return [f for f in san.findings if f.kind == kind]


# ----------------------------------------------------------------------
# payload_signature unit behaviour


def test_signature_ndarray_shape_dtype():
    assert payload_signature(np.zeros((3, 4))) == (
        "ndarray", (3, 4), "float64",
    )
    assert payload_signature(np.zeros(3, dtype=np.int32)) == (
        "ndarray", (3,), "int32",
    )
    # numpy scalars carry shape ()/dtype too — distinct from python floats.
    assert payload_signature(np.float64(1.0))[0] == "ndarray"


def test_signature_python_values():
    assert payload_signature(None) == ("none",)
    assert payload_signature(3) == ("py", "int")
    assert payload_signature(3.5) == ("py", "float")
    assert payload_signature([1, 2, 3]) == ("seq", 3)
    assert payload_signature((1, 2)) == ("seq", 2)
    assert payload_signature(b"abc") == ("bytes", 3)
    assert payload_signature({"a": 1}) == ("py", "dict")


def test_signature_is_size_independent_structure():
    # Same shape, different values -> same signature (O(1), value-blind).
    a = payload_signature(np.arange(6.0).reshape(2, 3))
    b = payload_signature(np.zeros((2, 3)))
    assert a == b


# ----------------------------------------------------------------------
# clean programs stay clean


def test_matching_allreduce_signatures_clean():
    def program(comm):
        total = yield from comm.allreduce(np.full(4, float(comm.rank)))
        return float(total.sum())

    san = Sanitizer()
    _run(program, sanitizer=san)
    assert _findings(san, "collective-mismatch") == []
    assert san.report().ok


def test_gatherv_style_variation_not_flagged():
    """Per-rank gather sizes legitimately vary; no payload check."""

    def program(comm):
        mine = np.zeros(comm.rank + 1)  # different size per rank!
        rows = yield from comm.gather(mine, root=0)
        yield from comm.barrier()
        return None if rows is None else len(rows)

    san = Sanitizer()
    _run(program, sanitizer=san)
    assert _findings(san, "collective-mismatch") == []


def test_root_only_bcast_payload_not_flagged():
    def program(comm):
        word = yield from comm.bcast("x" if comm.rank == 0 else None, root=0)
        return word

    san = Sanitizer()
    out = _run(program, sanitizer=san)
    assert out.returns == ["x"] * 3
    assert _findings(san, "collective-mismatch") == []


# ----------------------------------------------------------------------
# divergent payloads are flagged


def test_allreduce_shape_mismatch_flagged():
    def program(comm):
        n = 4 if comm.rank != 2 else 5  # rank 2 contributes a longer array
        yield from comm.allreduce(
            np.zeros(n), op=lambda a, b: a[: len(b)] + b[: len(a)]
        )
        return None

    san = Sanitizer()
    _run(program, sanitizer=san)
    found = _findings(san, "collective-mismatch")
    assert found, "shape-divergent allreduce must be flagged"
    assert any("payload" in f.message for f in found)
    assert not san.report().ok


def test_reduce_dtype_mismatch_flagged():
    def program(comm):
        dtype = np.float64 if comm.rank != 1 else np.float32
        yield from comm.reduce(np.zeros(3, dtype=dtype), root=0)
        return None

    san = Sanitizer()
    _run(program, sanitizer=san)
    assert _findings(san, "collective-mismatch")


def test_mixed_python_type_fold_flagged():
    def program(comm):
        value = 1.0 if comm.rank != 1 else [1.0]  # list vs float fold
        yield from comm.reduce(value, op=lambda a, b: a, root=0)
        return None

    san = Sanitizer()
    _run(program, sanitizer=san)
    assert _findings(san, "collective-mismatch")


def test_signature_check_does_not_perturb_virtual_time():
    def program(comm):
        yield from comm.compute(flops=1e6)
        yield from comm.allreduce(np.zeros(8))
        yield from comm.barrier()
        return comm.rank

    plain = _run(program)
    sanitized = _run(program, sanitizer=Sanitizer())
    assert sanitized.elapsed == plain.elapsed
    assert sanitized.returns == plain.returns


def test_subcomm_collectives_carry_signatures():
    """Group collectives compare signatures under the group id."""

    def program(comm):
        if comm.rank < 2:
            sub = comm.split([0, 1])
            n = 3 if comm.rank == 0 else 4  # diverge inside the group
            yield from sub.allreduce(np.zeros(n),
                                     op=lambda a, b: a[:3] + b[:3])
        yield from comm.barrier()
        return None

    san = Sanitizer()
    _run(program, sanitizer=san)
    found = _findings(san, "collective-mismatch")
    assert found
    assert any("group" in (f.detail.get("comm") or "") for f in found)
