"""Tests for the command-line interface."""

import math

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "airfoil" in out and "sp2" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "airfoil"])
        assert args.machine == "sp2"
        assert args.nodes == 12
        assert math.isinf(args.f0)


class TestRun:
    def test_run_airfoil_small(self, capsys):
        rc = main([
            "run", "airfoil", "--nodes", "4", "--scale", "0.05",
            "--steps", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "time/step" in out
        assert "DCF3D" in out

    def test_unknown_case(self):
        with pytest.raises(SystemExit, match="unknown case"):
            main(["run", "bogus", "--nodes", "4"])

    def test_unknown_machine(self):
        with pytest.raises(SystemExit, match="unknown machine"):
            main(["run", "airfoil", "--machine", "cray-3"])

    def test_dynamic_f0(self, capsys):
        rc = main([
            "run", "airfoil", "--nodes", "6", "--scale", "0.05",
            "--steps", "4", "--f0", "5",
        ])
        assert rc == 0
        assert "f0=5.0" in capsys.readouterr().out


class TestSweep:
    def test_sweep_produces_table(self, capsys):
        rc = main([
            "sweep", "airfoil", "--nodes", "3,6", "--scale", "0.05",
            "--steps", "2", "--csv",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "nodes,gridpoints/node" in out.replace(" ", "") or "nodes," in out


class TestPhysics:
    def test_physics_runs(self, capsys):
        rc = main(["physics", "--scale", "0.04", "--steps", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "forces:" in out
