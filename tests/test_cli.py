"""Tests for the command-line interface."""

import json
import math

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "airfoil" in out and "sp2" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "airfoil"])
        assert args.machine == "sp2"
        # None = "not given": cmd_run resolves 12 for built-in cases
        # while a --scenario file's own run block wins.
        assert args.nodes is None
        assert args.steps is None
        assert math.isinf(args.f0)


class TestRun:
    def test_run_airfoil_small(self, capsys):
        rc = main([
            "run", "airfoil", "--nodes", "4", "--scale", "0.05",
            "--steps", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "time/step" in out
        assert "DCF3D" in out

    def test_unknown_case(self):
        with pytest.raises(SystemExit, match="unknown case"):
            main(["run", "bogus", "--nodes", "4"])

    def test_unknown_machine(self):
        with pytest.raises(SystemExit, match="unknown machine"):
            main(["run", "airfoil", "--machine", "cray-3"])

    def test_dynamic_f0(self, capsys):
        rc = main([
            "run", "airfoil", "--nodes", "6", "--scale", "0.05",
            "--steps", "4", "--f0", "5",
        ])
        assert rc == 0
        assert "f0=5.0" in capsys.readouterr().out


class TestSweep:
    def test_sweep_produces_table(self, capsys):
        rc = main([
            "sweep", "airfoil", "--nodes", "3,6", "--scale", "0.05",
            "--steps", "2", "--csv",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "nodes,gridpoints/node" in out.replace(" ", "") or "nodes," in out


class TestTrace:
    def test_trace_airfoil_writes_valid_outputs(self, capsys, tmp_path):
        rc = main([
            "trace", "airfoil", "--nodes", "4", "--scale", "0.05",
            "--steps", "2", "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tracing enabled" in out
        assert "span events" in out
        assert "I(p)" in out
        assert "per-rank phase timeline" in out

        # Valid Chrome trace_event JSON with the three op kinds.
        doc = json.loads((tmp_path / "trace_airfoil.json").read_text())
        events = doc["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)
        kinds = {e["name"] for e in events if e.get("ph") == "X"}
        assert {"compute", "comm", "wait"} <= kinds

        # CSV rollup with the expected header and one row per
        # (rank, phase) pair.
        csv = (tmp_path / "trace_airfoil_rollup.csv").read_text()
        assert csv.startswith(
            "rank,phase,compute_s,comm_s,wait_s,total_s,flops,bytes,events"
        )
        assert len(csv.strip().splitlines()) > 4

    def test_trace_x38_runs(self, capsys, tmp_path):
        rc = main([
            "trace", "x38", "--nodes", "4", "--scale", "0.3",
            "--steps", "2", "--no-timeline", "--out", str(tmp_path),
        ])
        assert rc == 0
        assert "X-38" in capsys.readouterr().out
        assert (tmp_path / "trace_x38.json").exists()

    def test_trace_phase_totals_cover_scheduler_time(self, tmp_path):
        """Acceptance check: per-phase totals (compute+comm+wait) tile
        each rank's accounted time up to the run's elapsed virtual
        seconds."""
        rc = main([
            "trace", "airfoil", "--nodes", "4", "--scale", "0.05",
            "--steps", "2", "--no-timeline", "--out", str(tmp_path),
        ])
        assert rc == 0
        csv = (tmp_path / "trace_airfoil_rollup.csv").read_text()
        rows = [r.split(",") for r in csv.strip().splitlines()[1:]]
        per_rank = {}
        for r in rows:
            per_rank.setdefault(int(r[0]), 0.0)
            per_rank[int(r[0])] += float(r[5])
        doc = json.loads((tmp_path / "trace_airfoil.json").read_text())
        t_end = max(
            e["ts"] + e["dur"]
            for e in doc["traceEvents"]
            if e.get("ph") == "X"
        ) / 1e6
        # Every rank's accounted seconds end at (and never exceed) the
        # scheduler's total simulated time.
        assert all(total <= t_end + 1e-9 for total in per_rank.values())
        assert max(per_rank.values()) == pytest.approx(t_end, rel=1e-9)


class TestPhysics:
    def test_physics_runs(self, capsys):
        rc = main(["physics", "--scale", "0.04", "--steps", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "forces:" in out


class TestLintCommand:
    def test_lint_clean_file_exits_zero(self, capsys, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text("X = 1\n")
        rc = main(["lint", str(f)])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_finding_exits_one(self, capsys, tmp_path):
        f = tmp_path / "dirty.py"
        f.write_text("def f(x=[]):\n    pass\n")
        rc = main(["lint", str(f)])
        assert rc == 1
        assert "RPR004" in capsys.readouterr().out

    def test_lint_json_output(self, capsys, tmp_path):
        f = tmp_path / "dirty.py"
        f.write_text("def f(x=[]):\n    pass\n")
        rc = main(["lint", str(f), "--json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["counts"] == {"RPR004": 1}

    def test_lint_select(self, capsys, tmp_path):
        f = tmp_path / "dirty.py"
        f.write_text("def f(x=[]):\n    pass\n")
        rc = main(["lint", str(f), "--select", "RPR001"])
        assert rc == 0

    def test_lint_unknown_select_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule code"):
            main(["lint", str(tmp_path), "--select", "RPR999"])

    def test_lint_rules_catalog(self, capsys):
        rc = main(["lint", "--rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR007"):
            assert code in out

    def test_lint_repo_src_is_clean(self, capsys):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        rc = main(["lint", str(src)])
        assert rc == 0


class TestCheckCommand:
    BAD = (
        "def p(comm):\n"
        "    if comm.rank == 0:\n"
        "        yield from comm.barrier()\n"
    )

    def test_check_clean_file_exits_zero(self, capsys, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text("def p(comm):\n    yield from comm.barrier()\n")
        rc = main(["check", str(f), "--no-baseline"])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_check_finding_exits_one(self, capsys, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(self.BAD)
        rc = main(["check", str(f), "--no-baseline"])
        assert rc == 1
        assert "RPR010" in capsys.readouterr().out

    def test_check_json_output(self, capsys, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(self.BAD)
        rc = main(["check", str(f), "--no-baseline", "--json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["counts"] == {"RPR010": 1}

    def test_check_select(self, capsys, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(self.BAD)
        rc = main(["check", str(f), "--no-baseline", "--select", "RPR015"])
        assert rc == 0

    def test_check_unknown_select_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule code"):
            main(["check", str(tmp_path), "--select", "RPR999"])

    def test_check_rules_catalog(self, capsys):
        rc = main(["check", "--rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("RPR010", "RPR015"):
            assert code in out
        assert "RPR001" not in out  # per-file lint rules stay separate

    def test_check_baseline_waives_and_stale_fails(self, capsys, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(self.BAD)
        bl = tmp_path / "bl.json"
        bl.write_text(json.dumps({
            "entries": [
                {"code": "RPR010", "path": "bad.py",
                 "justification": "fixture: documented"},
            ],
        }))
        import os

        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            rc = main(["check", "bad.py", "--baseline", str(bl)])
            assert rc == 0
            assert "1 waived by baseline" in capsys.readouterr().out
            # fix the defect -> entry goes stale -> --baseline-check fails
            f.write_text("def p(comm):\n    yield from comm.barrier()\n")
            rc = main(["check", "bad.py", "--baseline", str(bl)])
            assert rc == 0  # stale alone does not fail a normal run
            assert "stale baseline entry" in capsys.readouterr().out
            rc = main([
                "check", "bad.py", "--baseline", str(bl),
                "--baseline-check",
            ])
            assert rc == 1
        finally:
            os.chdir(cwd)

    def test_check_sarif_file_output(self, capsys, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(self.BAD)
        out_file = tmp_path / "out.sarif"
        rc = main([
            "check", str(f), "--no-baseline", "--sarif", str(out_file),
        ])
        assert rc == 1
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "RPR010"

    def test_check_summary_flag(self, capsys, tmp_path):
        f = tmp_path / "prog.py"
        f.write_text(
            "TAG_X = 5\n"
            "def p(comm):\n"
            "    yield from comm.send(1, TAG_X, b'')\n"
            "    d, s = yield from comm.recv(0, TAG_X)\n"
        )
        rc = main(["check", str(f), "--no-baseline", "--summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "communication summary:" in out
        assert "send:send tag=TAG_X (= 5)" in out

    def test_check_repo_clean_against_committed_baseline(self, capsys):
        import os
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[1]
        cwd = os.getcwd()
        os.chdir(repo)
        try:
            rc = main(["check", "src/repro", "--baseline-check"])
        finally:
            os.chdir(cwd)
        assert rc == 0


class TestSanitize:
    def test_run_sanitized_clean(self, capsys):
        rc = main([
            "run", "x38", "--nodes", "4", "--scale", "0.05",
            "--steps", "2", "--sanitize",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sanitizer: CLEAN" in out
        assert "wildcard receives" in out

    def test_run_without_sanitize_prints_no_report(self, capsys):
        rc = main([
            "run", "x38", "--nodes", "4", "--scale", "0.05",
            "--steps", "2",
        ])
        assert rc == 0
        assert "sanitizer" not in capsys.readouterr().out

    def test_trace_sanitized_clean(self, capsys, tmp_path):
        rc = main([
            "trace", "airfoil", "--nodes", "4", "--scale", "0.05",
            "--steps", "2", "--no-timeline", "--sanitize",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        assert "sanitizer: CLEAN" in capsys.readouterr().out


class TestBench:
    def test_bench_writes_canonical_payload(self, capsys, tmp_path):
        rc = main([
            "bench", "x38", "--quick", "--repeats", "1",
            "--no-microbench", "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Mflops/node" in out and "max f(p)" in out
        path = tmp_path / "BENCH_x38.json"
        assert path.exists()
        blob = json.loads(path.read_text())
        assert blob["schema"].startswith("repro-bench/")
        assert blob["simulated"]["sanitizer"]["ok"] is True

    def test_bench_unknown_case(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown bench case"):
            main(["bench", "bogus", "--out", str(tmp_path)])


class TestBenchCompare:
    """Exit-code contract of `repro bench --compare`:

    regression -> 1, improvement/unchanged -> 0, structural change -> 1,
    schema mismatch -> hard SystemExit, missing baseline -> 1.
    """

    def _fresh(self, tmp_path, name="out"):
        out = tmp_path / name
        rc = main([
            "bench", "x38", "--quick", "--repeats", "1",
            "--no-microbench", "--out", str(out),
        ])
        assert rc == 0
        return out / "BENCH_x38.json"

    def _baseline_from(self, payload_path, tmp_path, mutate=None):
        base_dir = tmp_path / "baselines"
        base_dir.mkdir(exist_ok=True)
        blob = json.loads(payload_path.read_text())
        if mutate is not None:
            mutate(blob)
        (base_dir / payload_path.name).write_text(json.dumps(blob))
        return base_dir

    def _compare(self, tmp_path, base_dir):
        return main([
            "bench", "x38", "--quick", "--repeats", "1",
            "--no-microbench", "--out", str(tmp_path / "cmp"),
            "--compare", "--baseline-dir", str(base_dir),
        ])

    def test_unchanged_exits_zero(self, capsys, tmp_path):
        fresh = self._fresh(tmp_path)
        base = self._baseline_from(fresh, tmp_path)
        rc = self._compare(tmp_path, base)
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, capsys, tmp_path):
        fresh = self._fresh(tmp_path)

        def faster_baseline(blob):
            blob["simulated"]["elapsed_s"] /= 1.5

        base = self._baseline_from(fresh, tmp_path, faster_baseline)
        rc = self._compare(tmp_path, base)
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_improvement_exits_zero(self, capsys, tmp_path):
        fresh = self._fresh(tmp_path)

        def slower_baseline(blob):
            blob["simulated"]["elapsed_s"] *= 1.5

        base = self._baseline_from(fresh, tmp_path, slower_baseline)
        rc = self._compare(tmp_path, base)
        assert rc == 0
        assert "improvement" in capsys.readouterr().out.lower()

    def test_structural_change_fails(self, capsys, tmp_path):
        fresh = self._fresh(tmp_path)

        def different_topology(blob):
            blob["simulated"]["nranks"] += 1

        base = self._baseline_from(fresh, tmp_path, different_topology)
        rc = self._compare(tmp_path, base)
        assert rc == 1
        assert "changed" in capsys.readouterr().out.lower()

    def test_schema_mismatch_is_hard_failure(self, tmp_path):
        fresh = self._fresh(tmp_path)

        def old_schema(blob):
            blob["schema"] = "repro-bench/0"

        base = self._baseline_from(fresh, tmp_path, old_schema)
        with pytest.raises(SystemExit, match="schema mismatch"):
            self._compare(tmp_path, base)

    def test_missing_baseline_exits_one(self, capsys, tmp_path):
        rc = main([
            "bench", "x38", "--quick", "--repeats", "1",
            "--no-microbench", "--out", str(tmp_path / "cmp"),
            "--compare", "--baseline-dir", str(tmp_path / "empty"),
        ])
        assert rc == 1
        assert "no baseline" in capsys.readouterr().err


class TestCleanErrors:
    """`repro resume` / `repro submit` report clear errors, never
    tracebacks, for nonexistent checkpoint/socket paths."""

    def test_resume_missing_file_is_clean(self, tmp_path):
        missing = tmp_path / "nope.rpk"
        with pytest.raises(SystemExit, match="no checkpoint at"):
            main(["resume", str(missing)])

    def test_resume_empty_dir_is_clean(self, tmp_path):
        with pytest.raises(SystemExit, match="no checkpoints in"):
            main(["resume", str(tmp_path)])

    def test_resume_corrupt_file_is_clean(self, tmp_path):
        bad = tmp_path / "corrupt.rpk"
        bad.write_bytes(b"not a checkpoint")
        with pytest.raises(SystemExit) as exc_info:
            main(["resume", str(bad)])
        assert "Traceback" not in str(exc_info.value)

    def test_submit_missing_socket_is_clean(self, tmp_path):
        with pytest.raises(SystemExit, match="is `repro serve` running"):
            main([
                "submit", "airfoil",
                "--socket", "/tmp/rsv-definitely-missing.sock",
            ])

    def test_jobs_missing_socket_is_clean(self):
        with pytest.raises(SystemExit, match="is `repro serve` running"):
            main(["jobs", "--socket", "/tmp/rsv-definitely-missing.sock"])

    def test_submit_unknown_case_is_clean(self):
        with pytest.raises(SystemExit, match="unknown case"):
            main(["submit", "bogus", "--socket", "/tmp/any.sock"])


class TestServeCLI:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 2
        assert args.socket.endswith(".sock")
        assert args.job_timeout == 300.0

    def test_submit_parser_defaults(self):
        args = build_parser().parse_args(["submit", "airfoil"])
        assert args.nodes == 4
        assert args.backend == "sim"
        assert not args.no_wait and not args.no_cache

    def test_submit_and_jobs_round_trip(self, capsys):
        """Full CLI loop against an in-process daemon: submit twice
        (second is a cache hit), then list jobs and stats."""
        import tempfile

        from repro.serve import ReproServer

        sock = tempfile.mktemp(prefix="rsv-cli-", suffix=".sock", dir="/tmp")
        with ReproServer(sock, workers=1, job_timeout=60.0):
            argv = [
                "submit", "airfoil", "--nodes", "3", "--scale", "0.05",
                "--steps", "1", "--socket", sock,
            ]
            assert main(argv) == 0
            first = capsys.readouterr().out
            assert "done" in first and "cache hit" not in first

            assert main(argv) == 0
            second = capsys.readouterr().out
            assert "cache hit" in second

            assert main(["jobs", "--socket", sock]) == 0
            listing = capsys.readouterr().out
            assert listing.count("airfoil") == 2

            assert main(["jobs", "--socket", sock, "--stats"]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["cache"]["hits"] == 1

    def test_submit_json_output_carries_payload(self, capsys):
        import tempfile

        from repro.serve import ReproServer
        from repro.serve.jobs import run_job_bytes
        from tests.serve.conftest import tiny_spec

        sock = tempfile.mktemp(prefix="rsv-cli-", suffix=".sock", dir="/tmp")
        with ReproServer(sock, workers=1, job_timeout=60.0):
            rc = main([
                "submit", "airfoil", "--nodes", "3", "--scale", "0.05",
                "--steps", "1", "--socket", sock, "--json",
            ])
            assert rc == 0
            rec = json.loads(capsys.readouterr().out)
        assert rec["payload"].encode() == run_job_bytes(tiny_spec())

    def test_submit_failed_job_exits_one(self, capsys):
        import tempfile

        from repro.serve import ReproServer, ServeClient

        sock = tempfile.mktemp(prefix="rsv-cli-", suffix=".sock", dir="/tmp")
        with ReproServer(sock, workers=1, job_timeout=60.0):
            # The CLI has no --inject knob (it's test-only), so drive
            # the failure through the client and read it back via CLI.
            from tests.serve.conftest import tiny_spec

            with ServeClient(sock) as c:
                rec = c.submit(tiny_spec(inject="error:cli-test"))
                import pytest as _pytest

                from repro.serve import JobFailedError

                with _pytest.raises(JobFailedError):
                    c.wait(job_id=rec["id"], timeout=60)
            assert main(["jobs", "--socket", sock]) == 0
            out = capsys.readouterr().out
            assert "failed" in out and "RuntimeError" in out


class TestTraceDiff:
    def _emit(self, tmp_path, name):
        out = tmp_path / name
        rc = main([
            "bench", "x38", "--quick", "--repeats", "1",
            "--no-microbench", "--out", str(out),
        ])
        assert rc == 0
        return out / "BENCH_x38.json"

    def test_identical_runs_diff_clean(self, capsys, tmp_path):
        a = self._emit(tmp_path, "a")
        b = self._emit(tmp_path, "b")
        capsys.readouterr()
        rc = main(["trace-diff", str(a), str(b)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out and "zero deltas" in out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        a = self._emit(tmp_path, "a")
        blob = json.loads(a.read_text())
        blob["simulated"]["elapsed_s"] *= 1.5
        b = tmp_path / "BENCH_worse.json"
        b.write_text(json.dumps(blob))
        capsys.readouterr()
        rc = main(["trace-diff", str(a), str(b)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_output(self, capsys, tmp_path):
        a = self._emit(tmp_path, "a")
        capsys.readouterr()
        rc = main(["trace-diff", str(a), str(a), "--json"])
        assert rc == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is True and blob["deltas"] == []

    def test_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace-diff", str(tmp_path / "no.json"),
                  str(tmp_path / "pe.json")])


class TestScenarioCLI:
    def _scenario(self, tmp_path):
        path = tmp_path / "scen.json"
        rc = main([
            "scenario", "--kind", "store-salvo", "--seed", "3",
            "--nbodies", "2", "--out", str(path),
        ])
        assert rc == 0
        return path

    def test_scenario_generation_is_deterministic(self, capsys, tmp_path):
        a = self._scenario(tmp_path / "a")
        out = capsys.readouterr().out
        assert "store-salvo scenario, seed 3" in out
        b = self._scenario(tmp_path / "b")
        assert a.read_bytes() == b.read_bytes()

    def test_scenario_requires_seed(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--kind", "debris"])

    def test_run_scenario(self, capsys, tmp_path):
        path = self._scenario(tmp_path)
        rc = main(["run", "--scenario", str(path), "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "near-body grids" in out
        assert "time/step" in out
        assert "epoch @ step 0" in out
        assert "algorithm3" in out

    def test_run_scenario_grouping_override(self, capsys, tmp_path):
        path = self._scenario(tmp_path)
        rc = main([
            "run", "--scenario", str(path), "--steps", "2",
            "--grouping", "roundrobin",
        ])
        assert rc == 0
        assert "grouping=roundrobin" in capsys.readouterr().out

    def test_run_registers_scenario_in_case_list(self, capsys, tmp_path):
        path = self._scenario(tmp_path)
        assert main(["run", "--scenario", str(path), "--steps", "1"]) == 0
        capsys.readouterr()
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "store-salvo-3" in out and "[offbody]" in out

    def test_run_rejects_case_and_scenario(self, tmp_path):
        path = self._scenario(tmp_path)
        with pytest.raises(SystemExit, match="not both"):
            main(["run", "airfoil", "--scenario", str(path)])

    def test_run_rejects_checkpoints_with_scenario(self, tmp_path):
        path = self._scenario(tmp_path)
        with pytest.raises(SystemExit, match="checkpoint"):
            main([
                "run", "--scenario", str(path), "--checkpoint-every", "2",
            ])

    def test_run_rejects_missing_scenario_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", str(tmp_path / "no.json")])

    def test_trace_scenario_writes_outputs(self, capsys, tmp_path):
        path = self._scenario(tmp_path)
        out_dir = tmp_path / "tr"
        rc = main([
            "trace", "--scenario", str(path), "--steps", "2",
            "--out", str(out_dir), "--no-timeline",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch @ step 0" in out
        trace = out_dir / "trace_store-salvo-3.json"
        assert trace.exists()
        events = json.loads(trace.read_text())["traceEvents"]
        phases = {e["name"] for e in events if e.get("ph") == "X"}
        assert "offbody:regen" in phases and "offbody:group" in phases
        assert (out_dir / "trace_store-salvo-3_rollup.csv").exists()

    def test_trace_from_step_partial_exports(self, capsys, tmp_path):
        out_dir = tmp_path / "tr"
        rc = main([
            "trace", "airfoil", "--scale", "0.05", "--steps", "3",
            "--nodes", "4", "--trace-store", str(tmp_path / "st"),
            "--from-step", "2", "--out", str(out_dir), "--no-timeline",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "partial replay from step 2" in out
        assert (out_dir / "trace_airfoil_from2.json").exists()
        assert (out_dir / "trace_airfoil_from2_rollup.csv").exists()

    def test_trace_from_step_needs_store(self, tmp_path):
        with pytest.raises(SystemExit, match="trace-store"):
            main([
                "trace", "airfoil", "--scale", "0.05", "--steps", "2",
                "--from-step", "1", "--out", str(tmp_path),
                "--no-timeline",
            ])

    def test_trace_from_step_out_of_range(self, tmp_path):
        with pytest.raises(SystemExit, match="out of range"):
            main([
                "trace", "airfoil", "--scale", "0.05", "--steps", "2",
                "--nodes", "4", "--trace-store", str(tmp_path / "st"),
                "--from-step", "9", "--out", str(tmp_path / "tr"),
                "--no-timeline",
            ])

    def test_bench_scenario_payload(self, capsys, tmp_path):
        path = self._scenario(tmp_path)
        rc = main([
            "bench", "--scenario", str(path), "--repeats", "1",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Mflops/node" in out and "epoch @ step 0" in out
        blob = json.loads((tmp_path / "BENCH_store-salvo-3.json").read_text())
        assert blob["schema"].startswith("repro-bench/")
        ob = blob["simulated"]["offbody"]
        assert ob["grouping"] == "algorithm3"
        assert ob["epochs"] and ob["epochs"][0]["npatches"] > 0
        assert blob["simulated"]["sanitizer"]["ok"] is True
