"""Cross-cutting integration tests: every case runs end-to-end on the
performance driver and reports sane statistics."""

import math

import pytest

from repro.cases import airfoil_case, deltawing_case, store_case
from repro.core import OverflowD1
from repro.core.overflow_d1 import PHASE_DCF, PHASE_FLOW, PHASE_MOTION
from repro.machine import sp, sp2

CASES = [
    ("airfoil", airfoil_case, 6, 0.05),
    ("deltawing", deltawing_case, 7, 0.02),
    ("store", store_case, 16, 0.02),
]


@pytest.mark.parametrize("name,builder,nodes,scale", CASES)
class TestEveryCaseRuns:
    def test_runs_and_accounts(self, name, builder, nodes, scale):
        cfg = builder(machine=sp2(nodes=nodes), scale=scale, nsteps=2)
        r = OverflowD1(cfg).run()
        assert r.elapsed > 0
        assert 0 < r.pct_dcf3d < 100
        assert r.mflops_per_node > 0
        # All three phases of the paper's loop show up.
        for phase in (PHASE_FLOW, PHASE_MOTION, PHASE_DCF):
            assert r.phase_total(phase) > 0, phase

    def test_flow_dominates(self, name, builder, nodes, scale):
        """Paper: the flow solver is >= two-thirds of the total for the
        problems tested at their base partitions."""
        cfg = builder(machine=sp2(nodes=nodes), scale=scale, nsteps=2)
        r = OverflowD1(cfg).run()
        total = sum(
            r.phase_total(p) for p in (PHASE_FLOW, PHASE_MOTION, PHASE_DCF)
        )
        assert r.phase_total(PHASE_FLOW) / total > 0.5

    def test_sp_beats_sp2(self, name, builder, nodes, scale):
        t2 = OverflowD1(
            builder(machine=sp2(nodes=nodes), scale=scale, nsteps=2)
        ).run().time_per_step
        tp = OverflowD1(
            builder(machine=sp(nodes=nodes), scale=scale, nsteps=2)
        ).run().time_per_step
        assert tp < t2


class TestCaseOrdering:
    def test_dcf_share_ordering_matches_paper(self):
        """At base partitions the connectivity share orders like the
        IGBP ratios: delta wing < airfoil ~ store (paper: 9, 10, 17%)."""
        shares = {}
        for name, builder, nodes, scale in CASES:
            cfg = builder(machine=sp2(nodes=nodes), scale=scale, nsteps=2)
            shares[name] = OverflowD1(cfg).run().pct_dcf3d
        assert shares["deltawing"] < shares["store"] * 1.5
