"""Tests that the case builders match the paper's grid systems."""

import numpy as np
import pytest

from repro.cases import (
    airfoil_case,
    airfoil_grids,
    deltawing_case,
    deltawing_grids,
    store_case,
    store_grids,
    x38_adaptive_system,
    x38_case,
    x38_near_body_grids,
)
from repro.cases.store import N_STORE_GRIDS, STORE_SEARCH_LISTS
from repro.connectivity.holecut import cut_holes
from repro.connectivity.igbp import find_igbps, igbp_ratio
from repro.machine import sp2


def system_ratio(cfg):
    iblanks = cut_holes(cfg.grids)
    sets = [
        find_igbps(g, i, iblanks[i], cfg.fringe_layers)
        for i, g in enumerate(cfg.grids)
    ]
    return igbp_ratio(sets, cfg.grids)


class TestAirfoilCase:
    def test_paper_scale_point_count(self):
        """Paper: composite total of 64K gridpoints, three roughly equal
        grids."""
        grids = airfoil_grids(scale=1.0)
        total = sum(g.npoints for g in grids)
        assert 57_000 < total < 71_000
        counts = [g.npoints for g in grids]
        assert max(counts) / min(counts) < 1.3

    def test_igbp_ratio_near_44e3(self):
        cfg = airfoil_case(machine=sp2(nodes=4), scale=1.0)
        ratio = system_ratio(cfg)
        assert 0.03 < ratio < 0.06  # paper: 44e-3

    def test_only_airfoil_moves(self):
        cfg = airfoil_case(machine=sp2(nodes=4), scale=0.1)
        assert list(cfg.motions.keys()) == [0]

    def test_scaling(self):
        small = sum(g.npoints for g in airfoil_grids(scale=0.25))
        full = sum(g.npoints for g in airfoil_grids(scale=1.0))
        assert small == pytest.approx(full / 4, rel=0.2)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            airfoil_grids(scale=0.0)

    def test_scaleup_construction(self):
        """Paper Table 2: coarsened (~1/4 pts) and refined (~4x pts)
        versions built by grid coarsen/refine keep the IGBP ratio."""
        base = airfoil_grids(scale=1.0)
        coarse = [g.coarsened() for g in base]
        total_c = sum(g.npoints for g in coarse)
        total_b = sum(g.npoints for g in base)
        assert total_c == pytest.approx(total_b / 4, rel=0.1)


class TestDeltaWingCase:
    def test_paper_scale_point_count(self):
        grids = deltawing_grids(scale=1.0)
        total = sum(g.npoints for g in grids)
        assert 0.8e6 < total < 1.25e6  # paper: ~1 million

    def test_four_grids_three_move(self):
        cfg = deltawing_case(machine=sp2(nodes=4), scale=0.01)
        assert len(cfg.grids) == 4
        assert sorted(cfg.motions.keys()) == [0, 1, 2]

    def test_igbp_ratio_small_scale(self):
        # At this tiny test scale surface/volume inflates the ratio far
        # above the paper's 33e-3; just check it is sane and nonzero.
        cfg = deltawing_case(machine=sp2(nodes=4), scale=0.01)
        ratio = system_ratio(cfg)
        assert 0.005 < ratio < 0.4

    def test_descent_speed_is_paper_value(self):
        cfg = deltawing_case(machine=sp2(nodes=4), scale=0.01)
        v = np.asarray(cfg.motions[0].velocity)
        assert np.linalg.norm(v) == pytest.approx(0.064)

    def test_viscous_no_turbulence(self):
        """Paper: viscous on all four grids, no turbulence models."""
        for g in deltawing_grids(scale=0.01):
            assert g.viscous
            assert not g.turbulence


class TestStoreCase:
    def test_sixteen_grids(self):
        grids = store_grids(scale=0.01)
        assert len(grids) == 16

    def test_paper_scale_point_count(self):
        grids = store_grids(scale=1.0)
        total = sum(g.npoints for g in grids)
        assert 0.62e6 < total < 1.0e6  # paper: 0.81 million

    def test_store_grids_move_wing_static(self):
        cfg = store_case(machine=sp2(nodes=16), scale=0.01)
        assert sorted(cfg.motions.keys()) == list(range(N_STORE_GRIDS))

    def test_backgrounds_inviscid_curvilinear_viscous(self):
        """Paper: viscous + Baldwin-Lomax on curvilinear grids, the
        three Cartesian backgrounds inviscid."""
        grids = store_grids(scale=0.01)
        for g in grids[:3]:
            assert g.viscous and g.turbulence
        for g in grids[13:]:
            assert not g.viscous

    def test_search_lists_cover_all_grids(self):
        for gi in range(16):
            assert gi in STORE_SEARCH_LISTS
            assert all(0 <= d < 16 and d != gi
                       for d in STORE_SEARCH_LISTS[gi])

    def test_igbp_ratio_higher_than_other_cases(self):
        """Paper: the store case's ratio (66e-3) is 1.5-2x the airfoil
        (44e-3) and delta wing (33e-3)."""
        store = store_case(machine=sp2(nodes=16), scale=0.02)
        delta = deltawing_case(machine=sp2(nodes=4), scale=0.02)
        assert system_ratio(store) > system_ratio(delta)


class TestX38:
    def test_near_body_grids(self):
        grids = x38_near_body_grids(scale=0.05)
        assert len(grids) == 3
        assert grids[0].viscous

    def test_adaptive_system_initialises(self):
        sys = x38_adaptive_system(max_level=2, points_per_brick=5)
        assert len(sys.bricks) > 0
        assert sys.max_level == 2

    def test_case_builder_is_runnable_config(self):
        cfg = x38_case(machine=sp2(nodes=4), scale=0.3, nsteps=2)
        assert len(cfg.grids) == 3
        assert cfg.machine.nodes == 4
        assert not cfg.motions  # rigid vehicle holding attitude
        # Search lists reference valid grids symmetrically.
        for gi, donors in cfg.search_lists.items():
            assert 0 <= gi < 3
            for d in donors:
                assert gi in cfg.search_lists[d]
