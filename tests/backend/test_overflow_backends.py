"""End-to-end backend equivalence on the paper's drivers.

The acceptance contract for the mp backend: physics outputs are
*byte-identical* to the simulator — per-step IGBP counts, connectivity
search totals, orphan counts for OVERFLOW-D1; the final Q field for the
fine-grained 2-D solver.  Only the clocks (virtual vs wall) differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend
from repro.backend.mp import mp_available
from repro.cases import airfoil_case
from repro.core import OverflowD1
from repro.machine import sp2

pytestmark = [
    pytest.mark.mp,
    pytest.mark.skipif(
        mp_available() is not None, reason=str(mp_available())
    ),
]


def _airfoil_run(backend: str):
    cfg = airfoil_case(machine=sp2(nodes=4), scale=0.25, nsteps=4)
    return OverflowD1(cfg, backend=backend).run()


def test_overflow_airfoil_physics_identical():
    sim = _airfoil_run("sim")
    mp = _airfoil_run("mp")

    assert mp.nsteps == sim.nsteps
    assert mp.nprocs == sim.nprocs
    assert len(mp.epochs) == len(sim.epochs)
    for es, em in zip(sim.epochs, mp.epochs):
        # Same repartition decisions...
        assert em.partition.procs_per_grid == es.partition.procs_per_grid
        assert em.first_step == es.first_step
        assert em.nsteps == es.nsteps
        # ...and identical connectivity physics.
        assert np.array_equal(
            em.igbp.per_step(), es.igbp.per_step()
        ), "per-rank-per-step IGBP counts diverged"
        assert em.search_steps_total == es.search_steps_total
        assert em.orphans_total == es.orphans_total
    assert mp.partition_history == sim.partition_history
    assert np.array_equal(
        mp.igbp_rollup().accumulated(), sim.igbp_rollup().accumulated()
    )
    # The clocks are the one sanctioned difference.
    assert mp.elapsed > 0 and sim.elapsed > 0


def test_parallel2d_q_field_byte_identical():
    from repro.cases.airfoil import airfoil_grids
    from repro.solver import FlowConfig, ParallelSolver2D, Solver2D

    # The background Cartesian grid is non-periodic -> eligible for the
    # fine-grained distributed solver.
    grid = airfoil_grids(scale=0.35)[2]
    cfg = FlowConfig(mach=0.5, cfl=2.0)
    serial = Solver2D(grid, cfg)
    dt = 0.8 * serial.timestep()

    q_sim, out_sim = ParallelSolver2D(grid, cfg, sp2(nodes=4)).run(2, dt)
    q_mp, out_mp = ParallelSolver2D(
        grid, cfg, sp2(nodes=4), backend="mp"
    ).run(2, dt)

    assert q_sim.tobytes() == q_mp.tobytes()
    assert out_sim.backend == "sim" and out_mp.backend == "mp"
    assert out_mp.measured


def test_overflow_rejects_mp_with_sanitizer():
    from repro.analysis import Sanitizer

    cfg = airfoil_case(machine=sp2(nodes=4), scale=0.25, nsteps=2)
    with pytest.raises(ValueError):
        OverflowD1(cfg, backend="mp", sanitizer=Sanitizer())
