"""CommProtocol conformance: one battery, every execution engine.

The three engines (``sim``, ``mp``, ``cluster``) promise the *same*
communication semantics — per-source FIFO ordering, wildcard receive,
rank-ordered collectives, the reserved-tag guard — differing only in
how time is measured.  This module states that contract once and runs
it against each engine through a parametrized module-scoped fixture, so
a new engine earns conformance by appearing in one params list.

Engines that fork processes are quarantined behind their markers
(``mp`` for both process-backed engines, ``cluster`` additionally for
the TCP one) and skip cleanly on hosts that cannot run them.

Deliberately absent: barrier-then-drain assertions.  ``barrier()``
orders the token exchange it is built from, not independently routed
data frames, so "message visible after barrier" is not part of the
contract on the process-backed engines.
"""

from __future__ import annotations

import pytest

from repro.backend import get_backend
from repro.backend.mp import mp_available
from repro.cluster import cluster_available
from repro.machine import sp2
from repro.machine.simmpi import MAX_USER_TAG

NRANKS = 4
TAG = 5


def _make_engine(name):
    if name == "sim":
        return get_backend("sim")
    why = mp_available() if name == "mp" else cluster_available()
    if why is not None:
        pytest.skip(str(why))
    if name == "mp":
        return get_backend("mp")
    return get_backend("cluster", nnodes=2)


@pytest.fixture(
    scope="module",
    params=[
        pytest.param("sim"),
        pytest.param("mp", marks=pytest.mark.mp),
        pytest.param(
            "cluster", marks=[pytest.mark.mp, pytest.mark.cluster]
        ),
    ],
)
def engine(request):
    eng = _make_engine(request.param)
    yield eng
    eng.close()


def _run(engine, program):
    result = engine.run_spmd(sp2(nodes=NRANKS), program)
    assert result.backend == engine.name
    assert result.failed_ranks == ()
    return result.returns


# ---------------------------------------------------------------- programs
# Module-level so every engine ships/pickles them the same way.


def prog_ring(comm):
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    yield from comm.send(dst, TAG, ("tok", comm.rank), nbytes=64)
    payload, status = yield from comm.recv(src, TAG)
    return (payload[1], status.source, status.tag)


def prog_fifo(comm):
    if comm.rank == 0:
        for i in range(8):
            yield from comm.send(1, TAG, i, nbytes=8)
    elif comm.rank == 1:
        seen = []
        for _ in range(8):
            val, _ = yield from comm.recv(0, TAG)
            seen.append(val)
        return seen
    return None


def prog_tag_selectivity(comm):
    """Receiving a specific tag must not consume other-tag traffic."""
    if comm.rank == 0:
        yield from comm.send(1, TAG, "low", nbytes=8)
        yield from comm.send(1, TAG + 1, "high", nbytes=8)
    elif comm.rank == 1:
        hi, _ = yield from comm.recv(0, TAG + 1)
        lo, _ = yield from comm.recv(0, TAG)
        return (hi, lo)
    return None


def prog_wildcard(comm):
    if comm.rank == 0:
        got = []
        for _ in range(comm.size - 1):
            val, status = yield from comm.recv()
            got.append((status.source, status.tag, val))
        return sorted(got)
    yield from comm.send(0, TAG + comm.rank, comm.rank * 10, nbytes=8)
    return None


def prog_collectives(comm):
    r, n = comm.rank, comm.size
    total = yield from comm.allreduce(r + 1)
    word = yield from comm.bcast("tok" if r == 0 else None, root=0)
    rows = yield from comm.gather(r * r, root=0)
    # Back-to-back collectives on the same reserved tag (gather, then
    # allgather's internal gather) need an issuance fence: without it
    # the root's wildcard drain can take one rank's second contribution
    # in place of a slower rank's first.  Identical on all engines.
    yield from comm.barrier()
    everyone = yield from comm.allgather(r)
    spread = yield from comm.alltoall([r * 100 + d for d in range(n)])
    partner = n - 1 - r
    swapped, _ = yield from comm.sendrecv(partner, partner, TAG, r)
    yield from comm.barrier()
    return (total, word, rows, everyone, spread, swapped)


def prog_split(comm):
    members = [r for r in range(comm.size) if r % 2 == comm.rank % 2]
    sub = comm.split(members)
    subtotal = yield from sub.allreduce(comm.rank)
    return (sub.rank, sub.size, subtotal)


def prog_iprobe(comm):
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    yield from comm.send(dst, TAG, comm.rank, nbytes=8)
    while True:
        flag = yield from comm.iprobe(src, TAG)
        if flag:
            break
        yield from comm.elapse(1e-4)
    val, status = yield from comm.recv(src, TAG)
    return (val, status.source)


def prog_reserved_send(comm):
    yield from comm.send(
        (comm.rank + 1) % comm.size, MAX_USER_TAG, None, nbytes=8
    )


def prog_reserved_recv(comm):
    yield from comm.recv(0, MAX_USER_TAG + 7)


# ------------------------------------------------------------------- tests


def test_ring_send_recv(engine):
    expected = [
        ((r - 1) % NRANKS, (r - 1) % NRANKS, TAG) for r in range(NRANKS)
    ]
    assert _run(engine, prog_ring) == expected


def test_per_source_fifo_ordering(engine):
    returns = _run(engine, prog_fifo)
    assert returns[1] == list(range(8))


def test_tag_selective_receive(engine):
    returns = _run(engine, prog_tag_selectivity)
    assert returns[1] == ("high", "low")


def test_wildcard_receive_sees_every_sender(engine):
    returns = _run(engine, prog_wildcard)
    assert returns[0] == [
        (r, TAG + r, r * 10) for r in range(1, NRANKS)
    ]


def test_collectives(engine):
    returns = _run(engine, prog_collectives)
    n = NRANKS
    for r in range(n):
        total, word, rows, everyone, spread, swapped = returns[r]
        assert total == n * (n + 1) // 2
        assert word == "tok"
        assert rows == ([k * k for k in range(n)] if r == 0 else None)
        assert everyone == list(range(n))
        assert spread == [s * 100 + r for s in range(n)]
        assert swapped == n - 1 - r


def test_split_subcommunicators(engine):
    returns = _run(engine, prog_split)
    for r in range(NRANKS):
        sub_rank, sub_size, subtotal = returns[r]
        group = [k for k in range(NRANKS) if k % 2 == r % 2]
        assert sub_rank == group.index(r)
        assert sub_size == len(group)
        assert subtotal == sum(group)


def test_iprobe_then_recv(engine):
    returns = _run(engine, prog_iprobe)
    assert returns == [((r - 1) % NRANKS, (r - 1) % NRANKS) for r in range(NRANKS)]


def test_reserved_tag_send_rejected(engine):
    with pytest.raises(ValueError, match="reserved"):
        engine.run_spmd(sp2(nodes=NRANKS), prog_reserved_send)


def test_reserved_tag_recv_rejected(engine):
    with pytest.raises(ValueError, match="reserved"):
        engine.run_spmd(sp2(nodes=NRANKS), prog_reserved_recv)
