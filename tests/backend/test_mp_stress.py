"""Concurrency stress for the mp backend's shared-memory fast path.

Payloads above ``shm_threshold`` (32 KiB by default) travel through a
per-message ``SharedMemory`` segment instead of the pickled pipe; this
battery drives *many simultaneous* over-threshold sends between the
same rank pair — interleaved tags, both directions at once, mixed
ndarray/pickle kinds, shm racing inline — and asserts no mailbox
interleaving ever corrupts, reorders or cross-wires a payload.

Quarantined behind the ``mp`` marker like the rest of the fork tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend
from repro.backend.mp import mp_available
from repro.machine import sp2

pytestmark = [
    pytest.mark.mp,
    pytest.mark.skipif(
        mp_available() is not None, reason=str(mp_available())
    ),
]

# 64x64 float64 = 32 KiB: with shm_threshold=1024 every send below is
# deep in shm territory; nbytes also stamps the payload's identity.
SIDE = 64
NMSG = 16


def _run(program, nranks=2, **mp_options):
    mp_options.setdefault("shm_threshold", 1024)
    return get_backend("mp", **mp_options).run_spmd(
        sp2(nodes=nranks), program
    )


def _stamp(rank: int, k: int) -> np.ndarray:
    """A >32 KiB array whose *every cell* encodes (sender, sequence)."""
    return np.full((SIDE, SIDE), rank * 1000.0 + k)


def _check(msg: np.ndarray, rank: int, k: int) -> None:
    expect = rank * 1000.0 + k
    assert msg.shape == (SIDE, SIDE)
    # Any interleaving corruption shows up as mixed cell values.
    assert float(msg.min()) == expect and float(msg.max()) == expect


class TestSameRankPairFlood:
    def test_many_queued_shm_sends_one_tag_stay_ordered(self):
        """NMSG over-threshold sends queued on one (src, dst, tag)
        mailbox must arrive in order, uncorrupted."""

        def program(comm):
            if comm.rank == 0:
                for k in range(NMSG):
                    big = _stamp(0, k)
                    yield from comm.send(1, 7, big, nbytes=big.nbytes)
                return 0
            out = []
            for k in range(NMSG):
                msg, status = yield from comm.recv(0, 7)
                _check(msg, 0, k)
                out.append(float(msg[0, 0]))
            return out

        result = _run(program)
        assert result.returns[1] == [float(k) for k in range(NMSG)]

    def test_interleaved_tags_never_cross_wire(self):
        """Two tag streams flooding the same rank pair concurrently;
        each stream must stay internally ordered and never leak a
        payload into the other."""

        def program(comm):
            if comm.rank == 0:
                for k in range(NMSG):
                    even = _stamp(0, 2 * k)
                    odd = _stamp(0, 2 * k + 1)
                    yield from comm.send(1, 100, even, nbytes=even.nbytes)
                    yield from comm.send(1, 200, odd, nbytes=odd.nbytes)
                return 0
            evens, odds = [], []
            # Drain the odd stream first — the even stream's segments
            # must survive queued in the mailbox meanwhile.
            for k in range(NMSG):
                msg, _ = yield from comm.recv(0, 200)
                _check(msg, 0, 2 * k + 1)
                odds.append(int(msg[0, 0]))
            for k in range(NMSG):
                msg, _ = yield from comm.recv(0, 100)
                _check(msg, 0, 2 * k)
                evens.append(int(msg[0, 0]))
            return (evens, odds)

        result = _run(program)
        evens, odds = result.returns[1]
        assert evens == [2 * k for k in range(NMSG)]
        assert odds == [2 * k + 1 for k in range(NMSG)]

    def test_bidirectional_flood_same_pair(self):
        """Both ranks flooding each other simultaneously over shm."""

        def program(comm):
            peer = 1 - comm.rank
            for k in range(NMSG):
                big = _stamp(comm.rank, k)
                yield from comm.send(peer, 5, big, nbytes=big.nbytes)
            got = []
            for k in range(NMSG):
                msg, _ = yield from comm.recv(peer, 5)
                _check(msg, peer, k)
                got.append(float(msg[0, 0]))
            return got

        result = _run(program)
        assert result.returns[0] == [1000.0 + k for k in range(NMSG)]
        assert result.returns[1] == [float(k) for k in range(NMSG)]

    def test_shm_and_inline_interleaved_on_one_mailbox(self):
        """Alternating over/under-threshold sends on one mailbox: the
        transport switches per message, ordering must not."""

        def program(comm):
            if comm.rank == 0:
                for k in range(NMSG):
                    if k % 2 == 0:
                        big = _stamp(0, k)
                        yield from comm.send(1, 9, big, nbytes=big.nbytes)
                    else:
                        yield from comm.send(1, 9, ("small", k), nbytes=64)
                return 0
            seq = []
            for k in range(NMSG):
                msg, _ = yield from comm.recv(0, 9)
                if k % 2 == 0:
                    _check(msg, 0, k)
                    seq.append(int(msg[0, 0]))
                else:
                    assert msg == ("small", k)
                    seq.append(msg[1])
            return seq

        result = _run(program)
        assert result.returns[1] == list(range(NMSG))

    def test_pickle_kind_flood(self):
        """Over-threshold non-ndarray payloads (pickle shm frames)."""

        def program(comm):
            if comm.rank == 0:
                for k in range(8):
                    blob = {"k": k, "data": list(range(5000))}
                    yield from comm.send(1, 3, blob, nbytes=20000)
                return 0
            out = []
            for k in range(8):
                msg, _ = yield from comm.recv(0, 3)
                assert msg["data"] == list(range(5000))
                out.append(msg["k"])
            return out

        result = _run(program)
        assert result.returns[1] == list(range(8))


class TestManyPairs:
    def test_all_to_one_shm_flood(self):
        """Several senders flooding one receiver concurrently: every
        (sender, sequence) stamp must arrive intact and per-sender
        FIFO order must hold."""
        nranks = 4

        def program(comm):
            if comm.rank != 0:
                for k in range(NMSG):
                    big = _stamp(comm.rank, k)
                    yield from comm.send(0, 11, big, nbytes=big.nbytes)
                return comm.rank
            seen = {r: [] for r in range(1, nranks)}
            for r in range(1, nranks):
                for k in range(NMSG):
                    msg, status = yield from comm.recv(r, 11)
                    _check(msg, r, k)
                    seen[status.source].append(int(msg[0, 0]) % 1000)
            return seen

        result = _run(program, nranks=nranks)
        seen = result.returns[0]
        for r in range(1, nranks):
            assert seen[r] == list(range(NMSG))

    def test_differential_against_sim(self):
        """The flood's values match the deterministic sim backend."""

        def program(comm):
            peer = 1 - comm.rank
            total = 0.0
            for k in range(8):
                big = _stamp(comm.rank, k)
                yield from comm.send(peer, 2, big, nbytes=big.nbytes)
            for k in range(8):
                msg, _ = yield from comm.recv(peer, 2)
                total += float(msg.sum())
            return total

        sim = get_backend("sim").run_spmd(sp2(nodes=2), program)
        mp = _run(program)
        assert mp.returns == sim.returns
