"""Differential battery: the mp backend reproduces sim's results.

Every test here forks real processes, so the module is quarantined
behind the ``mp`` marker (``-m "not mp"`` skips it) and skipped
automatically on hosts without the ``fork`` start method.

The contract under test: for deterministic rank programs, the *values*
(returns, payload contents, collective results, message counts) are
identical between backends; only the clocks differ (modeled virtual
seconds vs measured wall seconds).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.backend import BackendResult, get_backend
from repro.backend.mp import mp_available
from repro.machine import sp2
from repro.machine.faults import RankFailure

pytestmark = [
    pytest.mark.mp,
    pytest.mark.skipif(
        mp_available() is not None, reason=str(mp_available())
    ),
]

TAG = 21
NRANKS = 4


def _machine():
    return sp2(nodes=NRANKS)


def _both(program, nranks=NRANKS, **mp_options):
    sim = get_backend("sim").run_spmd(sp2(nodes=nranks), program)
    mp = get_backend("mp", **mp_options).run_spmd(
        sp2(nodes=nranks), program
    )
    assert isinstance(mp, BackendResult)
    assert mp.backend == "mp" and mp.measured
    return sim, mp


def test_ring_exchange_identical():
    def program(comm):
        dst = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        payload = np.arange(8, dtype=float) + comm.rank
        yield from comm.send(dst, TAG, payload, nbytes=payload.nbytes)
        msg, status = yield from comm.recv(src, TAG)
        return (comm.rank, status.source, [float(v) for v in msg])

    sim, mp = _both(program)
    assert mp.returns == sim.returns


def test_large_ndarray_via_shared_memory():
    def program(comm):
        dst = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        big = np.full((64, 64), float(comm.rank))  # 32 KiB of float64
        yield from comm.send(dst, TAG, big, nbytes=big.nbytes)
        msg, _ = yield from comm.recv(src, TAG)
        return (msg.shape, msg.dtype.str, float(msg.sum()))

    # Force the shm path with a tiny threshold, and exercise the
    # inline path with a huge one; results must agree with sim.
    sim, mp_shm = _both(program, shm_threshold=1024)
    _, mp_inline = _both(program, shm_threshold=1 << 30)
    assert mp_shm.returns == sim.returns
    assert mp_inline.returns == sim.returns


def test_shm_pickle_path_for_large_objects():
    def program(comm):
        dst = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        blob = {"rank": comm.rank, "data": list(range(4000))}
        yield from comm.send(dst, TAG, blob, nbytes=16000)
        msg, _ = yield from comm.recv(src, TAG)
        return (msg["rank"], len(msg["data"]))

    sim, mp = _both(program, shm_threshold=512)
    assert mp.returns == sim.returns


def test_collectives_identical():
    def program(comm):
        r = comm.rank
        total = yield from comm.allreduce(r + 1)
        word = yield from comm.bcast("hello" if r == 0 else None, root=0)
        rows = yield from comm.gather(np.full(3, float(r)), root=0)
        yield from comm.barrier()
        gathered = (
            [float(row[0]) for row in rows] if r == 0 else None
        )
        return (total, word, gathered)

    sim, mp = _both(program)
    assert mp.returns == sim.returns


def test_wildcard_free_tryrecv_and_probe():
    def program(comm):
        dst = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        yield from comm.send(dst, TAG, comm.rank, nbytes=8)
        # Spin on iprobe until the message is visible, then drain.
        while True:
            flag = yield from comm.iprobe(src, TAG)
            if flag:
                break
            yield from comm.elapse(1e-4)
        msgs = yield from comm.drain_recv(src, TAG)
        return [(payload, status.source) for payload, status in msgs]

    sim, mp = _both(program)
    assert mp.returns == sim.returns


def test_message_counters_match():
    def program(comm):
        dst = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        for _ in range(5):
            yield from comm.send(dst, TAG, None, nbytes=256)
        for _ in range(5):
            yield from comm.recv(src, TAG)
        return comm.rank

    sim, mp = _both(program)
    for a, b in zip(mp.metrics.ranks, sim.metrics.ranks):
        assert a.messages_sent == b.messages_sent
        assert a.bytes_sent == b.bytes_sent
        assert a.messages_received == b.messages_received


def test_program_exception_propagates_with_rank_note():
    def program(comm):
        yield from comm.compute(flops=1e5)
        if comm.rank == 2:
            raise ValueError("boom on rank 2")
        yield from comm.barrier()
        return comm.rank

    with pytest.raises(ValueError, match="boom on rank 2") as excinfo:
        get_backend("mp").run_spmd(_machine(), program)
    notes = getattr(excinfo.value, "__notes__", [])
    assert any("rank 2" in n for n in notes)


def test_worker_crash_surfaces_as_rank_failure():
    def program(comm):
        yield from comm.compute(flops=1e5)
        if comm.rank == 1:
            os._exit(17)  # simulate a hard crash (no exception frame)
        yield from comm.barrier()
        return comm.rank

    with pytest.raises(RankFailure) as excinfo:
        get_backend("mp").run_spmd(_machine(), program)
    assert 1 in excinfo.value.failed


def test_timeout_surfaces_as_rank_failure():
    def program(comm):
        if comm.rank == 0:
            # Never sent: rank 1 blocks until supervision trips.
            msg, _ = yield from comm.recv(1, TAG)
        return comm.rank

    with pytest.raises(RankFailure):
        get_backend("mp", timeout=1.0).run_spmd(sp2(nodes=2), program)


def test_mp_rejects_sanitizer_and_faults():
    from repro.analysis import Sanitizer

    def program(comm):
        yield from comm.barrier()
        return comm.rank

    engine = get_backend("mp")
    with pytest.raises(ValueError, match="sanitizer"):
        engine.run_spmd(_machine(), program, sanitizer=Sanitizer())
    with pytest.raises(ValueError, match="[Ff]ault"):
        engine.run_spmd(_machine(), program, fault_plan=["rank=1@step=1"])


def test_tracer_switches_to_wall_clock():
    from repro.obs import SpanTracer

    def program(comm):
        yield from comm.set_phase("work")
        yield from comm.compute(flops=1e5)
        yield from comm.barrier()
        return comm.rank

    tracer = SpanTracer()
    out = get_backend("mp").run_spmd(_machine(), program, tracer=tracer)
    assert tracer.clock == "wall"
    assert out.returns == list(range(NRANKS))
    assert tracer.nranks == NRANKS
    assert len(tracer.ops) > 0
    # Wall spans are causally ordered per rank.
    for rank in range(NRANKS):
        spans = tracer.rank_ops(rank)
        for (_, _, _, _, t1, _, _), (_, _, _, t0b, _, _, _) in zip(
            spans, spans[1:]
        ):
            assert t0b >= t1 - 1e-9
