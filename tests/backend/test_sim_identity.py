"""SimBackend is bit-identical to driving the Simulator directly.

The backend layer must be a pure adapter: same virtual clocks, same
returns, same metrics, same trace events.  Any drift here would also
break the golden-trace battery, but this test localises the blame.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.machine import sp2
from repro.machine.scheduler import Simulator
from repro.obs import SpanTracer

TAG = 11


def _program(comm):
    yield from comm.set_phase("work")
    yield from comm.compute(flops=2e6)
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    payload = np.full(64, float(comm.rank))
    yield from comm.send(dst, TAG, payload, nbytes=payload.nbytes)
    msg, status = yield from comm.recv(src, TAG)
    total = yield from comm.allreduce(float(msg[0]))
    yield from comm.barrier()
    return (comm.rank, float(msg[0]), total)


def _run_direct(nranks: int, tracer):
    sim = Simulator(sp2(nodes=nranks), tracer=tracer)
    for _ in range(nranks):
        sim.spawn(_program)
    return sim.run()


def test_sim_backend_bit_identical():
    nranks = 4
    t_direct, t_backend = SpanTracer(), SpanTracer()
    direct = _run_direct(nranks, t_direct)
    out = get_backend("sim").run_spmd(
        sp2(nodes=nranks), _program, tracer=t_backend
    )

    assert out.elapsed == direct.elapsed
    assert out.returns == direct.returns
    assert out.failed_ranks == tuple(direct.failed_ranks)
    for a, b in zip(out.metrics.ranks, direct.metrics.ranks):
        assert a.final_clock == b.final_clock
        assert a.flops == b.flops
        assert a.messages_sent == b.messages_sent
        assert a.bytes_sent == b.bytes_sent
    # Trace events are the same tuples in the same dispatch order.
    assert t_backend.ops == t_direct.ops
    assert t_backend.sends == t_direct.sends
    assert t_backend.recvs == t_direct.recvs
    assert t_backend.phase_marks == t_direct.phase_marks
    # The sim backend records virtual time.
    assert t_backend.clock == "virtual"


def test_sim_backend_repeatable():
    a = get_backend("sim").run_spmd(sp2(nodes=3), _program)
    b = get_backend("sim").run_spmd(sp2(nodes=3), _program)
    assert a.elapsed == b.elapsed
    assert a.returns == b.returns
