"""Backend registry and API-surface contracts."""

from __future__ import annotations

import pytest

from repro.backend import (
    BackendResult,
    BackendUnavailable,
    CommProtocol,
    ExecutionBackend,
    SimBackend,
    available_backends,
    backend_help,
    get_backend,
    register_backend,
)
from repro.machine import sp2
from repro.machine.simmpi import Comm


def test_sim_always_available():
    assert "sim" in available_backends()
    engine = get_backend("sim")
    assert isinstance(engine, SimBackend)
    assert engine.shared_state is True
    assert engine.measured is False


def test_default_backend_is_sim():
    assert get_backend().name == "sim"


def test_both_backends_registered():
    help_ = backend_help()
    assert set(help_) >= {"sim", "mp"}
    for doc in help_.values():
        assert doc  # every backend documents itself


def test_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("openmp")


def test_unavailable_backend_raises_typed():
    def never(**_options):  # pragma: no cover - must not be called
        raise AssertionError("factory of an unavailable backend ran")

    register_backend(
        "never", never, doc="test-only", available=lambda: "always offline"
    )
    try:
        with pytest.raises(BackendUnavailable, match="always offline"):
            get_backend("never")
        assert "never" not in available_backends()
    finally:
        from repro.backend.api import _REGISTRY

        _REGISTRY.pop("never", None)


def test_comm_satisfies_backend_protocol():
    """The rank-facing Comm surface is exactly what backends promise."""
    for name in (
        "rank",
        "size",
        "send",
        "recv",
        "irecv",
        "wait",
        "iprobe",
        "allreduce",
        "barrier",
        "bcast",
        "gather",
        "compute",
        "set_phase",
        "now",
    ):
        assert hasattr(Comm, name) or name in ("rank", "size"), name
    # Protocol membership is checked structurally on an instance.
    comm = Comm.__new__(Comm)
    comm.rank, comm.size = 0, 1
    assert isinstance(comm, CommProtocol)


def test_run_spmd_defaults_to_machine_nodes():
    def program(comm):
        yield from comm.compute(flops=1e6)
        return comm.rank

    out = get_backend("sim").run_spmd(sp2(nodes=3), program)
    assert isinstance(out, BackendResult)
    assert out.returns == [0, 1, 2]
    assert out.backend == "sim"
    assert out.measured is False
    assert out.failed_ranks == ()


def test_abstract_backend_cannot_instantiate():
    with pytest.raises(TypeError):
        ExecutionBackend()  # type: ignore[abstract]
